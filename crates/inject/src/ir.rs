//! Admission-time plan compilation: validate → normalize → compile → cache.
//!
//! Every long-lived consumer of injection plans (the registry, the serving
//! engine, campaign schedulers) used to compile plans ad hoc and pick an
//! evaluation engine at each call site. This module is the front door that
//! replaces that: a plan is **admitted** once, at registration time, into a
//! normalized [`PlanIr`] —
//!
//! * **validate** — out-of-range or duplicate sites are rejected here, once,
//!   with the usual typed [`PlanError`]s; nothing downstream revalidates;
//! * **normalize** — sites are canonicalized (neuron sites sorted per
//!   layer, synapse sites bucketed by layer in plan order) and the plan's
//!   *structure* — site positions, fault kinds, capacity — is separated
//!   from its fault *values* (stuck-at levels, Byzantine strategies and
//!   deviations);
//! * **compile** — the structure becomes a shared, value-independent
//!   *body* (a value-canonical [`CompiledPlan`] with resolved crash
//!   weights and a precomputed first-faulty-layer); plans equal up to
//!   fault value dedup onto **one** body ([`AdmissionStats::dedup_hits`]),
//!   and each admitted plan materializes its executable by merging its
//!   values into the shared body — no per-plan validation or weight
//!   resolution;
//! * **cache** — bodies are remembered in-process and, when an
//!   [`ArtifactStore`] is attached, published as compiled-plan records
//!   (record kind 2), so a restarted process warm-starts admission from
//!   disk with the record re-verified bitwise against the live network.
//!
//! Identities are content hashes (the network's content hash plus a hash
//! of the canonical structure bytes) — and, as everywhere else in the
//! store/cache stack, *hashes index, bytes prove*: every dedup or warm hit
//! is confirmed by byte comparison / bitwise re-validation before a body
//! is shared.

use std::sync::Arc;

use neurofail_nn::{net_to_bytes, Mlp};
use neurofail_tensor::io::{checksum64, ByteWriter};

use crate::cache::net_content_hash;
use crate::executor::{CompiledPlan, PlanError, PlanValues};
use crate::plan::{InjectionPlan, NeuronFault, SynapseFault, SynapseTarget};
use crate::store::ArtifactStore;

/// A plan admitted through the pipeline: the normalized intermediate
/// representation every engine downstream consumes.
///
/// The IR couples three things: the content identities (`net_hash`,
/// `structure_hash`, `value_hash`) that make plans addressable and
/// dedupable; the shared, value-independent [`body`](PlanIr::body) (one
/// `Arc` per *structure*, not per plan); and the materialized
/// [`compiled`](PlanIr::compiled) executable the engines run.
#[derive(Debug, Clone)]
pub struct PlanIr {
    net_hash: u64,
    structure_hash: u64,
    value_hash: u64,
    first_faulty_layer: usize,
    body: Arc<CompiledPlan>,
    compiled: CompiledPlan,
}

impl PlanIr {
    /// Content hash of the network the plan was admitted against.
    pub fn net_hash(&self) -> u64 {
        self.net_hash
    }

    /// Hash of the canonical structure bytes (sites, fault kinds,
    /// capacity — fault values excluded). Plans sharing this (and the
    /// net hash) share one compiled body.
    pub fn structure_hash(&self) -> u64 {
        self.structure_hash
    }

    /// Hash of the fault values. `(net_hash, structure_hash, value_hash)`
    /// is the full plan identity: two admitted plans agreeing on all
    /// three evaluate identically, which is what lets engines evaluate
    /// one representative and fan the result out.
    pub fn value_hash(&self) -> u64 {
        self.value_hash
    }

    /// The precomputed first faulty layer (see
    /// [`CompiledPlan::first_faulty_layer`]) — a property of the structure,
    /// shared by the whole body family.
    pub fn first_faulty_layer(&self) -> usize {
        self.first_faulty_layer
    }

    /// The shared value-independent body. Plans equal up to fault value
    /// return the *same allocation* here ([`PlanIr::shares_body_with`]).
    pub fn body(&self) -> &Arc<CompiledPlan> {
        &self.body
    }

    /// The materialized executable (body + this plan's fault values).
    pub fn compiled(&self) -> &CompiledPlan {
        &self.compiled
    }

    /// Whether two admitted plans dedup onto one compiled body (pointer
    /// identity — the strongest possible sharing witness).
    pub fn shares_body_with(&self, other: &PlanIr) -> bool {
        Arc::ptr_eq(&self.body, &other.body)
    }

    /// The full plan identity `(net_hash, structure_hash, value_hash)`.
    pub fn plan_key(&self) -> (u64, u64, u64) {
        (self.net_hash, self.structure_hash, self.value_hash)
    }
}

/// Exact counters of everything the admission pipeline did — the "exact
/// counter accounting" behind the dedup claims: `admitted` plans landed on
/// `bodies_compiled + warm_admissions` distinct bodies, with `dedup_hits`
/// admissions that compiled nothing at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Plans admitted successfully.
    pub admitted: u64,
    /// Plans rejected with a typed [`PlanError`].
    pub rejected: u64,
    /// Admissions that reused an in-process body (no compile, no store).
    pub dedup_hits: u64,
    /// Bodies compiled from scratch (validate + resolve weights).
    pub bodies_compiled: u64,
    /// Bodies loaded and bitwise re-verified from the artifact store.
    pub warm_admissions: u64,
    /// Compiled-plan records newly published to the artifact store.
    pub store_publishes: u64,
}

#[derive(Debug, Clone)]
struct BodyEntry {
    net_hash: u64,
    structure_hash: u64,
    structure: Vec<u8>,
    body: Arc<CompiledPlan>,
}

/// The admission pipeline's in-process state: the body cache and its
/// counters. One lives inside every
/// [`PlanRegistry`](crate::PlanRegistry); standalone use is possible for
/// engines that manage plans without a registry.
#[derive(Debug, Clone, Default)]
pub struct Admission {
    bodies: Vec<BodyEntry>,
    stats: AdmissionStats,
}

impl Admission {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Number of distinct compiled bodies currently cached.
    pub fn body_count(&self) -> usize {
        self.bodies.len()
    }

    /// Admit `plan` against `net` under capacity `capacity`, optionally
    /// consulting/feeding an [`ArtifactStore`] (compiled-plan records,
    /// kind 2) for warm-started admission across restarts.
    ///
    /// # Errors
    /// [`PlanError`] on any out-of-range or duplicate site — rejected
    /// here, once; admitted IRs never revalidate.
    ///
    /// # Panics
    /// If `capacity` is not positive (same contract as
    /// [`CompiledPlan::compile`]).
    pub fn admit(
        &mut self,
        net: &Arc<Mlp>,
        plan: &InjectionPlan,
        capacity: f64,
        mut store: Option<&mut ArtifactStore>,
    ) -> Result<PlanIr, PlanError> {
        assert!(capacity > 0.0, "capacity must be positive");
        let net_hash = net_content_hash(net);
        let depth = net.depth();
        if let Some(structure) = plan_structure_bytes(plan, depth, capacity) {
            let structure_hash = checksum64(&structure);
            // Dedup: an in-process body with byte-equal structure.
            if let Some(entry) = self.bodies.iter().find(|b| {
                b.net_hash == net_hash
                    && b.structure_hash == structure_hash
                    && b.structure == structure
            }) {
                let body = Arc::clone(&entry.body);
                let ir = materialize(net_hash, structure_hash, body, plan, depth);
                self.stats.dedup_hits += 1;
                self.stats.admitted += 1;
                return Ok(ir);
            }
            // Warm admission: a verified compiled-plan record on disk.
            if let Some(store) = store.as_deref_mut() {
                if let Some(body) = store.load_compiled_plan(net, &structure) {
                    let body = Arc::new(body);
                    self.bodies.push(BodyEntry {
                        net_hash,
                        structure_hash,
                        structure,
                        body: Arc::clone(&body),
                    });
                    let ir = materialize(net_hash, structure_hash, body, plan, depth);
                    self.stats.warm_admissions += 1;
                    self.stats.admitted += 1;
                    return Ok(ir);
                }
            }
        }
        // Cold path: full validate + compile, then split off the body.
        let compiled = match CompiledPlan::compile(plan, net, capacity) {
            Ok(c) => c,
            Err(e) => {
                self.stats.rejected += 1;
                return Err(e);
            }
        };
        Ok(self.admit_compiled_inner(net_hash, compiled, store))
    }

    /// Admit an already-compiled plan (caller vouches it was compiled
    /// against the hashed network) — the compiled-plan mirror of
    /// [`PlanRegistry::register_compiled`](crate::PlanRegistry::register_compiled).
    pub fn admit_compiled(
        &mut self,
        net: &Arc<Mlp>,
        compiled: CompiledPlan,
        store: Option<&mut ArtifactStore>,
    ) -> PlanIr {
        let net_hash = net_content_hash(net);
        self.admit_compiled_inner(net_hash, compiled, store)
    }

    fn admit_compiled_inner(
        &mut self,
        net_hash: u64,
        compiled: CompiledPlan,
        mut store: Option<&mut ArtifactStore>,
    ) -> PlanIr {
        let (body, values) = compiled.split_values();
        let structure = body.structure_bytes();
        let structure_hash = checksum64(&structure);
        let value_hash = values_hash(&values);
        let first_faulty_layer = compiled.first_faulty_layer();
        // A structurally equal body may already be cached (the compiled
        // entry point skips the plan-level probe).
        let body = match self.bodies.iter().find(|b| {
            b.net_hash == net_hash && b.structure_hash == structure_hash && b.structure == structure
        }) {
            Some(entry) => {
                self.stats.dedup_hits += 1;
                Arc::clone(&entry.body)
            }
            None => {
                let body = Arc::new(body);
                if let Some(store) = store.take() {
                    if let Ok(true) = store.store_compiled_plan(net_hash, &structure, &body) {
                        self.stats.store_publishes += 1;
                    }
                }
                self.bodies.push(BodyEntry {
                    net_hash,
                    structure_hash,
                    structure,
                    body: Arc::clone(&body),
                });
                self.stats.bodies_compiled += 1;
                body
            }
        };
        self.stats.admitted += 1;
        PlanIr {
            net_hash,
            structure_hash,
            value_hash,
            first_faulty_layer,
            body,
            compiled,
        }
    }
}

/// Materialize an IR from a shared body and the plan's own fault values.
/// Only reachable after the body's structure bytes were proven equal to
/// the plan's, so the value slots line up by construction.
fn materialize(
    net_hash: u64,
    structure_hash: u64,
    body: Arc<CompiledPlan>,
    plan: &InjectionPlan,
    depth: usize,
) -> PlanIr {
    let values = plan_values(plan, depth);
    let compiled = CompiledPlan::merge_values(&body, &values);
    PlanIr {
        net_hash,
        structure_hash,
        value_hash: values_hash(&values),
        first_faulty_layer: body.first_faulty_layer(),
        body,
        compiled,
    }
}

fn values_hash(values: &PlanValues) -> u64 {
    let mut w = ByteWriter::new();
    values.encode(&mut w);
    checksum64(&w.into_bytes())
}

/// The canonical value-independent structure encoding of `plan` under
/// `capacity`, byte-identical to
/// `CompiledPlan::structure_bytes` over the compiled form — computable
/// **without** compiling, which is what lets dedup and warm admission
/// skip validation and weight resolution entirely.
///
/// Returns `None` when a site's layer index cannot be bucketed (out of
/// range) — such plans take the cold path, where compilation produces the
/// typed rejection.
pub fn plan_structure_bytes(plan: &InjectionPlan, depth: usize, capacity: f64) -> Option<Vec<u8>> {
    let mut neuron: Vec<Vec<(usize, u64)>> = vec![Vec::new(); depth];
    for s in &plan.neurons {
        if s.layer >= depth {
            return None;
        }
        let tag = match s.fault {
            NeuronFault::Crash => 0,
            NeuronFault::StuckAt(_) => 1,
            NeuronFault::Byzantine(_) => 2,
        };
        neuron[s.layer].push((s.neuron, tag));
    }
    for sites in &mut neuron {
        sites.sort_by_key(|&(n, _)| n);
    }
    let mut hidden: Vec<Vec<(usize, usize, u64)>> = vec![Vec::new(); depth];
    let mut output: Vec<(usize, u64)> = Vec::new();
    for s in &plan.synapses {
        let tag = match s.fault {
            SynapseFault::Crash => 0,
            SynapseFault::Byzantine(_) => 1,
        };
        match s.target {
            SynapseTarget::Hidden { layer, to, from } => {
                if layer >= depth {
                    return None;
                }
                hidden[layer].push((to, from, tag));
            }
            SynapseTarget::Output { from } => output.push((from, tag)),
        }
    }
    let mut w = ByteWriter::new();
    w.put_u64(depth as u64);
    for sites in &neuron {
        w.put_u64(sites.len() as u64);
        for &(n, tag) in sites {
            w.put_u64(n as u64);
            w.put_u64(tag);
        }
    }
    for sites in &hidden {
        w.put_u64(sites.len() as u64);
        for &(to, from, tag) in sites {
            w.put_u64(to as u64);
            w.put_u64(from as u64);
            w.put_u64(tag);
        }
    }
    w.put_u64(output.len() as u64);
    for &(from, tag) in &output {
        w.put_u64(from as u64);
        w.put_u64(tag);
    }
    w.put_u64(capacity.to_bits());
    Some(w.into_bytes())
}

/// Extract `plan`'s fault values in canonical site order — the order
/// [`CompiledPlan::merge_values`] consumes (layers ascending, neuron sites
/// sorted by neuron, hidden synapse sites in plan order per layer, output
/// sites last).
fn plan_values(plan: &InjectionPlan, depth: usize) -> PlanValues {
    let mut values = PlanValues::default();
    let mut neuron: Vec<Vec<(usize, &NeuronFault)>> = vec![Vec::new(); depth];
    for s in &plan.neurons {
        neuron[s.layer].push((s.neuron, &s.fault));
    }
    for sites in &mut neuron {
        sites.sort_by_key(|&(n, _)| n);
        for (_, fault) in sites.iter() {
            values.push_neuron(fault);
        }
    }
    for layer in 0..depth {
        for s in &plan.synapses {
            if matches!(s.target, SynapseTarget::Hidden { layer: l, .. } if l == layer) {
                values.push_synapse(&s.fault);
            }
        }
    }
    for s in &plan.synapses {
        if matches!(s.target, SynapseTarget::Output { .. }) {
            values.push_synapse(&s.fault);
        }
    }
    values
}

/// Bitwise content equality of two networks — the proof step behind
/// content-hash family grouping (`hashes index, bytes prove`): two plans
/// whose networks are content-equal may share one nominal pass and one
/// shard, because every forward pass over either network produces
/// identical bits.
pub fn nets_content_equal(a: &Mlp, b: &Mlp) -> bool {
    std::ptr::eq(a, b) || net_to_bytes(a) == net_to_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ByzantineStrategy, NeuronSite, SynapseSite};
    use neurofail_nn::activation::Activation;
    use neurofail_nn::MlpBuilder;
    use neurofail_tensor::init::Init;

    fn net() -> Arc<Mlp> {
        Arc::new(
            MlpBuilder::new(3)
                .dense(4, Activation::Tanh { k: 1.0 })
                .dense(3, Activation::Sigmoid { k: 1.0 })
                .init(Init::Xavier)
                .build(&mut neurofail_data::rng::rng(11)),
        )
    }

    fn stuck_plan(v: f64) -> InjectionPlan {
        InjectionPlan {
            neurons: vec![NeuronSite {
                layer: 1,
                neuron: 2,
                fault: NeuronFault::StuckAt(v),
            }],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Output { from: 0 },
                fault: SynapseFault::Byzantine(0.5),
            }],
        }
    }

    #[test]
    fn structure_bytes_agree_between_plan_and_compiled_forms() {
        let net = net();
        for plan in [
            InjectionPlan::none(),
            InjectionPlan::crash([(0, 1), (1, 2)]),
            InjectionPlan::byzantine([(1, 0)], ByzantineStrategy::Random { seed: 9 }),
            stuck_plan(0.25),
        ] {
            let compiled = CompiledPlan::compile(&plan, &net, 2.0).unwrap();
            let (body, _) = compiled.split_values();
            let from_plan = plan_structure_bytes(&plan, net.depth(), 2.0).unwrap();
            assert_eq!(from_plan, body.structure_bytes(), "{plan:?}");
        }
    }

    #[test]
    fn equal_up_to_fault_value_shares_one_body_with_distinct_values() {
        let net = net();
        let mut adm = Admission::new();
        let a = adm.admit(&net, &stuck_plan(0.25), 2.0, None).unwrap();
        let b = adm.admit(&net, &stuck_plan(-0.75), 2.0, None).unwrap();
        assert!(a.shares_body_with(&b));
        assert_eq!(a.structure_hash(), b.structure_hash());
        assert_ne!(a.value_hash(), b.value_hash());
        assert_eq!(adm.stats().bodies_compiled, 1);
        assert_eq!(adm.stats().dedup_hits, 1);
        assert_eq!(adm.body_count(), 1);
        // The materialized executables really carry distinct values.
        let x = [0.2, -0.1, 0.4];
        let mut ws = neurofail_nn::Workspace::for_net(&net);
        let ea = a.compiled().output_error(&net, &x, &mut ws);
        let eb = b.compiled().output_error(&net, &x, &mut ws);
        assert_ne!(ea.to_bits(), eb.to_bits());
        // And the dedup-materialized plan is bitwise the cold compile.
        let direct = CompiledPlan::compile(&stuck_plan(-0.75), &net, 2.0).unwrap();
        assert_eq!(
            eb.to_bits(),
            direct.output_error(&net, &x, &mut ws).to_bits()
        );
    }

    #[test]
    fn rejection_is_typed_and_counted() {
        let net = net();
        let mut adm = Admission::new();
        assert!(matches!(
            adm.admit(&net, &InjectionPlan::crash([(7, 0)]), 1.0, None),
            Err(PlanError::BadNeuron { layer: 7, .. })
        ));
        assert!(matches!(
            adm.admit(&net, &InjectionPlan::crash([(0, 99)]), 1.0, None),
            Err(PlanError::BadNeuron { neuron: 99, .. })
        ));
        assert_eq!(adm.stats().rejected, 2);
        assert_eq!(adm.stats().admitted, 0);
        assert_eq!(adm.body_count(), 0);
    }

    #[test]
    fn different_capacity_is_a_different_structure() {
        let net = net();
        let mut adm = Admission::new();
        let a = adm.admit(&net, &stuck_plan(0.25), 2.0, None).unwrap();
        let b = adm.admit(&net, &stuck_plan(0.25), 3.0, None).unwrap();
        assert!(!a.shares_body_with(&b));
        assert_eq!(adm.stats().bodies_compiled, 2);
    }

    #[test]
    fn nets_content_equal_matches_clones_not_variants() {
        let a = net();
        let b = net(); // same seed → same weights, different allocation
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(nets_content_equal(&a, &b));
        let c = Arc::new(
            MlpBuilder::new(3)
                .dense(4, Activation::Tanh { k: 1.0 })
                .dense(3, Activation::Sigmoid { k: 1.0 })
                .init(Init::Xavier)
                .build(&mut neurofail_data::rng::rng(12)),
        );
        assert!(!nets_content_equal(&a, &c));
    }
}

//! Monte-Carlo fault-injection campaigns.
//!
//! A campaign measures the distribution of the output disturbance
//! `|F_neu(X) − F_fail(X)|` over many random `(plan, input)` pairs — the
//! tractable replacement for "looking at all the possible inputs and testing
//! all the possible configurations" that the paper rules out as
//! combinatorially explosive. Trials are independent, so the campaign runs
//! embarrassingly parallel under `neurofail-par`, with per-trial seeds
//! derived from the campaign seed (results are identical for any thread
//! count).

use neurofail_data::rng::rng as det_rng;
use neurofail_nn::{Mlp, Workspace};
use neurofail_par::{parallel_map, Parallelism, SeedSequence};
use neurofail_tensor::OnlineStats;
use serde::{Deserialize, Serialize};

use crate::executor::CompiledPlan;
use crate::plan::InjectionPlan;
use crate::sampler::{sample_neuron_plan, sample_synapse_plan, FaultSpec};

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of independent fault plans to draw.
    pub trials: usize,
    /// Number of random inputs evaluated per plan.
    pub inputs_per_trial: usize,
    /// Campaign seed (everything derives from it).
    pub seed: u64,
    /// Synaptic capacity C under which plans execute.
    pub capacity: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 200,
            inputs_per_trial: 32,
            seed: 0xFA117,
            capacity: 1.0,
        }
    }
}

/// Worst single observation of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstCase {
    /// The disturbance `|F_neu − F_fail|`.
    pub error: f64,
    /// The input achieving it.
    pub input: Vec<f64>,
    /// The plan achieving it.
    pub plan: InjectionPlan,
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Moments and extrema of the observed disturbances.
    pub stats: neurofail_tensor::Summary,
    /// The worst observation (None for zero-trial campaigns).
    pub worst: Option<WorstCase>,
    /// Total `(plan, input)` evaluations.
    pub evaluations: u64,
}

impl CampaignResult {
    /// Largest observed disturbance (0 for empty campaigns).
    pub fn max_error(&self) -> f64 {
        self.worst.as_ref().map(|w| w.error).unwrap_or(0.0)
    }
}

/// What the campaign injects each trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrialKind {
    /// Neuron faults with per-layer counts and a fault spec.
    Neurons(FaultSpec),
    /// Synapse faults (`byzantine = false` → crashes).
    Synapses {
        /// Byzantine (bounded arbitrary) vs crash semantics.
        byzantine: bool,
    },
}

/// Run a campaign: `cfg.trials` random plans with the given per-layer
/// `counts`, each evaluated on `cfg.inputs_per_trial` uniform inputs.
///
/// `counts` has `L` entries for [`TrialKind::Neurons`] and `L + 1` for
/// [`TrialKind::Synapses`].
///
/// # Panics
/// On count/shape mismatches (see the samplers).
pub fn run_campaign(
    net: &Mlp,
    counts: &[usize],
    kind: TrialKind,
    cfg: &CampaignConfig,
    policy: Parallelism,
) -> CampaignResult {
    let seeds = SeedSequence::new(cfg.seed);
    let per_trial: Vec<(OnlineStats, Option<WorstCase>)> =
        parallel_map(policy, cfg.trials, |t| {
            let mut rng = det_rng(seeds.seed_for(t as u64));
            let plan = match kind {
                TrialKind::Neurons(spec) => sample_neuron_plan(net, counts, spec, &mut rng),
                TrialKind::Synapses { byzantine } => {
                    sample_synapse_plan(net, counts, byzantine, cfg.capacity, &mut rng)
                }
            };
            let compiled = CompiledPlan::compile(&plan, net, cfg.capacity)
                .expect("sampler produced an invalid plan");
            let mut ws = Workspace::for_net(net);
            let mut stats = OnlineStats::new();
            let mut worst: Option<WorstCase> = None;
            let d = net.input_dim();
            let mut x = vec![0.0; d];
            for _ in 0..cfg.inputs_per_trial {
                for xi in &mut x {
                    *xi = rand::Rng::gen_range(&mut rng, 0.0..=1.0);
                }
                let err = compiled.output_error(net, &x, &mut ws);
                stats.push(err);
                if worst.as_ref().map(|w| err > w.error).unwrap_or(true) {
                    worst = Some(WorstCase {
                        error: err,
                        input: x.clone(),
                        plan: plan.clone(),
                    });
                }
            }
            (stats, worst)
        });

    let mut stats = OnlineStats::new();
    let mut worst: Option<WorstCase> = None;
    for (s, w) in per_trial {
        stats.merge(&s);
        if let Some(w) = w {
            if worst.as_ref().map(|b| w.error > b.error).unwrap_or(true) {
                worst = Some(w);
            }
        }
    }
    CampaignResult {
        stats: stats.summary(),
        worst,
        evaluations: stats.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_core::{crash_fep, Capacity, NetworkProfile};
    use neurofail_data::rng::rng;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::builder::MlpBuilder;
    use neurofail_tensor::init::Init;

    fn net() -> Mlp {
        MlpBuilder::new(2)
            .dense(8, Activation::Sigmoid { k: 1.0 })
            .dense(5, Activation::Sigmoid { k: 1.0 })
            .init(Init::Uniform { a: 0.4 })
            .bias(false)
            .build(&mut rng(60))
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let net = net();
        let cfg = CampaignConfig {
            trials: 24,
            inputs_per_trial: 8,
            ..CampaignConfig::default()
        };
        let a = run_campaign(
            &net,
            &[2, 1],
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Sequential,
        );
        let b = run_campaign(
            &net,
            &[2, 1],
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Threads(4),
        );
        assert_eq!(a.max_error(), b.max_error());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.stats.mean, b.stats.mean);
    }

    #[test]
    fn observed_errors_respect_crash_fep_bound() {
        // The soundness property at campaign scale: every observation is
        // below the analytic Fep bound for the injected distribution.
        let net = net();
        let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(1.0)).unwrap();
        let counts = [2usize, 1];
        let bound = crash_fep(&profile, &counts);
        let cfg = CampaignConfig {
            trials: 50,
            inputs_per_trial: 16,
            ..CampaignConfig::default()
        };
        let res = run_campaign(
            &net,
            &counts,
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Sequential,
        );
        assert!(res.evaluations == 800);
        assert!(
            res.max_error() <= bound,
            "measured {} exceeds bound {bound}",
            res.max_error()
        );
        assert!(res.max_error() > 0.0, "faults should disturb the output");
    }

    #[test]
    fn byzantine_campaign_respects_strict_fep_bound() {
        // NOTE: the *strict* magnitude C + sup ϕ, not the paper's C — a
        // Byzantine value v with |v| ≤ C deviates from the nominal y by up
        // to C + sup ϕ (reproduction finding #2, DESIGN.md §2).
        let net = net();
        let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(2.0)).unwrap();
        let counts = [1usize, 1];
        let bound = neurofail_core::fep::fep_for(
            &profile,
            &counts,
            neurofail_core::FaultClass::ByzantineStrict,
        );
        let cfg = CampaignConfig {
            trials: 40,
            inputs_per_trial: 8,
            capacity: 2.0,
            ..CampaignConfig::default()
        };
        for spec in [
            FaultSpec::ByzantineMaxPositive,
            FaultSpec::ByzantineMaxNegative,
            FaultSpec::ByzantineRandom,
            FaultSpec::ByzantineOpposeNominal,
        ] {
            let res = run_campaign(
                &net,
                &counts,
                TrialKind::Neurons(spec),
                &cfg,
                Parallelism::Sequential,
            );
            assert!(
                res.max_error() <= bound,
                "{spec:?}: measured {} exceeds bound {bound}",
                res.max_error()
            );
        }
    }

    #[test]
    fn zero_fault_campaign_measures_zero() {
        let net = net();
        let cfg = CampaignConfig {
            trials: 5,
            inputs_per_trial: 4,
            ..CampaignConfig::default()
        };
        let res = run_campaign(
            &net,
            &[0, 0],
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Sequential,
        );
        assert_eq!(res.max_error(), 0.0);
        assert_eq!(res.stats.mean, 0.0);
    }
}

//! Monte-Carlo fault-injection campaigns.
//!
//! A campaign measures the distribution of the output disturbance
//! `|F_neu(X) − F_fail(X)|` over many random `(plan, input)` pairs — the
//! tractable replacement for "looking at all the possible inputs and testing
//! all the possible configurations" that the paper rules out as
//! combinatorially explosive. Trials are independent, so the campaign runs
//! embarrassingly parallel under `neurofail-par`, with per-trial seeds
//! derived from the campaign seed (results are identical for any thread
//! count).

use neurofail_data::rng::rng as det_rng;
use neurofail_nn::{BatchWorkspace, Mlp};
use neurofail_par::{parallel_map, Parallelism, SeedSequence};
use neurofail_tensor::{Matrix, OnlineStats};
use serde::{Deserialize, Serialize};

use crate::executor::CompiledPlan;
use crate::plan::InjectionPlan;
use crate::planner::{Engine, Planner, RequestMix};
use crate::sampler::{sample_neuron_plan, sample_synapse_plan, FaultSpec};

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of independent fault plans to draw.
    pub trials: usize,
    /// Number of random inputs evaluated per plan.
    pub inputs_per_trial: usize,
    /// Campaign seed (everything derives from it).
    pub seed: u64,
    /// Synaptic capacity C under which plans execute.
    pub capacity: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 200,
            inputs_per_trial: 32,
            seed: 0xFA117,
            capacity: 1.0,
        }
    }
}

/// Worst single observation of a campaign.
///
/// Carries everything needed to re-derive the observation **standalone**:
/// `plan` + `input` replay the evaluation directly (bitwise, as a
/// singleton batch), while `trial` + `seed` re-derive the plan and the
/// whole input stream of the offending trial from scratch — without
/// rerunning the campaign (see `replaying_a_worst_case_from_its_seed`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstCase {
    /// The disturbance `|F_neu − F_fail|`.
    pub error: f64,
    /// The input achieving it.
    pub input: Vec<f64>,
    /// The plan achieving it.
    pub plan: InjectionPlan,
    /// 0-based index of the trial that produced it.
    pub trial: usize,
    /// The trial's derived seed (`SeedSequence::new(cfg.seed).seed_for
    /// (trial)`): seeding a fresh RNG with it and re-running the trial's
    /// draw sequence — plan first, then inputs in row order — regenerates
    /// `plan` and `input` exactly.
    pub seed: u64,
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Moments and extrema of the observed disturbances.
    pub stats: neurofail_tensor::Summary,
    /// The worst observation (None for zero-trial campaigns).
    pub worst: Option<WorstCase>,
    /// Total `(plan, input)` evaluations.
    pub evaluations: u64,
}

impl CampaignResult {
    /// Largest observed disturbance (0 for empty campaigns).
    pub fn max_error(&self) -> f64 {
        self.worst.as_ref().map(|w| w.error).unwrap_or(0.0)
    }
}

/// What the campaign injects each trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrialKind {
    /// Neuron faults with per-layer counts and a fault spec.
    Neurons(FaultSpec),
    /// Synapse faults (`byzantine = false` → crashes).
    Synapses {
        /// Byzantine (bounded arbitrary) vs crash semantics.
        byzantine: bool,
    },
}

/// Upper bound on rows evaluated per batched call inside a trial: keeps a
/// worker's workspace at O(MAX_EVAL_BATCH · Σ N_l) no matter how large
/// `inputs_per_trial` is, while leaving typical campaigns (≤ 1024 inputs
/// per trial) as a single batch.
const MAX_EVAL_BATCH: usize = 1024;

/// Run a campaign: `cfg.trials` random plans with the given per-layer
/// `counts`, each compiled once and evaluated over its whole
/// `cfg.inputs_per_trial` input set in batched suffix-engine calls
/// ([`CompiledPlan::output_error_resumed`] — one nominal pass per chunk,
/// shared by the plan's faulty pass, which resumes at the plan's first
/// faulty layer; one call when the input set fits `MAX_EVAL_BATCH`) — the
/// compile-once / run-many shape the batched engine exists for.
///
/// `counts` has `L` entries for [`TrialKind::Neurons`] and `L + 1` for
/// [`TrialKind::Synapses`].
///
/// Determinism: the per-trial seed derivation (plan draw, then the input
/// batch in row order) is unchanged from the scalar engine, and batched
/// row results are bitwise independent of batching — so campaign results
/// are identical for every `Parallelism` policy, and any reported worst
/// case replays exactly through a singleton batch (or re-derives from its
/// recorded [`WorstCase::seed`]).
///
/// # Panics
/// On count/shape mismatches (see the samplers).
pub fn run_campaign(
    net: &Mlp,
    counts: &[usize],
    kind: TrialKind,
    cfg: &CampaignConfig,
    policy: Parallelism,
) -> CampaignResult {
    merge_trials(run_campaign_trials(
        net, counts, kind, cfg, policy, 0, cfg.trials,
    ))
}

/// One trial's accumulated moments plus its own worst observation — the
/// shard-transportable unit of a campaign. A vector of these, in trial
/// order, carries everything [`merge_trials`] needs to reproduce
/// [`run_campaign`]'s result bitwise, which is what lets trial ranges be
/// computed anywhere (threads, processes, machines) and merged later.
pub type TrialResult = (OnlineStats, Option<WorstCase>);

/// Run trials `first .. first + count` of the campaign `cfg` describes,
/// returning one [`TrialResult`] per trial in trial order.
///
/// Trials are mutually independent — trial `t` depends on the campaign
/// only through its derived seed `SeedSequence::new(cfg.seed).seed_for(t)`
/// — so *any* partition of `0..cfg.trials` into ranges, computed under any
/// policy on any host, concatenates (in trial order) to the exact
/// per-trial vector a single [`run_campaign`] run produces. This is the
/// sharding primitive behind the fleet's distributed campaign scheduler.
///
/// # Panics
/// On count/shape mismatches (see the samplers).
pub fn run_campaign_trials(
    net: &Mlp,
    counts: &[usize],
    kind: TrialKind,
    cfg: &CampaignConfig,
    policy: Parallelism,
    first: usize,
    count: usize,
) -> Vec<TrialResult> {
    let seeds = SeedSequence::new(cfg.seed);
    let d = net.input_dim();
    parallel_map(policy, count, |i| {
        let t = first + i;
        let trial_seed = seeds.seed_for(t as u64);
        let mut rng = det_rng(trial_seed);
        let plan = match kind {
            TrialKind::Neurons(spec) => sample_neuron_plan(net, counts, spec, &mut rng),
            TrialKind::Synapses { byzantine } => {
                sample_synapse_plan(net, counts, byzantine, cfg.capacity, &mut rng)
            }
        };
        let compiled = CompiledPlan::compile(&plan, net, cfg.capacity)
            .expect("sampler produced an invalid plan");
        // Inputs are drawn in row-major stream order (identical to the
        // scalar engine's draw order), one MAX_EVAL_BATCH chunk at a time,
        // each evaluated before the next is drawn — per-worker memory is
        // O(MAX_EVAL_BATCH · d + Σ N_l) no matter how large the trial is.
        // Drawing and evaluation never interleave on the RNG, and rows are
        // bitwise independent of the batch they ride in, so chunking never
        // changes a result. Each chunk is routed by the global cost-model
        // planner; on a late-fault plan the model lands on the suffix
        // engine (nominal pass computed once, faulty pass resumed at the
        // plan's first faulty layer — `output_error_batch` at fewer
        // flops), and any other pick is bitwise identical (contract 14).
        let chunk_rows = cfg.inputs_per_trial.min(MAX_EVAL_BATCH);
        let mut ws_nominal = BatchWorkspace::for_net(net, chunk_rows);
        let mut ws_scratch = BatchWorkspace::for_net(net, chunk_rows);
        let mut stats = OnlineStats::new();
        let mut worst: Option<WorstCase> = None;
        let mut remaining = cfg.inputs_per_trial;
        let planner = Planner::global();
        let depth = net.depth();
        let suffix_layers = depth - compiled.first_faulty_layer();
        while remaining > 0 {
            let n = remaining.min(MAX_EVAL_BATCH);
            let mut chunk = Matrix::zeros(n, d);
            for xi in chunk.data_mut() {
                *xi = rand::Rng::gen_range(&mut rng, 0.0..=1.0);
            }
            let mix = RequestMix {
                rows: n,
                plans: 1,
                depth,
                suffix_layers,
                cache_available: false,
                cache_resident: false,
                stream_prefix_rows: 0,
            };
            let engine = planner.choose(&mix);
            let start = std::time::Instant::now();
            let errors = match engine {
                Engine::WholeBatch | Engine::Singleton => {
                    // Rows of one chunk share the draw, so a per-row split
                    // buys nothing; the whole-batch engine is the
                    // singleton engine's batched twin (contract 5).
                    compiled.output_error_batch(net, &chunk, &mut ws_scratch)
                }
                _ => compiled.output_error_resumed(net, &chunk, &mut ws_nominal, &mut ws_scratch),
            };
            planner.observe(engine, &mix, start.elapsed().as_nanos() as u64);
            for (b, &err) in errors.iter().enumerate() {
                stats.push(err);
                if worst.as_ref().map(|w| err > w.error).unwrap_or(true) {
                    worst = Some(WorstCase {
                        error: err,
                        input: chunk.row(b).to_vec(),
                        plan: plan.clone(),
                        trial: t,
                        seed: trial_seed,
                    });
                }
            }
            remaining -= n;
        }
        (stats, worst)
    })
}

/// Fold per-trial results (in trial order) into a [`CampaignResult`] —
/// the exact accumulation [`run_campaign`] performs. Stats merge with
/// Chan's pairwise update in the given order, and the worst case is the
/// first strictly-greatest disturbance in trial order, so a scheduler
/// that collects shards out of order only has to sort them by trial index
/// (each [`WorstCase`] records its own) to reproduce the single-run
/// result bit for bit — merge *arrival* order is irrelevant.
pub fn merge_trials(per_trial: Vec<TrialResult>) -> CampaignResult {
    let mut stats = OnlineStats::new();
    let mut worst: Option<WorstCase> = None;
    for (s, w) in per_trial {
        stats.merge(&s);
        if let Some(w) = w {
            if worst.as_ref().map(|b| w.error > b.error).unwrap_or(true) {
                worst = Some(w);
            }
        }
    }
    CampaignResult {
        stats: stats.summary(),
        worst,
        evaluations: stats.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_core::{crash_fep, Capacity, NetworkProfile};
    use neurofail_data::rng::rng;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::builder::MlpBuilder;
    use neurofail_tensor::init::Init;

    fn net() -> Mlp {
        MlpBuilder::new(2)
            .dense(8, Activation::Sigmoid { k: 1.0 })
            .dense(5, Activation::Sigmoid { k: 1.0 })
            .init(Init::Uniform { a: 0.4 })
            .bias(false)
            .build(&mut rng(60))
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let net = net();
        let cfg = CampaignConfig {
            trials: 24,
            inputs_per_trial: 8,
            ..CampaignConfig::default()
        };
        let a = run_campaign(
            &net,
            &[2, 1],
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Sequential,
        );
        let b = run_campaign(
            &net,
            &[2, 1],
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Threads(4),
        );
        assert_eq!(a.max_error(), b.max_error());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.stats.mean, b.stats.mean);
    }

    #[test]
    fn sharded_trial_ranges_merge_bitwise_equal_to_one_run() {
        // The distributed-campaign contract: any partition of the trial
        // range, computed independently and merged in trial order,
        // reproduces the single-run result bit for bit.
        let net = net();
        let cfg = CampaignConfig {
            trials: 23,
            inputs_per_trial: 6,
            ..CampaignConfig::default()
        };
        let whole = run_campaign(
            &net,
            &[2, 1],
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Sequential,
        );
        for splits in [vec![23], vec![9, 14], vec![5, 5, 5, 8], vec![1; 23]] {
            let mut per_trial = Vec::new();
            let mut first = 0;
            for count in splits {
                per_trial.extend(run_campaign_trials(
                    &net,
                    &[2, 1],
                    TrialKind::Neurons(FaultSpec::Crash),
                    &cfg,
                    Parallelism::Sequential,
                    first,
                    count,
                ));
                first += count;
            }
            let merged = merge_trials(per_trial);
            assert_eq!(merged.stats.mean.to_bits(), whole.stats.mean.to_bits());
            assert_eq!(
                merged.stats.std_dev.to_bits(),
                whole.stats.std_dev.to_bits()
            );
            assert_eq!(merged.evaluations, whole.evaluations);
            assert_eq!(merged.worst, whole.worst);
        }
    }

    #[test]
    fn observed_errors_respect_crash_fep_bound() {
        // The soundness property at campaign scale: every observation is
        // below the analytic Fep bound for the injected distribution.
        let net = net();
        let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(1.0)).unwrap();
        let counts = [2usize, 1];
        let bound = crash_fep(&profile, &counts);
        let cfg = CampaignConfig {
            trials: 50,
            inputs_per_trial: 16,
            ..CampaignConfig::default()
        };
        let res = run_campaign(
            &net,
            &counts,
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Sequential,
        );
        assert!(res.evaluations == 800);
        assert!(
            res.max_error() <= bound,
            "measured {} exceeds bound {bound}",
            res.max_error()
        );
        assert!(res.max_error() > 0.0, "faults should disturb the output");
    }

    #[test]
    fn byzantine_campaign_respects_strict_fep_bound() {
        // NOTE: the *strict* magnitude C + sup ϕ, not the paper's C — a
        // Byzantine value v with |v| ≤ C deviates from the nominal y by up
        // to C + sup ϕ (reproduction finding #2, DESIGN.md §2).
        let net = net();
        let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(2.0)).unwrap();
        let counts = [1usize, 1];
        let bound = neurofail_core::fep::fep_for(
            &profile,
            &counts,
            neurofail_core::FaultClass::ByzantineStrict,
        );
        let cfg = CampaignConfig {
            trials: 40,
            inputs_per_trial: 8,
            capacity: 2.0,
            ..CampaignConfig::default()
        };
        for spec in [
            FaultSpec::ByzantineMaxPositive,
            FaultSpec::ByzantineMaxNegative,
            FaultSpec::ByzantineRandom,
            FaultSpec::ByzantineOpposeNominal,
        ] {
            let res = run_campaign(
                &net,
                &counts,
                TrialKind::Neurons(spec),
                &cfg,
                Parallelism::Sequential,
            );
            assert!(
                res.max_error() <= bound,
                "{spec:?}: measured {} exceeds bound {bound}",
                res.max_error()
            );
        }
    }

    #[test]
    fn chunked_trials_report_a_replayable_worst_case() {
        // inputs_per_trial above MAX_EVAL_BATCH forces the bounded-memory
        // chunked path; the reported worst (plan, input) must still replay
        // bitwise (guards the chunk→row index mapping).
        let net = MlpBuilder::new(2)
            .dense(4, Activation::Sigmoid { k: 1.0 })
            .init(Init::Uniform { a: 0.4 })
            .bias(false)
            .build(&mut rng(61));
        let cfg = CampaignConfig {
            trials: 2,
            inputs_per_trial: MAX_EVAL_BATCH + 77,
            ..CampaignConfig::default()
        };
        let res = run_campaign(
            &net,
            &[1],
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Sequential,
        );
        assert_eq!(res.evaluations, 2 * (MAX_EVAL_BATCH as u64 + 77));
        let worst = res.worst.expect("faults were injected");
        let compiled = CompiledPlan::compile(&worst.plan, &net, cfg.capacity).unwrap();
        let single = neurofail_tensor::Matrix::from_vec(1, 2, worst.input.clone());
        let mut ws = neurofail_nn::BatchWorkspace::for_net(&net, 1);
        let replay = compiled.output_error_batch(&net, &single, &mut ws);
        assert_eq!(replay[0], worst.error);
    }

    #[test]
    fn replaying_a_worst_case_from_its_seed_rederives_plan_and_input() {
        // The standalone-replay contract of WorstCase::{trial, seed}: with
        // only the campaign *config knowledge* (net, counts, kind,
        // capacity) and the recorded seed, re-running the single trial's
        // draw sequence regenerates the reported plan and input exactly,
        // and the reported error replays bitwise — no campaign rerun.
        let net = net();
        let cfg = CampaignConfig {
            trials: 16,
            inputs_per_trial: 12,
            ..CampaignConfig::default()
        };
        let res = run_campaign(
            &net,
            &[2, 1],
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Threads(3),
        );
        let worst = res.worst.expect("faults were injected");
        // The recorded seed is the trial's derived seed.
        assert_eq!(
            worst.seed,
            SeedSequence::new(cfg.seed).seed_for(worst.trial as u64)
        );
        // Re-derive: plan first, then inputs in row-major stream order.
        let mut rng = det_rng(worst.seed);
        let plan = sample_neuron_plan(&net, &[2, 1], FaultSpec::Crash, &mut rng);
        assert_eq!(plan, worst.plan, "plan re-derivation diverged");
        let d = net.input_dim();
        let mut inputs = Matrix::zeros(cfg.inputs_per_trial, d);
        for xi in inputs.data_mut() {
            *xi = rand::Rng::gen_range(&mut rng, 0.0..=1.0);
        }
        let row = (0..cfg.inputs_per_trial)
            .find(|&r| inputs.row(r) == worst.input.as_slice())
            .expect("worst input must appear in the re-drawn stream");
        // And the value replays bitwise as a singleton batch.
        let compiled = CompiledPlan::compile(&plan, &net, cfg.capacity).unwrap();
        let single = Matrix::from_vec(1, d, inputs.row(row).to_vec());
        let mut ws = BatchWorkspace::for_net(&net, 1);
        let replay = compiled.output_error_batch(&net, &single, &mut ws);
        assert_eq!(replay[0].to_bits(), worst.error.to_bits());
    }

    #[test]
    fn zero_fault_campaign_measures_zero() {
        let net = net();
        let cfg = CampaignConfig {
            trials: 5,
            inputs_per_trial: 4,
            ..CampaignConfig::default()
        };
        let res = run_campaign(
            &net,
            &[0, 0],
            TrialKind::Neurons(FaultSpec::Crash),
            &cfg,
            Parallelism::Sequential,
        );
        assert_eq!(res.max_error(), 0.0);
        assert_eq!(res.stats.mean, 0.0);
    }
}

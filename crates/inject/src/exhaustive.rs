//! Exhaustive subset enumeration — the combinatorial explosion, kept on
//! purpose.
//!
//! The paper's Section I motivates the analytic bound by the cost of the
//! experimental alternative: "looking at all the possible inputs and testing
//! all the possible configurations of the network corresponding to
//! different failure situations, facing a discouraging combinatorial
//! explosion". This module implements that alternative (within a budget) so
//! experiment E14 can *measure* the explosion against the O(L) bound.

use neurofail_nn::Mlp;
use neurofail_tensor::Matrix;

use crate::executor::CompiledPlan;
use crate::multi::MultiPlanEvaluator;
use crate::plan::InjectionPlan;

/// Iterator over all `k`-subsets of `0..n` in lexicographic order.
///
/// Standard revolving-door-free implementation: state is the current
/// combination; `next` advances the rightmost index that can move.
#[derive(Debug, Clone)]
pub struct Combinations {
    n: usize,
    k: usize,
    state: Option<Vec<usize>>,
}

impl Combinations {
    /// All `k`-subsets of `{0, …, n−1}` (empty iterator when `k > n`).
    pub fn new(n: usize, k: usize) -> Self {
        let state = if k <= n { Some((0..k).collect()) } else { None };
        Combinations { n, k, state }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.state.clone()?;
        // Advance to the next combination.
        let next = {
            let mut s = current.clone();
            let mut i = self.k;
            loop {
                if i == 0 {
                    break None;
                }
                i -= 1;
                if s[i] < self.n - (self.k - i) {
                    s[i] += 1;
                    for j in i + 1..self.k {
                        s[j] = s[j - 1] + 1;
                    }
                    break Some(s);
                }
            }
        };
        self.state = next;
        Some(current)
    }
}

/// `C(n, k)` without overflow for the sizes used here (u128 internally;
/// saturates at `u128::MAX`).
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    acc
}

/// Result of an exhaustive single-layer crash sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveResult {
    /// Worst disturbance found.
    pub worst_error: f64,
    /// The subset achieving it.
    pub worst_subset: Vec<usize>,
    /// Number of `(subset, input)` evaluations performed.
    pub evaluations: u64,
}

/// Evaluate **every** `k`-subset of layer `layer`'s neurons as a crash set,
/// over the given inputs, and return the worst disturbance. The input set
/// is staged into one batch matrix and evaluated through the multi-plan
/// suffix engine ([`MultiPlanEvaluator`]): one nominal pass for the whole
/// sweep, then per subset a faulty pass **resumed at `layer`** — layers
/// `0..layer` are never recomputed, so a layer-ℓ sweep on an L-layer net
/// skips ℓ/L of each subset's layer work (single-layer subsets are the
/// suffix engine's best case). The count remains
/// `C(N_layer, k) × inputs.len()` evaluations — the explosion itself, now
/// priced at the engine's best per-evaluation rate.
///
/// # Panics
/// If `layer` is out of range or `k` exceeds the layer width.
pub fn exhaustive_crash_search(
    net: &Mlp,
    layer: usize,
    k: usize,
    inputs: &[Vec<f64>],
    capacity: f64,
) -> ExhaustiveResult {
    let xs = stage_inputs(net, layer, &[k], inputs);
    let mut eval = MultiPlanEvaluator::new(net, &xs);
    sweep_one_k(net, &mut eval, layer, k, capacity)
}

/// Copy `inputs` into one batch matrix, validating every argument up
/// front — before the nominal checkpoint pass runs — so malformed sweeps
/// fail fast (shared by the single-k search and the multi-k sweep).
fn stage_inputs(net: &Mlp, layer: usize, ks: &[usize], inputs: &[Vec<f64>]) -> Matrix {
    assert!(layer < net.depth(), "layer {layer} out of range");
    let width = net.widths()[layer];
    for &k in ks {
        assert!(k <= width, "k = {k} exceeds layer width {width}");
    }
    let d = net.input_dim();
    let mut xs = Matrix::zeros(inputs.len(), d);
    for (row, x) in inputs.iter().enumerate() {
        assert_eq!(x.len(), d, "input {row}: dimension mismatch");
        xs.row_mut(row).copy_from_slice(x);
    }
    xs
}

/// Evaluate every `k`-subset of `layer` through the shared checkpoint in
/// `eval`, tracking the lexicographically-first worst subset — the single
/// loop body behind [`exhaustive_crash_search`] and
/// [`exhaustive_crash_sweep`], so worst-case tie-breaking, evaluation
/// counting and plan construction cannot diverge between them.
fn sweep_one_k(
    net: &Mlp,
    eval: &mut MultiPlanEvaluator<'_>,
    layer: usize,
    k: usize,
    capacity: f64,
) -> ExhaustiveResult {
    let width = net.widths()[layer];
    assert!(k <= width, "k = {k} exceeds layer width {width}");
    let mut worst_error = 0.0f64;
    let mut worst_subset = Vec::new();
    let mut evaluations = 0u64;
    for subset in Combinations::new(width, k) {
        let plan = InjectionPlan::crash(subset.iter().map(|&n| (layer, n)));
        let compiled = CompiledPlan::compile(&plan, net, capacity).expect("valid subset");
        let errors = eval.output_error(&compiled);
        evaluations += errors.len() as u64;
        for &err in &errors {
            if err > worst_error {
                worst_error = err;
                worst_subset = subset.clone();
            }
        }
    }
    ExhaustiveResult {
        worst_error,
        worst_subset,
        evaluations,
    }
}

/// Sweep several subset sizes `ks` of one layer over one input set,
/// sharing a **single** nominal checkpoint across the entire sweep: every
/// subset of every `k` is one resumed suffix (the multi-plan engine's
/// plan-family shape). Results are element-wise identical to calling
/// [`exhaustive_crash_search`] once per `k` — the sweep only hoists the
/// per-call nominal pass.
///
/// # Panics
/// As [`exhaustive_crash_search`].
pub fn exhaustive_crash_sweep(
    net: &Mlp,
    layer: usize,
    ks: &[usize],
    inputs: &[Vec<f64>],
    capacity: f64,
) -> Vec<ExhaustiveResult> {
    let xs = stage_inputs(net, layer, ks, inputs);
    let mut eval = MultiPlanEvaluator::new(net, &xs);
    ks.iter()
        .map(|&k| sweep_one_k(net, &mut eval, layer, k, capacity))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::layer::DenseLayer;
    use neurofail_nn::network::Layer;
    use neurofail_tensor::Matrix;

    #[test]
    fn combinations_enumerate_lexicographically() {
        let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(Combinations::new(3, 0).count(), 1); // the empty subset
        assert_eq!(Combinations::new(3, 3).count(), 1);
        assert_eq!(Combinations::new(2, 3).count(), 0);
        assert_eq!(Combinations::new(0, 0).count(), 1);
    }

    #[test]
    fn combination_counts_match_binomial() {
        for n in 0..8u64 {
            for k in 0..=n {
                assert_eq!(
                    Combinations::new(n as usize, k as usize).count() as u128,
                    binomial(n, k),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn binomial_known_values() {
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(50, 25), 126_410_606_437_752);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn k_zero_sweep_is_the_empty_subset_with_zero_disturbance() {
        // C(n, 0) = 1: the sweep evaluates exactly the fault-free plan,
        // whose resumed pass is bitwise the nominal pass — disturbance is
        // exactly 0.0, not merely small.
        let net = Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::identity(3),
                vec![],
                Activation::Identity,
            ))],
            vec![0.1, 0.9, 0.5],
            0.0,
        );
        let inputs = vec![vec![1.0, 1.0, 1.0], vec![0.3, -0.2, 0.7]];
        let res = exhaustive_crash_search(&net, 0, 0, &inputs, 1.0);
        assert_eq!(res.worst_error, 0.0);
        assert_eq!(res.worst_subset, Vec::<usize>::new());
        assert_eq!(res.evaluations, 2); // 1 subset × 2 inputs
    }

    #[test]
    fn k_equal_width_crashes_the_whole_layer() {
        // C(n, n) = 1: the single subset kills every neuron; with a
        // single identity layer the output collapses to exactly 0, so the
        // disturbance equals |F_neu|.
        let net = Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::identity(3),
                vec![],
                Activation::Identity,
            ))],
            vec![0.1, 0.9, 0.5],
            0.0,
        );
        let inputs = vec![vec![1.0, 1.0, 1.0]];
        let res = exhaustive_crash_search(&net, 0, 3, &inputs, 1.0);
        assert_eq!(res.worst_subset, vec![0, 1, 2]);
        assert!((res.worst_error - 1.5).abs() < 1e-12); // 0.1 + 0.9 + 0.5
        assert_eq!(res.evaluations, 1);
    }

    #[test]
    fn last_layer_sweep_on_a_deep_net_matches_per_plan_evaluation() {
        // The suffix engine's best case — a layer-(L−1) sweep resumes at
        // the last layer — must stay bit-identical to the pre-refactor
        // cost model (nominal pass + full faulty pass per subset).
        use neurofail_data::rng::rng;
        use neurofail_nn::builder::MlpBuilder;
        use neurofail_nn::BatchWorkspace;
        use neurofail_tensor::init::Init;
        let net = MlpBuilder::new(2)
            .dense(6, Activation::Sigmoid { k: 1.0 })
            .dense(5, Activation::Tanh { k: 0.9 })
            .dense(4, Activation::Sigmoid { k: 1.1 })
            .init(Init::Xavier)
            .build(&mut rng(17));
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![0.13 * i as f64, 0.4 - 0.07 * i as f64])
            .collect();
        let layer = net.depth() - 1;
        let res = exhaustive_crash_search(&net, layer, 2, &inputs, 1.0);
        // Reference: the per-plan two-full-passes engine.
        let mut xs = Matrix::zeros(inputs.len(), 2);
        for (r, x) in inputs.iter().enumerate() {
            xs.row_mut(r).copy_from_slice(x);
        }
        let mut ws = BatchWorkspace::default();
        let mut worst = 0.0f64;
        let mut worst_subset = Vec::new();
        for subset in Combinations::new(net.widths()[layer], 2) {
            let plan = InjectionPlan::crash(subset.iter().map(|&n| (layer, n)));
            let compiled = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
            for &err in &compiled.output_error_batch(&net, &xs, &mut ws) {
                if err > worst {
                    worst = err;
                    worst_subset = subset.clone();
                }
            }
        }
        assert_eq!(res.worst_error.to_bits(), worst.to_bits());
        assert_eq!(res.worst_subset, worst_subset);
        assert_eq!(res.evaluations, 30); // C(4,2) = 6 subsets × 5 inputs
    }

    #[test]
    fn sweep_matches_per_k_searches_bitwise() {
        use neurofail_data::rng::rng;
        use neurofail_nn::builder::MlpBuilder;
        use neurofail_tensor::init::Init;
        let net = MlpBuilder::new(2)
            .dense(5, Activation::Sigmoid { k: 1.0 })
            .dense(4, Activation::Tanh { k: 1.0 })
            .init(Init::Xavier)
            .build(&mut rng(23));
        let inputs: Vec<Vec<f64>> = (0..4).map(|i| vec![0.2 * i as f64, 0.3]).collect();
        let ks = [0usize, 1, 2, 4];
        let swept = exhaustive_crash_sweep(&net, 1, &ks, &inputs, 1.0);
        for (&k, s) in ks.iter().zip(&swept) {
            let single = exhaustive_crash_search(&net, 1, k, &inputs, 1.0);
            assert_eq!(
                s.worst_error.to_bits(),
                single.worst_error.to_bits(),
                "k={k}"
            );
            assert_eq!(s.worst_subset, single.worst_subset, "k={k}");
            assert_eq!(s.evaluations, single.evaluations, "k={k}");
        }
    }

    #[test]
    fn exhaustive_search_finds_the_known_worst_subset() {
        // Output weights [0.1, 0.9, 0.5]: worst single crash is neuron 1,
        // worst pair is {1, 2} (identity activations make it exact).
        let net = Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::identity(3),
                vec![],
                Activation::Identity,
            ))],
            vec![0.1, 0.9, 0.5],
            0.0,
        );
        let inputs = vec![vec![1.0, 1.0, 1.0], vec![0.2, 0.2, 0.2]];
        let res1 = exhaustive_crash_search(&net, 0, 1, &inputs, 10.0);
        assert_eq!(res1.worst_subset, vec![1]);
        assert!((res1.worst_error - 0.9).abs() < 1e-12);
        assert_eq!(res1.evaluations, 6); // C(3,1) × 2 inputs
        let res2 = exhaustive_crash_search(&net, 0, 2, &inputs, 10.0);
        assert_eq!(res2.worst_subset, vec![1, 2]);
        assert!((res2.worst_error - 1.4).abs() < 1e-12);
    }
}

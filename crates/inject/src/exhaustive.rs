//! Exhaustive subset enumeration — the combinatorial explosion, kept on
//! purpose.
//!
//! The paper's Section I motivates the analytic bound by the cost of the
//! experimental alternative: "looking at all the possible inputs and testing
//! all the possible configurations of the network corresponding to
//! different failure situations, facing a discouraging combinatorial
//! explosion". This module implements that alternative (within a budget) so
//! experiment E14 can *measure* the explosion against the O(L) bound.

use neurofail_nn::{BatchWorkspace, Mlp};
use neurofail_tensor::Matrix;

use crate::executor::CompiledPlan;
use crate::plan::InjectionPlan;

/// Iterator over all `k`-subsets of `0..n` in lexicographic order.
///
/// Standard revolving-door-free implementation: state is the current
/// combination; `next` advances the rightmost index that can move.
#[derive(Debug, Clone)]
pub struct Combinations {
    n: usize,
    k: usize,
    state: Option<Vec<usize>>,
}

impl Combinations {
    /// All `k`-subsets of `{0, …, n−1}` (empty iterator when `k > n`).
    pub fn new(n: usize, k: usize) -> Self {
        let state = if k <= n { Some((0..k).collect()) } else { None };
        Combinations { n, k, state }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.state.clone()?;
        // Advance to the next combination.
        let next = {
            let mut s = current.clone();
            let mut i = self.k;
            loop {
                if i == 0 {
                    break None;
                }
                i -= 1;
                if s[i] < self.n - (self.k - i) {
                    s[i] += 1;
                    for j in i + 1..self.k {
                        s[j] = s[j - 1] + 1;
                    }
                    break Some(s);
                }
            }
        };
        self.state = next;
        Some(current)
    }
}

/// `C(n, k)` without overflow for the sizes used here (u128 internally;
/// saturates at `u128::MAX`).
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    acc
}

/// Result of an exhaustive single-layer crash sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveResult {
    /// Worst disturbance found.
    pub worst_error: f64,
    /// The subset achieving it.
    pub worst_subset: Vec<usize>,
    /// Number of `(subset, input)` evaluations performed.
    pub evaluations: u64,
}

/// Evaluate **every** `k`-subset of layer `layer`'s neurons as a crash set,
/// over the given inputs, and return the worst disturbance. The input set
/// is staged into one batch matrix and each compiled subset plan is
/// evaluated over it in a single batched call, but the count remains
/// `C(N_layer, k) × inputs.len()` evaluations — the explosion itself, now
/// priced at the engine's best per-evaluation rate.
///
/// # Panics
/// If `layer` is out of range or `k` exceeds the layer width.
pub fn exhaustive_crash_search(
    net: &Mlp,
    layer: usize,
    k: usize,
    inputs: &[Vec<f64>],
    capacity: f64,
) -> ExhaustiveResult {
    let widths = net.widths();
    assert!(layer < widths.len(), "layer {layer} out of range");
    assert!(
        k <= widths[layer],
        "k = {k} exceeds layer width {}",
        widths[layer]
    );
    let d = net.input_dim();
    let mut xs = Matrix::zeros(inputs.len(), d);
    for (row, x) in inputs.iter().enumerate() {
        assert_eq!(x.len(), d, "input {row}: dimension mismatch");
        xs.row_mut(row).copy_from_slice(x);
    }
    let mut ws = BatchWorkspace::for_net(net, inputs.len());
    // The nominal outputs are plan-independent: compute them once and diff
    // every subset's faulty pass against them (bitwise identical to
    // per-subset `output_error_batch`, at half the forward passes).
    let nominal = net.forward_batch(&xs, &mut ws);
    let mut worst_error = 0.0f64;
    let mut worst_subset = Vec::new();
    let mut evaluations = 0u64;
    for subset in Combinations::new(widths[layer], k) {
        let plan = InjectionPlan::crash(subset.iter().map(|&n| (layer, n)));
        let compiled = CompiledPlan::compile(&plan, net, capacity).expect("valid subset");
        let faulty = compiled.run_batch(net, &xs, &mut ws);
        evaluations += faulty.len() as u64;
        for (&nom, &fail) in nominal.iter().zip(&faulty) {
            let err = (nom - fail).abs();
            if err > worst_error {
                worst_error = err;
                worst_subset = subset.clone();
            }
        }
    }
    ExhaustiveResult {
        worst_error,
        worst_subset,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::layer::DenseLayer;
    use neurofail_nn::network::Layer;
    use neurofail_tensor::Matrix;

    #[test]
    fn combinations_enumerate_lexicographically() {
        let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(Combinations::new(3, 0).count(), 1); // the empty subset
        assert_eq!(Combinations::new(3, 3).count(), 1);
        assert_eq!(Combinations::new(2, 3).count(), 0);
        assert_eq!(Combinations::new(0, 0).count(), 1);
    }

    #[test]
    fn combination_counts_match_binomial() {
        for n in 0..8u64 {
            for k in 0..=n {
                assert_eq!(
                    Combinations::new(n as usize, k as usize).count() as u128,
                    binomial(n, k),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn binomial_known_values() {
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(50, 25), 126_410_606_437_752);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn exhaustive_search_finds_the_known_worst_subset() {
        // Output weights [0.1, 0.9, 0.5]: worst single crash is neuron 1,
        // worst pair is {1, 2} (identity activations make it exact).
        let net = Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::identity(3),
                vec![],
                Activation::Identity,
            ))],
            vec![0.1, 0.9, 0.5],
            0.0,
        );
        let inputs = vec![vec![1.0, 1.0, 1.0], vec![0.2, 0.2, 0.2]];
        let res1 = exhaustive_crash_search(&net, 0, 1, &inputs, 10.0);
        assert_eq!(res1.worst_subset, vec![1]);
        assert!((res1.worst_error - 0.9).abs() < 1e-12);
        assert_eq!(res1.evaluations, 6); // C(3,1) × 2 inputs
        let res2 = exhaustive_crash_search(&net, 0, 2, &inputs, 10.0);
        assert_eq!(res2.worst_subset, vec![1, 2]);
        assert!((res2.worst_error - 1.4).abs() < 1e-12);
    }
}

//! Executing a network under an injection plan.
//!
//! The executor compiles a plan against a concrete network (validating every
//! site), then interposes on the forward pass through `neurofail-nn`'s
//! [`Tap`] hooks:
//!
//! * neuron faults overwrite entries of the **post-activation** outputs —
//!   exactly Definition 2 (other neurons "consider `y = 0`" for a crash;
//!   Byzantine values are clamped to ±C by the synapse, Assumption 1);
//! * hidden-synapse faults adjust the receiving **pre-activation** sums
//!   (a crashed synapse removes its `w·y` contribution; a Byzantine synapse
//!   adds the Lemma-2 deviation `λ`, clamped to ±C);
//! * output-synapse faults adjust the output node's sum the same way.
//!
//! The measured quantity downstream is `|F_neu(X) − F_fail(X)|` — the
//! left-hand side of Theorem 2's inequality.

use neurofail_nn::{BatchTap, BatchWorkspace, Mlp, Tap, Workspace};
use neurofail_par::seed::splitmix64;
use neurofail_tensor::io::{ByteReader, ByteWriter, DecodeError};
use neurofail_tensor::Matrix;

use crate::plan::{ByzantineStrategy, InjectionPlan, NeuronFault, SynapseFault, SynapseTarget};

/// Plan/network mismatch reported at compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Neuron site outside the network.
    BadNeuron {
        /// 0-based layer index of the offending site.
        layer: usize,
        /// Neuron index of the offending site.
        neuron: usize,
    },
    /// Synapse site outside the network.
    BadSynapse(
        /// Human-readable description of the offending site.
        String,
    ),
    /// The same neuron appears in two sites.
    DuplicateNeuron {
        /// 0-based layer index.
        layer: usize,
        /// Neuron index.
        neuron: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadNeuron { layer, neuron } => {
                write!(f, "no neuron {neuron} in layer {layer}")
            }
            PlanError::BadSynapse(s) => write!(f, "invalid synapse site: {s}"),
            PlanError::DuplicateNeuron { layer, neuron } => {
                write!(f, "duplicate fault on neuron {neuron} of layer {layer}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A synapse fault with its nominal weight resolved against the network, so
/// crashes can remove exactly the contribution `w_ji · y_i` at run time.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ResolvedSynapseFault {
    /// Remove `weight · input[from]` from the receiving sum.
    Crash {
        /// The nominal synaptic weight captured at compile time.
        weight: f64,
    },
    /// Add the (capacity-clamped) deviation to the receiving sum.
    Byzantine(f64),
}

/// A plan validated and indexed against a network, ready for repeated
/// execution (compile once, run over many inputs).
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    /// Per layer: `(neuron, fault)` sites, sorted by neuron.
    neuron_sites: Vec<Vec<(usize, NeuronFault)>>,
    /// Per layer: hidden synapse sites `(to, from, fault)`.
    synapse_sites: Vec<Vec<(usize, usize, ResolvedSynapseFault)>>,
    /// Output-node synapse sites `(from, fault)`.
    output_sites: Vec<(usize, ResolvedSynapseFault)>,
    /// Synaptic capacity C (clamps all adversarial values).
    capacity: f64,
}

impl CompiledPlan {
    /// Validate `plan` against `net` under capacity `c`.
    ///
    /// # Errors
    /// [`PlanError`] on any out-of-range or duplicate site.
    pub fn compile(plan: &InjectionPlan, net: &Mlp, capacity: f64) -> Result<Self, PlanError> {
        assert!(capacity > 0.0, "capacity must be positive");
        let widths = net.widths();
        let depth = widths.len();
        let mut neuron_sites = vec![Vec::new(); depth];
        for s in &plan.neurons {
            if s.layer >= depth || s.neuron >= widths[s.layer] {
                return Err(PlanError::BadNeuron {
                    layer: s.layer,
                    neuron: s.neuron,
                });
            }
            if neuron_sites[s.layer].iter().any(|&(n, _)| n == s.neuron) {
                return Err(PlanError::DuplicateNeuron {
                    layer: s.layer,
                    neuron: s.neuron,
                });
            }
            neuron_sites[s.layer].push((s.neuron, s.fault));
        }
        for sites in &mut neuron_sites {
            sites.sort_by_key(|&(n, _)| n);
        }

        let mut synapse_sites = vec![Vec::new(); depth];
        let mut output_sites = Vec::new();
        for s in &plan.synapses {
            match s.target {
                SynapseTarget::Hidden { layer, to, from } => {
                    let fan_in = if layer == 0 {
                        net.input_dim()
                    } else if layer < depth {
                        widths[layer - 1]
                    } else {
                        return Err(PlanError::BadSynapse(format!("layer {layer} out of range")));
                    };
                    if to >= widths[layer] || from >= fan_in {
                        return Err(PlanError::BadSynapse(format!(
                            "synapse {from}->{to} at layer {layer}"
                        )));
                    }
                    let resolved = match s.fault {
                        SynapseFault::Crash => ResolvedSynapseFault::Crash {
                            weight: net.layers()[layer].weight(to, from),
                        },
                        SynapseFault::Byzantine(d) => ResolvedSynapseFault::Byzantine(d),
                    };
                    synapse_sites[layer].push((to, from, resolved));
                }
                SynapseTarget::Output { from } => {
                    if from >= widths[depth - 1] {
                        return Err(PlanError::BadSynapse(format!("output synapse from {from}")));
                    }
                    let resolved = match s.fault {
                        SynapseFault::Crash => ResolvedSynapseFault::Crash {
                            weight: net.output_weights()[from],
                        },
                        SynapseFault::Byzantine(d) => ResolvedSynapseFault::Byzantine(d),
                    };
                    output_sites.push((from, resolved));
                }
            }
        }
        Ok(CompiledPlan {
            neuron_sites,
            synapse_sites,
            output_sites,
            capacity,
        })
    }

    /// The capacity this plan was compiled under.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Run the faulty forward pass, returning `F_fail(x)`.
    pub fn run(&self, net: &Mlp, x: &[f64], ws: &mut Workspace) -> f64 {
        let mut tap = InjectorTap { plan: self };
        net.forward_tapped(x, ws, &mut tap)
    }

    /// Convenience: `|F_neu(x) − F_fail(x)|` with an internal workspace.
    pub fn output_error(&self, net: &Mlp, x: &[f64], ws: &mut Workspace) -> f64 {
        let nominal = net.forward_ws(x, ws);
        let faulty = self.run(net, x, ws);
        (nominal - faulty).abs()
    }

    /// Run the faulty forward pass over a whole batch (rows of `xs`),
    /// returning `F_fail(x_b)` per row — one GEMM-based pass for the plan
    /// instead of `B` scalar passes. Row `b`'s value is bitwise independent
    /// of the batch it rides in (the engine's determinism contract), so a
    /// campaign observation replays exactly as a singleton batch.
    pub fn run_batch(&self, net: &Mlp, xs: &Matrix, ws: &mut BatchWorkspace) -> Vec<f64> {
        let mut tap = BatchInjectorTap { plan: self };
        net.forward_batch_tapped(xs, ws, &mut tap)
    }

    /// Batched `|F_neu(x_b) − F_fail(x_b)|`: one nominal batched pass plus
    /// one **full** faulty batched pass over the plan's whole input set —
    /// the suffix engine's reference implementation. The hot loops
    /// (campaigns, exhaustive sweeps, serve flushes) now route through
    /// [`CompiledPlan::output_error_resumed`] / [`crate::multi`], which
    /// skip the faulty pass's unfaulted prefix and are **bitwise** equal
    /// to this call; this two-full-passes form remains the contract both
    /// are stated against (and what the adversarial input search, whose
    /// candidate inputs change every step, still uses directly). As
    /// singleton rows it is also the reference for the serving engine's
    /// bitwise contract.
    ///
    /// # Example
    /// ```
    /// use neurofail_data::rng::rng;
    /// use neurofail_inject::{CompiledPlan, InjectionPlan};
    /// use neurofail_nn::{activation::Activation, BatchWorkspace, MlpBuilder};
    /// use neurofail_tensor::{init::Init, Matrix};
    ///
    /// let net = MlpBuilder::new(2)
    ///     .dense(5, Activation::Sigmoid { k: 1.0 })
    ///     .init(Init::Xavier)
    ///     .build(&mut rng(3));
    ///
    /// // Compile once (crash neuron 2 of layer 1), evaluate over a batch.
    /// let plan = CompiledPlan::compile(&InjectionPlan::crash([(0, 2)]), &net, 1.0)?;
    /// let xs = Matrix::from_fn(8, 2, |r, c| r as f64 * 0.1 + c as f64 * 0.05);
    /// let mut ws = BatchWorkspace::for_net(&net, 8);
    /// let errors = plan.output_error_batch(&net, &xs, &mut ws);
    /// assert_eq!(errors.len(), 8);
    /// assert!(errors.iter().all(|&e| e >= 0.0));
    ///
    /// // Per-row batch independence: any row replays exactly as a
    /// // singleton batch.
    /// let one = Matrix::from_vec(1, 2, xs.row(3).to_vec());
    /// assert_eq!(plan.output_error_batch(&net, &one, &mut ws)[0], errors[3]);
    /// # Ok::<(), neurofail_inject::PlanError>(())
    /// ```
    pub fn output_error_batch(&self, net: &Mlp, xs: &Matrix, ws: &mut BatchWorkspace) -> Vec<f64> {
        let mut errors = net.forward_batch(xs, ws);
        let faulty = self.run_batch(net, xs, ws);
        for (e, f) in errors.iter_mut().zip(&faulty) {
            *e = (*e - f).abs();
        }
        errors
    }

    /// The earliest forward-pass stage this plan interposes on, as the
    /// layer a resumed faulty pass must restart from:
    ///
    /// * `l` — the plan faults layer `l`'s pre-activation sums (a hidden
    ///   synapse into `l`) or post-activation outputs (a neuron of `l`),
    ///   whichever site is earliest;
    /// * `depth` (= number of per-layer site tables) — the plan touches
    ///   only output synapses, or nothing at all: every hidden layer of a
    ///   faulty pass is bitwise nominal and only the output dot product
    ///   differs.
    ///
    /// Layers `< first_faulty_layer()` of a faulty pass recompute exactly
    /// the nominal values, which is what lets the suffix engine replace
    /// them with a shared checkpoint (see [`crate::multi`]).
    pub fn first_faulty_layer(&self) -> usize {
        self.neuron_sites
            .iter()
            .zip(&self.synapse_sites)
            .position(|(n, s)| !n.is_empty() || !s.is_empty())
            .unwrap_or(self.neuron_sites.len())
    }

    /// Run the faulty pass as a **suffix resume**: `resume_input` holds
    /// the nominal layer-`from_layer − 1` activations (see
    /// [`Mlp::resume_batch_from`]), and only layers `from_layer..L` plus
    /// the output combination are recomputed under this plan's taps.
    ///
    /// Bitwise identical to [`CompiledPlan::run_batch`] over the inputs
    /// that produced the checkpoint whenever
    /// `from_layer <= self.first_faulty_layer()` — the skipped prefix of
    /// the full faulty pass recomputes nominal values exactly.
    ///
    /// # Panics
    /// If the plan's depth does not match `net`'s (the plan must have been
    /// compiled against this network).
    pub fn resume_batch_from(
        &self,
        net: &Mlp,
        resume_input: &Matrix,
        ws: &mut BatchWorkspace,
        from_layer: usize,
    ) -> Vec<f64> {
        assert_eq!(
            self.neuron_sites.len(),
            net.depth(),
            "resume_batch_from: plan/network depth mismatch"
        );
        let mut tap = BatchInjectorTap { plan: self };
        net.resume_batch_from(resume_input, ws, &mut tap, from_layer)
    }

    /// [`CompiledPlan::resume_batch_from`] with the resume input borrowed
    /// from a nominal checkpoint over `xs` (see
    /// [`Mlp::resume_batch_tapped`], which validates the checkpoint's
    /// shape and selects the layer-`from_layer − 1` tap) — the one place
    /// the checkpoint-source selection lives, shared by the single-plan
    /// path and the multi-plan evaluator.
    pub fn resume_batch_checkpointed(
        &self,
        net: &Mlp,
        xs: &Matrix,
        ws_nominal: &BatchWorkspace,
        ws_scratch: &mut BatchWorkspace,
        from_layer: usize,
    ) -> Vec<f64> {
        assert_eq!(
            self.neuron_sites.len(),
            net.depth(),
            "resume_batch_checkpointed: plan/network depth mismatch"
        );
        let mut tap = BatchInjectorTap { plan: self };
        net.resume_batch_tapped(xs, ws_nominal, ws_scratch, &mut tap, from_layer)
    }

    /// Suffix-engine `|F_neu(x_b) − F_fail(x_b)|`: one nominal pass into
    /// `ws_nominal` (the checkpoint), then a faulty pass that resumes at
    /// [`CompiledPlan::first_faulty_layer`] into `ws_scratch`, skipping
    /// the unfaulted prefix entirely.
    ///
    /// **Bitwise** equal to [`CompiledPlan::output_error_batch`] for every
    /// plan, batch size and input set (property-tested in
    /// `tests/suffix_equivalence.rs`); the saving is the faulty pass's
    /// prefix — `first_faulty_layer / depth` of its layer work, all of it
    /// for output-synapse-only plans.
    pub fn output_error_resumed(
        &self,
        net: &Mlp,
        xs: &Matrix,
        ws_nominal: &mut BatchWorkspace,
        ws_scratch: &mut BatchWorkspace,
    ) -> Vec<f64> {
        let mut errors = net.forward_batch(xs, ws_nominal);
        let from = self.first_faulty_layer();
        let faulty = self.resume_batch_checkpointed(net, xs, ws_nominal, ws_scratch, from);
        for (e, f) in errors.iter_mut().zip(&faulty) {
            *e = (*e - f).abs();
        }
        errors
    }

    /// [`CompiledPlan::output_error_resumed`] against an **existing**
    /// nominal checkpoint: the caller supplies the taps (`ws_nominal`)
    /// and nominal outputs (`nominal_y`) a previous nominal pass over
    /// `(net, xs)` produced — from a
    /// [`CheckpointCache`](crate::CheckpointCache) entry, a
    /// [`MultiPlanEvaluator`](crate::MultiPlanEvaluator), or a streaming
    /// chunk — and only the faulty suffix runs. Bitwise equal to
    /// [`CompiledPlan::output_error_batch`] under the usual checkpoint
    /// validity rules (the checkpoint must come from a nominal pass over
    /// exactly this `(net, xs)`).
    ///
    /// # Panics
    /// If the checkpoint does not match `(net, xs)` in shape, or
    /// `nominal_y.len() != xs.rows()`.
    pub fn output_error_checkpointed(
        &self,
        net: &Mlp,
        xs: &Matrix,
        ws_nominal: &BatchWorkspace,
        nominal_y: &[f64],
        ws_scratch: &mut BatchWorkspace,
    ) -> Vec<f64> {
        assert_eq!(
            nominal_y.len(),
            xs.rows(),
            "output_error_checkpointed: nominal_y/input row mismatch"
        );
        let from = self.first_faulty_layer();
        let mut errors = self.resume_batch_checkpointed(net, xs, ws_nominal, ws_scratch, from);
        for (e, &nom) in errors.iter_mut().zip(nominal_y) {
            *e = (nom - *e).abs();
        }
        errors
    }
}

impl CompiledPlan {
    fn clamp(&self, v: f64) -> f64 {
        v.clamp(-self.capacity, self.capacity)
    }

    /// Deterministic "arbitrary" value for a Random-strategy site.
    fn site_value(&self, seed: u64, layer: usize, neuron: usize) -> f64 {
        let h = splitmix64(seed ^ splitmix64((layer as u64) << 32 | neuron as u64));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        self.capacity * (2.0 * unit - 1.0)
    }

    /// The value a faulty neuron broadcasts given its `nominal` output —
    /// the single Definition-2 resolution shared by the scalar and batched
    /// taps, so the batch/scalar equivalence contract cannot drift when a
    /// fault kind is added or its semantics change.
    fn neuron_fault_value(
        &self,
        fault: NeuronFault,
        nominal: f64,
        layer: usize,
        neuron: usize,
    ) -> f64 {
        match fault {
            NeuronFault::Crash => 0.0,
            NeuronFault::StuckAt(v) => self.clamp(v),
            NeuronFault::Byzantine(strategy) => match strategy {
                ByzantineStrategy::MaxPositive => self.capacity,
                ByzantineStrategy::MaxNegative => -self.capacity,
                ByzantineStrategy::OpposeNominal => -self.capacity * nominal.signum(),
                ByzantineStrategy::Random { seed } => self.site_value(seed, layer, neuron),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Structural plumbing for the admission pipeline (`crate::ir`).
//
// A compiled plan factors into a value-independent *body* — site positions,
// fault kinds, resolved crash weights, capacity — and the fault *values*
// that parameterize it (stuck-at levels, Byzantine strategies/deviations).
// Plans equal up to fault value share one body; the helpers below live here
// because they walk `CompiledPlan`'s private site tables.
// ---------------------------------------------------------------------------

/// Fault values extracted from a compiled plan in canonical site order
/// (layers ascending; neuron sites sorted by neuron; hidden synapse sites in
/// plan order per layer; output sites last). [`CompiledPlan::merge_values`]
/// consumes the same order, so a value vector re-attaches to any
/// structurally equal body.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct PlanValues {
    /// `StuckAt` levels, in neuron-site order.
    stuck: Vec<f64>,
    /// Byzantine neuron strategies, in neuron-site order.
    byzantine: Vec<ByzantineStrategy>,
    /// Byzantine synapse deviations (hidden then output), in site order.
    deltas: Vec<f64>,
}

impl PlanValues {
    /// Deterministic encoding — hashed into the per-plan value identity.
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.stuck.len() as u64);
        w.put_f64_slice(&self.stuck);
        w.put_u64(self.byzantine.len() as u64);
        for s in &self.byzantine {
            match s {
                ByzantineStrategy::MaxPositive => w.put_u64(0),
                ByzantineStrategy::MaxNegative => w.put_u64(1),
                ByzantineStrategy::OpposeNominal => w.put_u64(2),
                ByzantineStrategy::Random { seed } => {
                    w.put_u64(3);
                    w.put_u64(*seed);
                }
            }
        }
        w.put_u64(self.deltas.len() as u64);
        w.put_f64_slice(&self.deltas);
    }

    pub(crate) fn push_neuron(&mut self, fault: &NeuronFault) {
        match fault {
            NeuronFault::Crash => {}
            NeuronFault::StuckAt(v) => self.stuck.push(*v),
            NeuronFault::Byzantine(s) => self.byzantine.push(*s),
        }
    }

    pub(crate) fn push_synapse(&mut self, fault: &SynapseFault) {
        if let SynapseFault::Byzantine(d) = fault {
            self.deltas.push(*d);
        }
    }
}

/// Canonical value placeholders a body stores in place of real fault values.
const CANON_STUCK: NeuronFault = NeuronFault::StuckAt(0.0);
const CANON_BYZ: NeuronFault = NeuronFault::Byzantine(ByzantineStrategy::MaxPositive);

impl CompiledPlan {
    /// Split into `(canonical body, extracted values)`: fault values are
    /// replaced by fixed placeholders so structurally equal plans produce
    /// byte-identical bodies. `merge_values(body, values)` inverts this.
    pub(crate) fn split_values(&self) -> (CompiledPlan, PlanValues) {
        let mut body = self.clone();
        let mut values = PlanValues::default();
        for sites in &mut body.neuron_sites {
            for (_, fault) in sites.iter_mut() {
                match *fault {
                    NeuronFault::Crash => {}
                    NeuronFault::StuckAt(v) => {
                        values.stuck.push(v);
                        *fault = CANON_STUCK;
                    }
                    NeuronFault::Byzantine(s) => {
                        values.byzantine.push(s);
                        *fault = CANON_BYZ;
                    }
                }
            }
        }
        let mut strip_syn = |fault: &mut ResolvedSynapseFault| {
            if let ResolvedSynapseFault::Byzantine(d) = *fault {
                values.deltas.push(d);
                *fault = ResolvedSynapseFault::Byzantine(0.0);
            }
        };
        for sites in &mut body.synapse_sites {
            for (_, _, fault) in sites.iter_mut() {
                strip_syn(fault);
            }
        }
        for (_, fault) in &mut body.output_sites {
            strip_syn(fault);
        }
        (body, values)
    }

    /// Re-attach `values` to a clone of `body` — the dedup-hit and
    /// warm-admission materialization path, skipping validation and weight
    /// resolution entirely.
    ///
    /// # Panics
    /// If the value counts do not match the body's value slots (the caller
    /// proves structural equality by byte comparison before calling).
    pub(crate) fn merge_values(body: &CompiledPlan, values: &PlanValues) -> CompiledPlan {
        let mut plan = body.clone();
        let mut stuck = values.stuck.iter();
        let mut byz = values.byzantine.iter();
        let mut deltas = values.deltas.iter();
        for sites in &mut plan.neuron_sites {
            for (_, fault) in sites.iter_mut() {
                match fault {
                    NeuronFault::Crash => {}
                    NeuronFault::StuckAt(v) => {
                        *v = *stuck.next().expect("stuck-at value count mismatch");
                    }
                    NeuronFault::Byzantine(s) => {
                        *s = *byz.next().expect("byzantine strategy count mismatch");
                    }
                }
            }
        }
        {
            let mut fill_syn = |fault: &mut ResolvedSynapseFault| {
                if let ResolvedSynapseFault::Byzantine(d) = fault {
                    *d = *deltas.next().expect("synapse delta count mismatch");
                }
            };
            for sites in &mut plan.synapse_sites {
                for (_, _, fault) in sites.iter_mut() {
                    fill_syn(fault);
                }
            }
            for (_, fault) in &mut plan.output_sites {
                fill_syn(fault);
            }
        }
        assert!(
            stuck.next().is_none() && byz.next().is_none() && deltas.next().is_none(),
            "merge_values: leftover values after site walk"
        );
        plan
    }

    /// Deterministic full encoding (sites, kinds, resolved weights, values,
    /// capacity) — the compiled-plan store payload. `decode_body` inverts
    /// it with full validation.
    pub(crate) fn encode_body(&self, w: &mut ByteWriter) {
        w.put_u64(self.neuron_sites.len() as u64);
        for sites in &self.neuron_sites {
            w.put_u64(sites.len() as u64);
            for &(neuron, fault) in sites {
                w.put_u64(neuron as u64);
                match fault {
                    NeuronFault::Crash => w.put_u64(0),
                    NeuronFault::StuckAt(v) => {
                        w.put_u64(1);
                        w.put_f64(v);
                    }
                    NeuronFault::Byzantine(s) => {
                        w.put_u64(2);
                        match s {
                            ByzantineStrategy::MaxPositive => w.put_u64(0),
                            ByzantineStrategy::MaxNegative => w.put_u64(1),
                            ByzantineStrategy::OpposeNominal => w.put_u64(2),
                            ByzantineStrategy::Random { seed } => {
                                w.put_u64(3);
                                w.put_u64(seed);
                            }
                        }
                    }
                }
            }
        }
        w.put_u64(self.synapse_sites.len() as u64);
        for sites in &self.synapse_sites {
            w.put_u64(sites.len() as u64);
            for &(to, from, fault) in sites {
                w.put_u64(to as u64);
                w.put_u64(from as u64);
                encode_syn(w, fault);
            }
        }
        w.put_u64(self.output_sites.len() as u64);
        for &(from, fault) in &self.output_sites {
            w.put_u64(from as u64);
            encode_syn(w, fault);
        }
        w.put_f64(self.capacity);
    }

    /// Decode a body previously written by [`CompiledPlan::encode_body`].
    /// Structural validation against a concrete network is the caller's job
    /// ([`CompiledPlan::verify_against`]); this only enforces wire-format
    /// sanity.
    pub(crate) fn decode_body(r: &mut ByteReader<'_>) -> Result<CompiledPlan, DecodeError> {
        let depth = r.get_len(8)?;
        let mut neuron_sites = Vec::with_capacity(depth);
        for _ in 0..depth {
            let n = r.get_len(16)?;
            let mut sites = Vec::with_capacity(n);
            for _ in 0..n {
                let neuron = r.get_u64()? as usize;
                let fault = match r.get_u64()? {
                    0 => NeuronFault::Crash,
                    1 => NeuronFault::StuckAt(r.get_f64()?),
                    2 => NeuronFault::Byzantine(match r.get_u64()? {
                        0 => ByzantineStrategy::MaxPositive,
                        1 => ByzantineStrategy::MaxNegative,
                        2 => ByzantineStrategy::OpposeNominal,
                        3 => ByzantineStrategy::Random { seed: r.get_u64()? },
                        _ => return Err(DecodeError("unknown byzantine strategy tag")),
                    }),
                    _ => return Err(DecodeError("unknown neuron fault tag")),
                };
                sites.push((neuron, fault));
            }
            neuron_sites.push(sites);
        }
        let sdepth = r.get_len(8)?;
        if sdepth != depth {
            return Err(DecodeError("synapse table depth mismatch"));
        }
        let mut synapse_sites = Vec::with_capacity(depth);
        for _ in 0..depth {
            let n = r.get_len(24)?;
            let mut sites = Vec::with_capacity(n);
            for _ in 0..n {
                let to = r.get_u64()? as usize;
                let from = r.get_u64()? as usize;
                sites.push((to, from, decode_syn(r)?));
            }
            synapse_sites.push(sites);
        }
        let n_out = r.get_len(16)?;
        let mut output_sites = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            let from = r.get_u64()? as usize;
            output_sites.push((from, decode_syn(r)?));
        }
        let capacity = r.get_f64()?;
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(DecodeError("capacity out of range"));
        }
        Ok(CompiledPlan {
            neuron_sites,
            synapse_sites,
            output_sites,
            capacity,
        })
    }

    /// Re-validate a decoded body against `net`: every site must be in
    /// range, neuron sites sorted and duplicate-free, and every resolved
    /// crash weight **bitwise** equal to the network's current weight. A
    /// store record that fails this degrades to a miss (hashes index,
    /// decode proves — exactly the checkpoint store's contract).
    pub(crate) fn verify_against(&self, net: &Mlp) -> bool {
        let widths = net.widths();
        let depth = widths.len();
        if self.neuron_sites.len() != depth || self.synapse_sites.len() != depth {
            return false;
        }
        for (layer, sites) in self.neuron_sites.iter().enumerate() {
            for w in sites.windows(2) {
                if w[0].0 >= w[1].0 {
                    return false;
                }
            }
            if sites.iter().any(|&(n, _)| n >= widths[layer]) {
                return false;
            }
        }
        for (layer, sites) in self.synapse_sites.iter().enumerate() {
            let fan_in = if layer == 0 {
                net.input_dim()
            } else {
                widths[layer - 1]
            };
            for &(to, from, fault) in sites {
                if to >= widths[layer] || from >= fan_in {
                    return false;
                }
                if let ResolvedSynapseFault::Crash { weight } = fault {
                    if weight.to_bits() != net.layers()[layer].weight(to, from).to_bits() {
                        return false;
                    }
                }
            }
        }
        for &(from, fault) in &self.output_sites {
            if from >= widths[depth - 1] {
                return false;
            }
            if let ResolvedSynapseFault::Crash { weight } = fault {
                if weight.to_bits() != net.output_weights()[from].to_bits() {
                    return false;
                }
            }
        }
        true
    }

    /// The value-independent structure encoding of this compiled plan —
    /// byte-identical to [`crate::ir::plan_structure_bytes`] over the
    /// source plan, which is what makes plan-level admission keys and
    /// compiled-level bodies interchangeable as dedup identities.
    pub(crate) fn structure_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.neuron_sites.len() as u64);
        for sites in &self.neuron_sites {
            w.put_u64(sites.len() as u64);
            for &(neuron, fault) in sites {
                w.put_u64(neuron as u64);
                w.put_u64(match fault {
                    NeuronFault::Crash => 0,
                    NeuronFault::StuckAt(_) => 1,
                    NeuronFault::Byzantine(_) => 2,
                });
            }
        }
        for sites in &self.synapse_sites {
            w.put_u64(sites.len() as u64);
            for &(to, from, fault) in sites {
                w.put_u64(to as u64);
                w.put_u64(from as u64);
                w.put_u64(match fault {
                    ResolvedSynapseFault::Crash { .. } => 0,
                    ResolvedSynapseFault::Byzantine(_) => 1,
                });
            }
        }
        w.put_u64(self.output_sites.len() as u64);
        for &(from, fault) in &self.output_sites {
            w.put_u64(from as u64);
            w.put_u64(match fault {
                ResolvedSynapseFault::Crash { .. } => 0,
                ResolvedSynapseFault::Byzantine(_) => 1,
            });
        }
        w.put_u64(self.capacity.to_bits());
        w.into_bytes()
    }
}

fn encode_syn(w: &mut ByteWriter, fault: ResolvedSynapseFault) {
    match fault {
        ResolvedSynapseFault::Crash { weight } => {
            w.put_u64(0);
            w.put_f64(weight);
        }
        ResolvedSynapseFault::Byzantine(d) => {
            w.put_u64(1);
            w.put_f64(d);
        }
    }
}

fn decode_syn(r: &mut ByteReader<'_>) -> Result<ResolvedSynapseFault, DecodeError> {
    match r.get_u64()? {
        0 => Ok(ResolvedSynapseFault::Crash {
            weight: r.get_f64()?,
        }),
        1 => Ok(ResolvedSynapseFault::Byzantine(r.get_f64()?)),
        _ => Err(DecodeError("unknown synapse fault tag")),
    }
}

/// The Tap adapter applying a compiled plan during a forward pass.
struct InjectorTap<'a> {
    plan: &'a CompiledPlan,
}

impl Tap for InjectorTap<'_> {
    fn pre_activation(&mut self, layer: usize, input: &[f64], sums: &mut [f64]) {
        for &(to, from, fault) in &self.plan.synapse_sites[layer] {
            match fault {
                ResolvedSynapseFault::Crash { weight } => {
                    // Remove the nominal contribution w_ji · y_i (the input
                    // already reflects any left-layer faults, matching the
                    // synchronous message-passing semantics).
                    sums[to] -= weight * input[from];
                }
                ResolvedSynapseFault::Byzantine(delta) => {
                    sums[to] += self.plan.clamp(delta);
                }
            }
        }
    }

    fn post_activation(&mut self, layer: usize, outputs: &mut [f64]) {
        for &(neuron, fault) in &self.plan.neuron_sites[layer] {
            let nominal = outputs[neuron];
            outputs[neuron] = self.plan.neuron_fault_value(fault, nominal, layer, neuron);
        }
    }

    fn output_sum(&mut self, last_out: &[f64], sum: &mut f64) {
        for &(from, fault) in &self.plan.output_sites {
            match fault {
                ResolvedSynapseFault::Crash { weight } => {
                    *sum -= weight * last_out[from];
                }
                ResolvedSynapseFault::Byzantine(delta) => {
                    *sum += self.plan.clamp(delta);
                }
            }
        }
    }
}

/// The BatchTap adapter applying a compiled plan to a whole batch: the same
/// fault semantics as [`InjectorTap`], applied per batch row. Site values
/// (e.g. the Random strategy's deterministic "arbitrary" value) depend only
/// on the site, exactly as in the scalar path, so a plan disturbs every
/// batch item identically to a scalar execution.
struct BatchInjectorTap<'a> {
    plan: &'a CompiledPlan,
}

impl BatchTap for BatchInjectorTap<'_> {
    fn pre_activation(&mut self, layer: usize, input: &Matrix, sums: &mut Matrix) {
        for &(to, from, fault) in &self.plan.synapse_sites[layer] {
            match fault {
                ResolvedSynapseFault::Crash { weight } => {
                    for b in 0..sums.rows() {
                        let removed = weight * input.get(b, from);
                        sums.set(b, to, sums.get(b, to) - removed);
                    }
                }
                ResolvedSynapseFault::Byzantine(delta) => {
                    let delta = self.plan.clamp(delta);
                    for b in 0..sums.rows() {
                        sums.set(b, to, sums.get(b, to) + delta);
                    }
                }
            }
        }
    }

    fn post_activation(&mut self, layer: usize, outputs: &mut Matrix) {
        for &(neuron, fault) in &self.plan.neuron_sites[layer] {
            for b in 0..outputs.rows() {
                let nominal = outputs.get(b, neuron);
                outputs.set(
                    b,
                    neuron,
                    self.plan.neuron_fault_value(fault, nominal, layer, neuron),
                );
            }
        }
    }

    fn output_sum(&mut self, last_out: &Matrix, sums: &mut [f64]) {
        for &(from, fault) in &self.plan.output_sites {
            match fault {
                ResolvedSynapseFault::Crash { weight } => {
                    for (b, s) in sums.iter_mut().enumerate() {
                        *s -= weight * last_out.get(b, from);
                    }
                }
                ResolvedSynapseFault::Byzantine(delta) => {
                    let delta = self.plan.clamp(delta);
                    for s in sums.iter_mut() {
                        *s += delta;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{NeuronSite, SynapseSite};
    use neurofail_nn::activation::Activation;
    use neurofail_nn::layer::DenseLayer;
    use neurofail_nn::network::Layer;
    use neurofail_tensor::Matrix;

    fn linear_net() -> Mlp {
        // 2 inputs -> 2 identity neurons -> output with weights [1, 2].
        Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
                vec![],
                Activation::Identity,
            ))],
            vec![1.0, 2.0],
            0.0,
        )
    }

    #[test]
    fn crash_neuron_zeroes_its_contribution() {
        let net = linear_net();
        let plan = InjectionPlan::crash([(0, 1)]);
        let c = CompiledPlan::compile(&plan, &net, 10.0).unwrap();
        let mut ws = Workspace::for_net(&net);
        // Nominal: x0 + 2 x1 = 0.5 + 2·0.25 = 1.0; crashed neuron 1: 0.5.
        assert_eq!(net.forward(&[0.5, 0.25]), 1.0);
        assert_eq!(c.run(&net, &[0.5, 0.25], &mut ws), 0.5);
        assert_eq!(c.output_error(&net, &[0.5, 0.25], &mut ws), 0.5);
    }

    #[test]
    fn byzantine_values_are_clamped_to_capacity() {
        let net = linear_net();
        for (strategy, expected) in [
            (ByzantineStrategy::MaxPositive, 2.0),
            (ByzantineStrategy::MaxNegative, -2.0),
        ] {
            let plan = InjectionPlan::byzantine([(0, 0)], strategy);
            let c = CompiledPlan::compile(&plan, &net, 2.0).unwrap();
            let mut ws = Workspace::for_net(&net);
            // Output = v·1 + 2·x1, with x = [0, 0]: output = v.
            assert_eq!(c.run(&net, &[0.0, 0.0], &mut ws), expected);
        }
    }

    #[test]
    fn stuck_at_clamps() {
        let net = linear_net();
        let plan = InjectionPlan {
            neurons: vec![NeuronSite {
                layer: 0,
                neuron: 0,
                fault: NeuronFault::StuckAt(100.0),
            }],
            synapses: vec![],
        };
        let c = CompiledPlan::compile(&plan, &net, 1.5).unwrap();
        let mut ws = Workspace::for_net(&net);
        assert_eq!(c.run(&net, &[0.0, 0.0], &mut ws), 1.5);
    }

    #[test]
    fn oppose_nominal_flips_sign() {
        let net = linear_net();
        let plan = InjectionPlan::byzantine([(0, 0)], ByzantineStrategy::OpposeNominal);
        let c = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
        let mut ws = Workspace::for_net(&net);
        // Nominal y0 = 0.5 > 0 → adversary sends −C = −1.
        assert_eq!(c.run(&net, &[0.5, 0.0], &mut ws), -1.0);
    }

    #[test]
    fn random_strategy_is_deterministic_and_bounded() {
        let net = linear_net();
        let plan =
            InjectionPlan::byzantine([(0, 0), (0, 1)], ByzantineStrategy::Random { seed: 5 });
        let c = CompiledPlan::compile(&plan, &net, 0.7).unwrap();
        let mut ws = Workspace::for_net(&net);
        let a = c.run(&net, &[0.3, 0.3], &mut ws);
        let b = c.run(&net, &[0.3, 0.3], &mut ws);
        assert_eq!(a, b);
        // |output| = |v0 + 2 v1| ≤ 0.7 + 1.4.
        assert!(a.abs() <= 2.1 + 1e-12);
    }

    #[test]
    fn byzantine_synapse_shifts_sum() {
        let net = linear_net();
        let plan = InjectionPlan {
            neurons: vec![],
            synapses: vec![
                SynapseSite {
                    target: SynapseTarget::Hidden {
                        layer: 0,
                        to: 0,
                        from: 1,
                    },
                    fault: SynapseFault::Byzantine(0.25),
                },
                SynapseSite {
                    target: SynapseTarget::Output { from: 0 },
                    fault: SynapseFault::Byzantine(-4.0), // clamped to −1
                },
            ],
        };
        let c = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
        let mut ws = Workspace::for_net(&net);
        // x = [0,0]: neuron 0 sum = 0 + 0.25 → y0 = 0.25; output = 0.25 − 1.
        assert_eq!(c.run(&net, &[0.0, 0.0], &mut ws), -0.75);
    }

    #[test]
    fn crash_synapse_removes_exact_contribution() {
        let net = linear_net();
        let plan = InjectionPlan {
            neurons: vec![],
            synapses: vec![
                SynapseSite {
                    target: SynapseTarget::Hidden {
                        layer: 0,
                        to: 1,
                        from: 1,
                    },
                    fault: SynapseFault::Crash,
                },
                SynapseSite {
                    target: SynapseTarget::Output { from: 0 },
                    fault: SynapseFault::Crash,
                },
            ],
        };
        let c = CompiledPlan::compile(&plan, &net, 10.0).unwrap();
        let mut ws = Workspace::for_net(&net);
        // x = [0.5, 0.25]: hidden crash kills neuron 1's input (y1 = 0),
        // output crash kills w0·y0. Output = 0 + 2·0 = 0? y1 = x1 via
        // identity weight from input 1, crashed → y1 = 0; output synapse 0
        // crashed → output = 2·y1 = 0.
        assert_eq!(c.run(&net, &[0.5, 0.25], &mut ws), 0.0);
        // Crash of only the output synapse: output = 2·x1 = 0.5.
        let plan2 = InjectionPlan {
            neurons: vec![],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Output { from: 0 },
                fault: SynapseFault::Crash,
            }],
        };
        let c2 = CompiledPlan::compile(&plan2, &net, 10.0).unwrap();
        assert_eq!(c2.run(&net, &[0.5, 0.25], &mut ws), 0.5);
    }

    #[test]
    fn compile_rejects_bad_sites() {
        let net = linear_net();
        assert!(matches!(
            CompiledPlan::compile(&InjectionPlan::crash([(0, 9)]), &net, 1.0),
            Err(PlanError::BadNeuron { .. })
        ));
        assert!(matches!(
            CompiledPlan::compile(&InjectionPlan::crash([(3, 0)]), &net, 1.0),
            Err(PlanError::BadNeuron { .. })
        ));
        assert!(matches!(
            CompiledPlan::compile(&InjectionPlan::crash([(0, 0), (0, 0)]), &net, 1.0),
            Err(PlanError::DuplicateNeuron { .. })
        ));
        let bad_syn = InjectionPlan {
            neurons: vec![],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Output { from: 17 },
                fault: SynapseFault::Crash,
            }],
        };
        assert!(matches!(
            CompiledPlan::compile(&bad_syn, &net, 1.0),
            Err(PlanError::BadSynapse(_))
        ));
    }

    #[test]
    fn run_batch_matches_scalar_run_for_every_fault_kind() {
        let net = linear_net();
        let plans = vec![
            InjectionPlan::none(),
            InjectionPlan::crash([(0, 1)]),
            InjectionPlan::byzantine([(0, 0)], ByzantineStrategy::MaxNegative),
            InjectionPlan::byzantine([(0, 1)], ByzantineStrategy::OpposeNominal),
            InjectionPlan::byzantine([(0, 0), (0, 1)], ByzantineStrategy::Random { seed: 5 }),
            InjectionPlan {
                neurons: vec![NeuronSite {
                    layer: 0,
                    neuron: 0,
                    fault: NeuronFault::StuckAt(0.3),
                }],
                synapses: vec![
                    SynapseSite {
                        target: SynapseTarget::Hidden {
                            layer: 0,
                            to: 0,
                            from: 1,
                        },
                        fault: SynapseFault::Byzantine(0.25),
                    },
                    SynapseSite {
                        target: SynapseTarget::Hidden {
                            layer: 0,
                            to: 1,
                            from: 1,
                        },
                        fault: SynapseFault::Crash,
                    },
                    SynapseSite {
                        target: SynapseTarget::Output { from: 0 },
                        fault: SynapseFault::Crash,
                    },
                    SynapseSite {
                        target: SynapseTarget::Output { from: 1 },
                        fault: SynapseFault::Byzantine(-4.0),
                    },
                ],
            },
        ];
        let xs = Matrix::from_vec(4, 2, vec![0.5, 0.25, 0.0, 0.0, -0.3, 0.8, 1.0, -1.0]);
        let mut ws = Workspace::for_net(&net);
        let mut bws = BatchWorkspace::for_net(&net, 4);
        for plan in &plans {
            let c = CompiledPlan::compile(plan, &net, 1.0).unwrap();
            let batch = c.run_batch(&net, &xs, &mut bws);
            let errors = c.output_error_batch(&net, &xs, &mut bws);
            for b in 0..xs.rows() {
                let scalar = c.run(&net, xs.row(b), &mut ws);
                // Identity activations and ≤2-term sums: exact agreement.
                assert_eq!(batch[b], scalar, "plan {plan:?}, row {b}");
                let scalar_err = c.output_error(&net, xs.row(b), &mut ws);
                assert_eq!(errors[b], scalar_err, "plan {plan:?}, row {b}");
            }
        }
    }

    #[test]
    fn output_error_batch_handles_empty_batch() {
        let net = linear_net();
        let c = CompiledPlan::compile(&InjectionPlan::crash([(0, 0)]), &net, 1.0).unwrap();
        let mut bws = BatchWorkspace::default();
        assert!(c
            .output_error_batch(&net, &Matrix::zeros(0, 2), &mut bws)
            .is_empty());
    }

    #[test]
    fn empty_plan_is_identity() {
        let net = linear_net();
        let c = CompiledPlan::compile(&InjectionPlan::none(), &net, 1.0).unwrap();
        let mut ws = Workspace::for_net(&net);
        for x in [[0.1, 0.9], [0.5, 0.5], [1.0, 0.0]] {
            assert_eq!(c.run(&net, &x, &mut ws), net.forward(&x));
            assert_eq!(c.output_error(&net, &x, &mut ws), 0.0);
        }
    }
}

//! The worst-case adversary — the paper's tightness constructions, made
//! executable.
//!
//! Theorem 1's tightness proof kills "key neurons: those with highest
//! weights" at an input "where those same neurons were instrumental:
//! broadcasting the highest possible value y, as close to 1 as possible",
//! with the equality case requiring the killed weights to be *positively
//! proportional* (same sign). This module implements exactly that
//! playbook:
//!
//! * [`worst_crash_plan`] — pick the `k` same-sign largest-|w| neurons of a
//!   layer (ranked by their synaptic weight towards the output side);
//! * [`adversarial_input`] — search the input cube for the disturbance
//!   maximiser;
//! * [`saturating_single_layer`] — the constructive tightness witness: a
//!   network whose neurons can all be driven to `y ≈ 1`, on which the
//!   measured error provably approaches `f · w_m`.

use neurofail_data::rng::DetRng;
use neurofail_nn::activation::Activation;
use neurofail_nn::layer::DenseLayer;
use neurofail_nn::network::{BatchWorkspace, Layer, Mlp};
use neurofail_tensor::Matrix;

use crate::executor::CompiledPlan;
use crate::input_search::{maximize_batch, SearchConfig};
use crate::plan::InjectionPlan;

/// Rank layer `layer`'s neurons by the magnitude of their strongest
/// same-sign synapse towards the next stage (output weights for the last
/// layer), descending. `positive` selects the sign group, implementing the
/// "positively proportional" equality condition.
pub fn rank_by_outgoing_weight(net: &Mlp, layer: usize, positive: bool) -> Vec<usize> {
    let widths = net.widths();
    assert!(layer < widths.len(), "layer {layer} out of range");
    let n = widths[layer];
    let score = |i: usize| -> f64 {
        if layer + 1 == widths.len() {
            let w = net.output_weights()[i];
            if positive == (w >= 0.0) {
                w.abs()
            } else {
                0.0
            }
        } else {
            // Strongest same-sign synapse into the next layer.
            let next = &net.layers()[layer + 1];
            (0..next.out_dim())
                .map(|j| {
                    let w = next.weight(j, i);
                    if positive == (w >= 0.0) {
                        w.abs()
                    } else {
                        0.0
                    }
                })
                .fold(0.0, f64::max)
        }
    };
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| score(b).partial_cmp(&score(a)).unwrap());
    idx
}

/// The paper's worst-case crash plan: the `k` highest same-sign-weight
/// neurons of `layer`. Tries both sign groups and returns the plan whose
/// summed outgoing weight magnitude is larger.
pub fn worst_crash_plan(net: &Mlp, layer: usize, k: usize) -> InjectionPlan {
    let widths = net.widths();
    assert!(
        k <= widths[layer],
        "cannot crash {k} of {} neurons",
        widths[layer]
    );
    let weight_of = |i: usize| -> f64 {
        if layer + 1 == widths.len() {
            net.output_weights()[i]
        } else {
            let next = &net.layers()[layer + 1];
            (0..next.out_dim())
                .map(|j| next.weight(j, i))
                .fold(0.0f64, |m, w| if w.abs() > m.abs() { w } else { m })
        }
    };
    let pick = |positive: bool| -> (f64, Vec<usize>) {
        let ranked = rank_by_outgoing_weight(net, layer, positive);
        let chosen: Vec<usize> = ranked.into_iter().take(k).collect();
        let mass: f64 = chosen
            .iter()
            .map(|&i| {
                let w = weight_of(i);
                if positive == (w >= 0.0) {
                    w.abs()
                } else {
                    0.0
                }
            })
            .sum();
        (mass, chosen)
    };
    let (mp, sp) = pick(true);
    let (mn, sn) = pick(false);
    let sites = if mp >= mn { sp } else { sn };
    InjectionPlan::crash(sites.into_iter().map(|n| (layer, n)))
}

/// Search the input cube for the disturbance maximiser of a compiled plan:
/// `argmax_X |F_neu(X) − F_fail(X)|`. Returns `(worst error, input)`.
///
/// Runs the lockstep multi-restart driver: every coordinate step evaluates
/// the whole restart frontier (`2 × restarts` candidate inputs) through one
/// batched [`CompiledPlan::output_error_batch`] call, reusing a single
/// [`BatchWorkspace`] across the entire search.
pub fn adversarial_input(
    net: &Mlp,
    plan: &CompiledPlan,
    cfg: &SearchConfig,
    rng: &mut DetRng,
) -> (f64, Vec<f64>) {
    let d = net.input_dim();
    // Shape-agnostic: the driver's first call evaluates `restarts` rows and
    // later calls 2× the live frontier, so let the engine size the buffers
    // on first use instead of guessing (wrongly) here.
    let mut ws = BatchWorkspace::default();
    maximize_batch(d, |xs| plan.output_error_batch(net, xs, &mut ws), cfg, rng)
}

/// The tightness witness of Theorem 1: a single layer of `n` sigmoid
/// neurons with equal positive output weights `w_out` and a steep input
/// gain, so that the all-ones input drives every neuron's output to
/// `y ≈ 1`. Crashing any `f` neurons at that input loses `≈ f · w_out` —
/// the bound `N_fail · w_m` with equality in the limit of saturation.
pub fn saturating_single_layer(d: usize, n: usize, w_out: f64, gain: f64) -> Mlp {
    // First layer: every neuron sums all inputs with weight `gain`.
    let weights = Matrix::from_fn(n, d, |_, _| gain);
    Mlp::new(
        vec![Layer::Dense(DenseLayer::new(
            weights,
            vec![],
            Activation::Sigmoid { k: 1.0 },
        ))],
        vec![w_out; n],
        0.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_core::{crash_fep, Capacity, NetworkProfile};
    use neurofail_data::rng::rng;

    #[test]
    fn ranking_orders_by_weight_magnitude() {
        let net = Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::identity(4),
                vec![],
                Activation::Identity,
            ))],
            vec![0.3, -0.9, 0.7, 0.1],
            0.0,
        );
        assert_eq!(rank_by_outgoing_weight(&net, 0, true)[..2], [2, 0]);
        assert_eq!(rank_by_outgoing_weight(&net, 0, false)[0], 1);
        // Worst pair: positive mass 0.3+0.7 = 1.0 > negative mass 0.9.
        let plan = worst_crash_plan(&net, 0, 2);
        let mut neurons: Vec<usize> = plan.neurons.iter().map(|s| s.neuron).collect();
        neurons.sort_unstable();
        assert_eq!(neurons, vec![0, 2]);
    }

    #[test]
    fn tightness_witness_approaches_theorem1_bound() {
        // n = 16 neurons, w_out = 0.05, steep gain: crash the worst f = 4.
        let net = saturating_single_layer(2, 16, 0.05, 50.0);
        let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(1.0)).unwrap();
        let f = 4;
        let bound = crash_fep(&profile, &[f]); // = f · w_out · sup ϕ
        assert!((bound - 0.2).abs() < 1e-12);
        let plan = worst_crash_plan(&net, 0, f);
        let compiled = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
        let (worst, x) = adversarial_input(&net, &compiled, &SearchConfig::default(), &mut rng(80));
        // Saturated sigmoids: measured ≥ 99% of the tight bound, never above.
        assert!(
            worst <= bound + 1e-12,
            "measured {worst} above bound {bound}"
        );
        assert!(
            worst > 0.99 * bound,
            "tightness not approached: {worst} vs {bound}"
        );
        // At the found input every neuron is saturated (y ≈ 1) — the
        // paper's "broadcasting the highest possible value" equality case.
        // (With gain 50 the centre input already saturates, so the search
        // need not move towards the corner.)
        let mut ws = neurofail_nn::Workspace::for_net(&net);
        let _ = net.forward_ws(&x, &mut ws);
        assert!(
            ws.outs[0].iter().all(|&y| y > 0.999),
            "outputs {:?}",
            ws.outs[0]
        );
    }

    #[test]
    fn adversarial_beats_random_choice() {
        // On an uneven-weight network the adversarial subset must disturb
        // at least as much as the first-k subset.
        let net = Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::identity(6),
                vec![],
                Activation::Identity,
            ))],
            vec![0.01, 0.02, 0.9, 0.8, 0.03, 0.04],
            0.0,
        );
        let adv = worst_crash_plan(&net, 0, 2);
        let naive = InjectionPlan::crash([(0, 0), (0, 1)]);
        let ca = CompiledPlan::compile(&adv, &net, 10.0).unwrap();
        let cn = CompiledPlan::compile(&naive, &net, 10.0).unwrap();
        let mut rng_a = rng(81);
        let (ea, _) = adversarial_input(&net, &ca, &SearchConfig::default(), &mut rng_a);
        let mut rng_n = rng(81);
        let (en, _) = adversarial_input(&net, &cn, &SearchConfig::default(), &mut rng_n);
        assert!(ea >= en);
        assert!((ea - 1.7).abs() < 1e-6, "0.9 + 0.8 at saturating input");
    }
}

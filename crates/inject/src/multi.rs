//! The multi-plan suffix engine: share one nominal pass across many plans.
//!
//! Every plan-family workload — campaigns over random plans, the
//! exhaustive k-crash sweeps, tolerance searches — evaluates *many plans
//! on one network over one input set*. Evaluating each plan with
//! [`CompiledPlan::output_error_batch`] pays a full nominal **and** a full
//! faulty forward pass per plan, even when the plan only faults the last
//! layer or an output synapse. But the nominal pass is plan-independent,
//! and the prefix of a faulty pass (layers before the plan's first faulty
//! site) recomputes exactly the nominal values — so both are shared work.
//!
//! [`MultiPlanEvaluator`] computes the nominal pass **once**, keeps its
//! per-layer taps as a checkpoint, and resumes each plan's faulty pass at
//! that plan's [`CompiledPlan::first_faulty_layer`]: a layer-ℓ crash
//! subset on an L-layer net skips ℓ/L of the faulty pass's layer work, and
//! an output-synapse-only plan reduces to one O(N_L) dot product per row.
//! Unlike the GEMM batching wins (bounded by the host's FMA throughput),
//! this eliminates flops outright, so it speeds up any hardware.
//!
//! Bitwise contract: every value produced here equals the corresponding
//! per-plan [`CompiledPlan::output_error_batch`] call bit for bit, for
//! every suffix split, batch size and `Parallelism` policy — unfaulted
//! prefix layers recompute the exact same values with the exact same
//! kernels, so skipping them changes nothing (`tests/suffix_equivalence.rs`).

use neurofail_nn::{BatchWorkspace, Mlp};
use neurofail_tensor::Matrix;

use crate::executor::CompiledPlan;

/// A shared nominal checkpoint over `(net, xs)` plus the scratch space to
/// resume any number of plans' faulty suffixes against it.
///
/// Construction runs the nominal batched pass once; each
/// [`run_plan`](MultiPlanEvaluator::run_plan) /
/// [`output_error`](MultiPlanEvaluator::output_error) call afterwards costs
/// only the plan's faulty **suffix**. The checkpoint workspace is read-only
/// after construction (the aliasing rule that makes one checkpoint safe to
/// share across plans); all suffix recomputation goes to a second scratch
/// workspace.
///
/// Plans must be compiled against the same `net` the evaluator was built
/// over — the usual [`CompiledPlan`] contract, depth-asserted at resume.
#[derive(Debug)]
pub struct MultiPlanEvaluator<'a> {
    net: &'a Mlp,
    xs: &'a Matrix,
    /// Nominal per-layer taps — the checkpoint. Never written after `new`.
    nominal_ws: BatchWorkspace,
    /// Nominal outputs `F_neu(x_b)` per row.
    nominal_y: Vec<f64>,
    /// Scratch for resumed faulty suffixes, reused across plans.
    scratch: BatchWorkspace,
    /// Layer-rows of faulty-prefix recomputation avoided so far.
    prefix_rows_saved: u64,
}

impl<'a> MultiPlanEvaluator<'a> {
    /// Build a checkpoint over `xs` (rows = inputs) through `net`,
    /// allocating fresh workspaces.
    pub fn new(net: &'a Mlp, xs: &'a Matrix) -> Self {
        Self::with_workspaces(
            net,
            xs,
            BatchWorkspace::default(),
            BatchWorkspace::default(),
        )
    }

    /// As [`MultiPlanEvaluator::new`], reusing caller-provided workspaces
    /// (allocation-free once they have grown — the shape long-lived loops
    /// like the serving engine's flush loop want). Recover them with
    /// [`into_workspaces`](MultiPlanEvaluator::into_workspaces).
    pub fn with_workspaces(
        net: &'a Mlp,
        xs: &'a Matrix,
        mut nominal_ws: BatchWorkspace,
        scratch: BatchWorkspace,
    ) -> Self {
        let nominal_y = net.forward_batch(xs, &mut nominal_ws);
        MultiPlanEvaluator {
            net,
            xs,
            nominal_ws,
            nominal_y,
            scratch,
            prefix_rows_saved: 0,
        }
    }

    /// The nominal outputs `F_neu(x_b)`, row-aligned with `xs`.
    pub fn nominal_outputs(&self) -> &[f64] {
        &self.nominal_y
    }

    /// Borrow the nominal checkpoint workspace (read-only by contract).
    pub fn nominal_workspace(&self) -> &BatchWorkspace {
        &self.nominal_ws
    }

    /// Faulty outputs `F_fail(x_b)` of `plan`, resumed at its first
    /// faulty layer. Bitwise equal to
    /// [`CompiledPlan::run_batch`]`(net, xs, …)`.
    pub fn run_plan(&mut self, plan: &CompiledPlan) -> Vec<f64> {
        let from = plan.first_faulty_layer().min(self.net.depth());
        let faulty = plan.resume_batch_checkpointed(
            self.net,
            self.xs,
            &self.nominal_ws,
            &mut self.scratch,
            from,
        );
        self.prefix_rows_saved += from as u64 * self.xs.rows() as u64;
        faulty
    }

    /// Disturbances `|F_neu(x_b) − F_fail(x_b)|` of `plan`. Bitwise equal
    /// to [`CompiledPlan::output_error_batch`]`(net, xs, …)`.
    pub fn output_error(&mut self, plan: &CompiledPlan) -> Vec<f64> {
        let mut errors = self.run_plan(plan);
        for (e, &nom) in errors.iter_mut().zip(&self.nominal_y) {
            *e = (nom - *e).abs();
        }
        errors
    }

    /// Layer-rows of faulty-prefix work skipped so far: a plan resumed at
    /// layer `f` over `B` rows adds `f · B` (a per-plan
    /// [`CompiledPlan::output_error_batch`] would have recomputed all of
    /// them inside its full faulty pass).
    pub fn prefix_rows_saved(&self) -> u64 {
        self.prefix_rows_saved
    }

    /// Recover the workspaces for reuse by the next evaluator.
    pub fn into_workspaces(self) -> (BatchWorkspace, BatchWorkspace) {
        (self.nominal_ws, self.scratch)
    }
}

/// Evaluate many plans on one network over one shared input set: one
/// nominal pass total, one resumed faulty **suffix** per plan.
///
/// Returns one disturbance vector per plan (row-aligned with `xs`), each
/// **bitwise** equal to the corresponding per-plan
/// [`CompiledPlan::output_error_batch`] call.
///
/// # Example
/// ```
/// use neurofail_data::rng::rng;
/// use neurofail_inject::{output_error_many, CompiledPlan, InjectionPlan};
/// use neurofail_nn::{activation::Activation, BatchWorkspace, MlpBuilder};
/// use neurofail_tensor::{init::Init, Matrix};
///
/// let net = MlpBuilder::new(2)
///     .dense(6, Activation::Sigmoid { k: 1.0 })
///     .dense(4, Activation::Sigmoid { k: 1.0 })
///     .init(Init::Xavier)
///     .build(&mut rng(11));
/// let plans: Vec<CompiledPlan> = [(0usize, 1usize), (1, 0), (1, 3)]
///     .iter()
///     .map(|&site| CompiledPlan::compile(&InjectionPlan::crash([site]), &net, 1.0).unwrap())
///     .collect();
/// let xs = Matrix::from_fn(8, 2, |r, c| 0.1 * r as f64 + 0.05 * c as f64);
///
/// // One shared nominal pass + three faulty suffixes…
/// let many = output_error_many(&net, &xs, &plans);
///
/// // …bitwise equal to three standalone nominal + faulty pass pairs.
/// let mut ws = BatchWorkspace::for_net(&net, 8);
/// for (plan, errs) in plans.iter().zip(&many) {
///     let direct = plan.output_error_batch(&net, &xs, &mut ws);
///     assert!(errs.iter().zip(&direct).all(|(a, b)| a.to_bits() == b.to_bits()));
/// }
/// ```
pub fn output_error_many(net: &Mlp, xs: &Matrix, plans: &[CompiledPlan]) -> Vec<Vec<f64>> {
    let mut eval = MultiPlanEvaluator::new(net, xs);
    plans.iter().map(|p| eval.output_error(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{
        ByzantineStrategy, InjectionPlan, NeuronFault, NeuronSite, SynapseFault, SynapseSite,
        SynapseTarget,
    };
    use neurofail_data::rng::rng;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::builder::MlpBuilder;
    use neurofail_tensor::init::Init;

    fn deep_net() -> Mlp {
        MlpBuilder::new(3)
            .dense(7, Activation::Sigmoid { k: 1.2 })
            .dense(6, Activation::Tanh { k: 0.8 })
            .dense(5, Activation::Sigmoid { k: 1.0 })
            .init(Init::Xavier)
            .build(&mut rng(42))
    }

    fn plan_family() -> Vec<InjectionPlan> {
        vec![
            InjectionPlan::none(),
            InjectionPlan::crash([(0, 2)]),
            InjectionPlan::crash([(1, 0), (1, 5)]),
            InjectionPlan::crash([(2, 4)]),
            InjectionPlan::byzantine([(2, 1)], ByzantineStrategy::OpposeNominal),
            InjectionPlan::byzantine([(1, 3)], ByzantineStrategy::Random { seed: 7 }),
            InjectionPlan {
                neurons: vec![NeuronSite {
                    layer: 2,
                    neuron: 0,
                    fault: NeuronFault::StuckAt(0.4),
                }],
                synapses: vec![SynapseSite {
                    target: SynapseTarget::Hidden {
                        layer: 2,
                        to: 1,
                        from: 2,
                    },
                    fault: SynapseFault::Crash,
                }],
            },
            InjectionPlan {
                neurons: vec![],
                synapses: vec![SynapseSite {
                    target: SynapseTarget::Output { from: 3 },
                    fault: SynapseFault::Byzantine(0.6),
                }],
            },
        ]
    }

    #[test]
    fn first_faulty_layer_classifies_sites() {
        let net = deep_net();
        let cases = [
            (InjectionPlan::none(), 3),
            (InjectionPlan::crash([(0, 1)]), 0),
            (InjectionPlan::crash([(2, 1)]), 2),
            (
                InjectionPlan {
                    neurons: vec![],
                    synapses: vec![SynapseSite {
                        target: SynapseTarget::Hidden {
                            layer: 1,
                            to: 0,
                            from: 2,
                        },
                        fault: SynapseFault::Crash,
                    }],
                },
                1,
            ),
            (
                InjectionPlan {
                    neurons: vec![],
                    synapses: vec![SynapseSite {
                        target: SynapseTarget::Output { from: 0 },
                        fault: SynapseFault::Crash,
                    }],
                },
                3,
            ),
        ];
        for (plan, expected) in cases {
            let c = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
            assert_eq!(c.first_faulty_layer(), expected, "{plan:?}");
        }
    }

    #[test]
    fn many_is_bitwise_equal_to_per_plan_batches() {
        let net = deep_net();
        let plans: Vec<CompiledPlan> = plan_family()
            .iter()
            .map(|p| CompiledPlan::compile(p, &net, 1.0).unwrap())
            .collect();
        for b in [0usize, 1, 5] {
            let xs = Matrix::from_fn(b, 3, |r, c| 0.17 * r as f64 - 0.2 + 0.09 * c as f64);
            let many = output_error_many(&net, &xs, &plans);
            let mut ws = BatchWorkspace::default();
            for (pi, (plan, errs)) in plans.iter().zip(&many).enumerate() {
                let direct = plan.output_error_batch(&net, &xs, &mut ws);
                assert_eq!(errs.len(), direct.len());
                for (row, (a, d)) in errs.iter().zip(&direct).enumerate() {
                    assert_eq!(a.to_bits(), d.to_bits(), "plan {pi}, B {b}, row {row}");
                }
            }
        }
    }

    #[test]
    fn evaluator_counts_prefix_rows_saved() {
        let net = deep_net();
        let xs = Matrix::from_fn(4, 3, |r, c| 0.2 * (r + c) as f64);
        let mut eval = MultiPlanEvaluator::new(&net, &xs);
        let late = CompiledPlan::compile(&InjectionPlan::crash([(2, 0)]), &net, 1.0).unwrap();
        let _ = eval.output_error(&late);
        assert_eq!(eval.prefix_rows_saved(), 2 * 4);
        let early = CompiledPlan::compile(&InjectionPlan::crash([(0, 0)]), &net, 1.0).unwrap();
        let _ = eval.output_error(&early);
        assert_eq!(eval.prefix_rows_saved(), 2 * 4); // early plan saves nothing
        let (nominal_ws, scratch) = eval.into_workspaces();
        assert_eq!(nominal_ws.batch(), 4);
        assert_eq!(scratch.batch(), 4);
    }

    #[test]
    fn repeated_evaluation_of_one_plan_is_stable() {
        let net = deep_net();
        let xs = Matrix::from_fn(3, 3, |r, c| 0.11 * r as f64 + 0.07 * c as f64);
        let plan = CompiledPlan::compile(&InjectionPlan::crash([(1, 1)]), &net, 1.0).unwrap();
        let mut eval = MultiPlanEvaluator::new(&net, &xs);
        let first = eval.output_error(&plan);
        let second = eval.output_error(&plan);
        assert_eq!(first, second);
    }
}

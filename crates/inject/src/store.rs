//! Persistent content-addressed artifact store: the checkpoint cache's
//! disk tier.
//!
//! [`CheckpointCache`](crate::CheckpointCache) removed the repeated
//! nominal pass *within* a process; this module removes it *across*
//! processes and restarts. An [`ArtifactStore`] is a directory of
//! fixed-layout binary records keyed by content — for nominal
//! checkpoints, by `(`[`net_content_hash`]`, `[`input_set_hash`]`)` — so
//! any consumer that evaluates the same network over the same input set
//! (a restarted search, a fresh serve worker, a second machine sharing a
//! filesystem) starts warm: the first query is served without a nominal
//! forward pass.
//!
//! ## Record format
//!
//! Every record is one file, `{kind:02x}-{net:016x}-{aux:016x}.rec`,
//! laid out as a 48-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//!      0     8  magic "NFART001"
//!      8     8  meta word: schema version (byte 0), record kind (byte 1),
//!               6 reserved bytes for future record kinds' use
//!     16     8  net content hash   (key, little-endian)
//!     24     8  aux content hash   (input-set hash / name hash)
//!     32     8  payload length in bytes
//!     40     8  payload checksum   (io::checksum64: FNV-1a/SplitMix64)
//!     48     …  payload            (little-endian 64-bit words)
//! ```
//!
//! Record kinds: `0` nominal checkpoint, `1` trained network, `2`
//! compiled plan — the admission pipeline's value-independent plan
//! bodies, keyed by `(net hash, structure-bytes hash)` so a restarted
//! process warm-starts admission (see [`crate::ir`]). The header carries
//! kind + reserved bytes precisely so new artifact kinds need no format
//! bump. A checkpoint payload embeds the **full serialized network**
//! ([`net_to_bytes`]) and the full input set alongside the per-layer
//! taps, because the store inherits the cache's core rule: *hashes are
//! the index, never the proof*. A hit is admitted only after the header
//! keys, payload length, content checksum, stored network bytes, and
//! stored input-set bits all verify — so corruption, truncation, or a
//! 64-bit hash collision degrades to a **miss** (counted in
//! [`StoreStats::verify_rejects`]), never a wrong value. That is
//! ARCHITECTURE contract 13: a damaged store is bitwise-indistinguishable
//! from a cold store.
//!
//! ## Durability discipline
//!
//! * **Atomic publish**: records are written to a `.tmp-<pid>-<seq>` file
//!   and `rename(2)`d into place. A writer killed mid-publish leaves
//!   either no record or a whole record — a stray temp file is swept on
//!   the next [`ArtifactStore::open`], never read.
//! * **Zero-copy reads**: records are read through
//!   [`MappedFile`] (`mmap` on Unix), validated in place, and the taps
//!   copied straight into the caller's [`BatchWorkspace`]. Reads take no
//!   lock: published records are immutable, and on Unix an unlinked
//!   file's pages stay valid under a live mapping, so eviction by another
//!   process cannot tear a read.
//! * **Cross-process exclusivity**: all mutations (publish, evict,
//!   index rewrite, temp sweep) serialize on an advisory `LOCK` file via
//!   [`std::fs::File::lock`]. The OS releases the lock when the holder
//!   dies, so readers and later writers never block on a stale lock.
//! * **Byte-budget LRU eviction**: an index file (`index.v1`, itself
//!   checksummed and rewritten atomically) persists sizes and recency;
//!   publishes evict least-recently-used records until the store fits
//!   [`ArtifactStore::set_byte_budget`]. The index is a cache of
//!   bookkeeping, not of truth: [`ArtifactStore::open`] always reconciles
//!   it against the directory, so a zeroed or stale index only costs
//!   recency information, never correctness.
//!
//! Chaos sites `store::publish_temp`, `store::publish_rename`, and
//! `store::index_rewrite` (armed through
//! `neurofail_par::failpoint::ChaosSchedule` under the
//! `failpoints` feature) kill writers deterministically at each stage of
//! a publish; `tests/store_corruption.rs` drives them to certify
//! contract 13.

use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};

use neurofail_nn::{net_from_bytes, net_to_bytes, BatchWorkspace, Mlp};
use neurofail_tensor::io::{checksum64, ByteReader, ByteWriter, DecodeError, MappedFile};
use neurofail_tensor::Matrix;

use crate::cache::{input_set_hash, net_content_hash};
use crate::executor::CompiledPlan;

/// Store format version carried in every record and index header.
pub const STORE_FORMAT_VERSION: u8 = 1;

/// Record kind: a nominal checkpoint (`BatchWorkspace` taps + outputs).
pub const KIND_CHECKPOINT: u8 = 0;
/// Record kind: a trained network stored under a name.
pub const KIND_TRAINED_NET: u8 = 1;
/// Record kind: a compiled plan body (value-independent structure with
/// resolved crash weights), written by the admission pipeline.
pub const KIND_COMPILED_PLAN: u8 = 2;

const MAGIC: u64 = u64::from_le_bytes(*b"NFART001");
const INDEX_MAGIC: u64 = u64::from_le_bytes(*b"NFIDX001");
const HEADER_BYTES: usize = 48;
const INDEX_FILE: &str = "index.v1";
const LOCK_FILE: &str = "LOCK";

/// Point-in-time store counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups served from a verified on-disk record.
    pub hits: u64,
    /// Lookups with no record on disk (including records evicted by a
    /// concurrent process between index check and open).
    pub misses: u64,
    /// Records rejected by verification — bad magic/version/keys, length
    /// or checksum mismatch, or stored network/input bits differing from
    /// the caller's. Each reject deletes the damaged record and degrades
    /// to a miss (contract 13).
    pub verify_rejects: u64,
    /// Records published by this handle.
    pub inserts: u64,
    /// Records removed by byte-budget LRU pressure.
    pub evictions: u64,
    /// Records currently indexed.
    pub entries: usize,
    /// Total record bytes currently indexed.
    pub bytes: u64,
    /// Layer-rows of nominal recomputation skipped by hits (the
    /// [`CacheStats::nominal_rows_saved`](crate::CacheStats::nominal_rows_saved)
    /// accounting, at the disk tier).
    pub nominal_rows_saved: u64,
}

/// In-memory mirror of one index row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexEntry {
    kind: u8,
    net_hash: u64,
    aux_hash: u64,
    bytes: u64,
    last_used: u64,
}

/// A persistent content-addressed artifact store rooted at a directory.
///
/// Multiple handles — in one process or many — may share a directory:
/// mutations serialize on an advisory lock file, reads are lock-free, and
/// every hit is bitwise-verified, so the worst a concurrent mutation can
/// cause is a miss.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    byte_budget: u64,
    entries: Vec<IndexEntry>,
    tick: u64,
    temp_seq: u64,
    hits: u64,
    misses: u64,
    verify_rejects: u64,
    inserts: u64,
    evictions: u64,
    nominal_rows_saved: u64,
    /// Memoised canonical encoding of the most recent network, keyed by
    /// its content hash — searches and serve flushes hammer one network,
    /// so verification re-encodes it once, not per lookup.
    encoded_net: Option<(u64, Vec<u8>)>,
}

impl ArtifactStore {
    /// Open (creating if needed) the store rooted at `dir`.
    ///
    /// Takes the store lock once to sweep stale temp files and reconcile
    /// the index against the directory: rows whose record vanished are
    /// dropped, unindexed records are adopted (as least-recently-used),
    /// and a missing or corrupt index file is rebuilt from scratch — the
    /// directory is the ground truth, the index only bookkeeping.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut store = ArtifactStore {
            dir,
            byte_budget: u64::MAX,
            entries: Vec::new(),
            tick: 0,
            temp_seq: 0,
            hits: 0,
            misses: 0,
            verify_rejects: 0,
            inserts: 0,
            evictions: 0,
            nominal_rows_saved: 0,
            encoded_net: None,
        };
        let _lock = store.lock_exclusive()?;
        let indexed = store.read_index().unwrap_or_default();
        store.entries = store.reconcile(indexed)?;
        store.tick = store.entries.iter().map(|e| e.last_used).max().unwrap_or(0);
        store.write_index().ok(); // best effort; directory stays truth
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cap the store at `bytes` of record payload; the next mutation
    /// evicts least-recently-used records down to the cap. `u64::MAX`
    /// (the default) disables eviction.
    pub fn set_byte_budget(&mut self, bytes: u64) {
        self.byte_budget = bytes;
    }

    /// Builder-style [`set_byte_budget`](Self::set_byte_budget).
    pub fn with_byte_budget(mut self, bytes: u64) -> Self {
        self.set_byte_budget(bytes);
        self
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits,
            misses: self.misses,
            verify_rejects: self.verify_rejects,
            inserts: self.inserts,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.entries.iter().map(|e| e.bytes).sum(),
            nominal_rows_saved: self.nominal_rows_saved,
        }
    }

    /// Look up the nominal checkpoint for `(net, xs)`. On a verified hit
    /// the taps are rehydrated into `ws` (reshaped to fit) and the
    /// nominal outputs returned — bitwise the values a fresh
    /// `forward_batch` would produce, by construction of the publish
    /// path's bitwise round trip. On any miss — no record, or a record
    /// that fails verification — returns `None` with `ws` contents
    /// unspecified, and the caller recomputes.
    pub fn load_checkpoint(
        &mut self,
        net: &Mlp,
        xs: &Matrix,
        ws: &mut BatchWorkspace,
    ) -> Option<Vec<f64>> {
        let net_hash = net_content_hash(net);
        let aux_hash = input_set_hash(xs);
        let path = self.record_path(KIND_CHECKPOINT, net_hash, aux_hash);
        let map = match MappedFile::open(&path) {
            Ok(m) => m,
            Err(_) => {
                // No record (or a concurrent eviction won the race): a
                // plain miss, not a verification failure.
                self.misses += 1;
                self.forget(KIND_CHECKPOINT, net_hash, aux_hash);
                return None;
            }
        };
        self.ensure_encoded(net, net_hash);
        let decoded = {
            let expected_net = &self.encoded_net.as_ref().expect("just encoded").1;
            decode_checkpoint(map.bytes(), net, expected_net, xs, ws, net_hash, aux_hash)
        };
        match decoded {
            Ok(nominal_y) => {
                self.hits += 1;
                self.nominal_rows_saved += (net.depth() * xs.rows()) as u64;
                self.touch(KIND_CHECKPOINT, net_hash, aux_hash, map.len() as u64);
                Some(nominal_y)
            }
            Err(_) => {
                // Contract 13: a damaged record degrades to a miss. Remove
                // it so the storm is bounded to one reject per damage.
                self.verify_rejects += 1;
                self.quarantine(&path, KIND_CHECKPOINT, net_hash, aux_hash);
                None
            }
        }
    }

    /// Publish the nominal checkpoint for `(net, xs)`: `ws` and
    /// `nominal_y` as produced by `net.forward_batch(xs, ws)`. Returns
    /// `Ok(false)` if an identically-keyed record already exists (content
    /// addressing makes re-publishing a no-op), `Ok(true)` once the
    /// record is durably renamed into place.
    ///
    /// # Panics
    /// If `ws`/`nominal_y` are not shaped as a checkpoint of `(net, xs)`
    /// (caller contract — publishing a mismatched workspace would poison
    /// the store with a record that verifies but lies).
    pub fn publish_checkpoint(
        &mut self,
        net: &Mlp,
        xs: &Matrix,
        ws: &BatchWorkspace,
        nominal_y: &[f64],
    ) -> io::Result<bool> {
        assert_eq!(ws.sums.len(), net.depth(), "workspace depth mismatch");
        assert_eq!(nominal_y.len(), xs.rows(), "nominal output count mismatch");
        for (l, layer) in net.layers().iter().enumerate() {
            assert_eq!(
                (ws.sums[l].rows(), ws.sums[l].cols()),
                (xs.rows(), layer.out_dim()),
                "workspace layer {l} shape mismatch"
            );
        }
        let net_hash = net_content_hash(net);
        let aux_hash = input_set_hash(xs);
        self.ensure_encoded(net, net_hash);
        let mut w = ByteWriter::new();
        w.put_bytes(&self.encoded_net.as_ref().expect("just encoded").1);
        w.put_u64(xs.rows() as u64);
        w.put_u64(xs.cols() as u64);
        for &v in xs.data() {
            w.put_f64(v);
        }
        w.put_u64(net.depth() as u64);
        for l in 0..net.depth() {
            w.put_u64(ws.sums[l].cols() as u64);
            for &v in ws.sums[l].data() {
                w.put_f64(v);
            }
            for &v in ws.outs[l].data() {
                w.put_f64(v);
            }
        }
        w.put_f64_slice(nominal_y);
        self.publish_record(KIND_CHECKPOINT, net_hash, aux_hash, &w.into_bytes())
    }

    /// Store a trained network under `name` (kind [`KIND_TRAINED_NET`];
    /// the aux hash is the checksum of the name). Returns `Ok(false)` if
    /// a record with this name already exists.
    pub fn store_net(&mut self, name: &str, net: &Mlp) -> io::Result<bool> {
        let mut w = ByteWriter::new();
        w.put_str(name);
        w.put_bytes(&net_to_bytes(net));
        let payload = w.into_bytes();
        self.publish_record(KIND_TRAINED_NET, 0, checksum64(name.as_bytes()), &payload)
    }

    /// Load the trained network stored under `name`, verifying checksum,
    /// stored name, and a full validating decode. Damage degrades to
    /// `None` exactly like checkpoint records.
    pub fn load_net(&mut self, name: &str) -> Option<Mlp> {
        let aux_hash = checksum64(name.as_bytes());
        let path = self.record_path(KIND_TRAINED_NET, 0, aux_hash);
        let map = match MappedFile::open(&path) {
            Ok(m) => m,
            Err(_) => {
                self.misses += 1;
                self.forget(KIND_TRAINED_NET, 0, aux_hash);
                return None;
            }
        };
        let decoded = (|| -> Result<Mlp, DecodeError> {
            let payload = validate_record(map.bytes(), KIND_TRAINED_NET, 0, aux_hash)?;
            let mut r = ByteReader::new(payload);
            if r.get_str()? != name {
                return Err(DecodeError("stored name differs"));
            }
            let net = net_from_bytes(r.get_bytes()?)?;
            if !r.is_exhausted() {
                return Err(DecodeError("trailing bytes after record"));
            }
            Ok(net)
        })();
        match decoded {
            Ok(net) => {
                self.hits += 1;
                self.touch(KIND_TRAINED_NET, 0, aux_hash, map.len() as u64);
                Some(net)
            }
            Err(_) => {
                self.verify_rejects += 1;
                self.quarantine(&path, KIND_TRAINED_NET, 0, aux_hash);
                None
            }
        }
    }

    /// Publish a compiled plan body under `(net_hash, structure bytes)`
    /// — kind [`KIND_COMPILED_PLAN`], aux hash = checksum of the
    /// canonical structure bytes. The payload stores the structure bytes
    /// themselves (hashes index, bytes prove) followed by the encoded
    /// body. Returns `Ok(false)` if the record already exists.
    pub(crate) fn store_compiled_plan(
        &mut self,
        net_hash: u64,
        structure: &[u8],
        body: &CompiledPlan,
    ) -> io::Result<bool> {
        let mut w = ByteWriter::new();
        w.put_bytes(structure);
        body.encode_body(&mut w);
        self.publish_record(
            KIND_COMPILED_PLAN,
            net_hash,
            checksum64(structure),
            &w.into_bytes(),
        )
    }

    /// Load the compiled plan body stored under `(net, structure bytes)`,
    /// verifying checksum, stored structure bytes, a full validating
    /// decode, and finally a bitwise re-validation of every site and
    /// resolved crash weight against the live `net`
    /// ([`CompiledPlan::verify_against`]). Damage — or a record compiled
    /// against a hash-colliding different network — degrades to `None`
    /// exactly like checkpoint records (contract 13).
    pub(crate) fn load_compiled_plan(
        &mut self,
        net: &Mlp,
        structure: &[u8],
    ) -> Option<CompiledPlan> {
        let net_hash = net_content_hash(net);
        let aux_hash = checksum64(structure);
        let path = self.record_path(KIND_COMPILED_PLAN, net_hash, aux_hash);
        let map = match MappedFile::open(&path) {
            Ok(m) => m,
            Err(_) => {
                self.misses += 1;
                self.forget(KIND_COMPILED_PLAN, net_hash, aux_hash);
                return None;
            }
        };
        let decoded = (|| -> Result<CompiledPlan, DecodeError> {
            let payload = validate_record(map.bytes(), KIND_COMPILED_PLAN, net_hash, aux_hash)?;
            let mut r = ByteReader::new(payload);
            if r.get_bytes()? != structure {
                return Err(DecodeError("stored structure differs"));
            }
            let body = CompiledPlan::decode_body(&mut r)?;
            if !r.is_exhausted() {
                return Err(DecodeError("trailing bytes after record"));
            }
            if !body.verify_against(net) {
                return Err(DecodeError("stored body fails net verification"));
            }
            Ok(body)
        })();
        match decoded {
            Ok(body) => {
                self.hits += 1;
                self.touch(KIND_COMPILED_PLAN, net_hash, aux_hash, map.len() as u64);
                Some(body)
            }
            Err(_) => {
                self.verify_rejects += 1;
                self.quarantine(&path, KIND_COMPILED_PLAN, net_hash, aux_hash);
                None
            }
        }
    }

    /// Persist the index (sizes + recency) now. Called automatically on
    /// every publish and eviction; recency-only updates are persisted
    /// lazily (here and on drop), since losing them costs eviction
    /// *order*, never correctness.
    pub fn flush_index(&mut self) -> io::Result<()> {
        let _lock = self.lock_exclusive()?;
        self.write_index()
    }

    // ---- record plumbing ------------------------------------------------

    fn record_path(&self, kind: u8, net_hash: u64, aux_hash: u64) -> PathBuf {
        self.dir
            .join(format!("{kind:02x}-{net_hash:016x}-{aux_hash:016x}.rec"))
    }

    fn ensure_encoded(&mut self, net: &Mlp, net_hash: u64) {
        if self
            .encoded_net
            .as_ref()
            .is_none_or(|(h, _)| *h != net_hash)
        {
            self.encoded_net = Some((net_hash, net_to_bytes(net)));
        }
    }

    /// Serialize a whole record and atomically publish it under the key.
    fn publish_record(
        &mut self,
        kind: u8,
        net_hash: u64,
        aux_hash: u64,
        payload: &[u8],
    ) -> io::Result<bool> {
        let path = self.record_path(kind, net_hash, aux_hash);
        let _lock = self.lock_exclusive()?;
        if let Ok(meta) = fs::metadata(&path) {
            // Already published (possibly by another process since we
            // opened): content addressing makes this a no-op. Adopt it.
            self.touch(kind, net_hash, aux_hash, meta.len());
            self.write_index()?;
            return Ok(false);
        }
        let mut header = ByteWriter::new();
        header.put_u64(MAGIC);
        header.put_u64(STORE_FORMAT_VERSION as u64 | (kind as u64) << 8);
        header.put_u64(net_hash);
        header.put_u64(aux_hash);
        header.put_u64(payload.len() as u64);
        header.put_u64(checksum64(payload));
        debug_assert_eq!(header.len(), HEADER_BYTES);

        self.temp_seq += 1;
        let temp = self
            .dir
            .join(format!(".tmp-{}-{}", std::process::id(), self.temp_seq));
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(payload);
        fs::write(&temp, &bytes)?;
        // Chaos site: a panic here is a torn publish — the temp file
        // exists but the record was never renamed into place. Readers
        // must see a cold store; open() sweeps the orphan.
        neurofail_par::failpoint!("store::publish_temp");
        fs::rename(&temp, &path)?;
        // Chaos site: record durably published, index not yet rewritten —
        // the reconcile at open() must adopt the record.
        neurofail_par::failpoint!("store::publish_rename");
        self.inserts += 1;
        self.touch(kind, net_hash, aux_hash, bytes.len() as u64);
        self.evict_over_budget(kind, net_hash, aux_hash);
        self.write_index()?;
        Ok(true)
    }

    /// Bump (or create) the in-memory index row for a key.
    fn touch(&mut self, kind: u8, net_hash: u64, aux_hash: u64, bytes: u64) {
        self.tick += 1;
        let tick = self.tick;
        match self
            .entries
            .iter_mut()
            .find(|e| e.kind == kind && e.net_hash == net_hash && e.aux_hash == aux_hash)
        {
            Some(e) => {
                e.last_used = tick;
                e.bytes = bytes;
            }
            None => self.entries.push(IndexEntry {
                kind,
                net_hash,
                aux_hash,
                bytes,
                last_used: tick,
            }),
        }
    }

    /// Drop a key from the in-memory index (no file I/O).
    fn forget(&mut self, kind: u8, net_hash: u64, aux_hash: u64) {
        self.entries
            .retain(|e| !(e.kind == kind && e.net_hash == net_hash && e.aux_hash == aux_hash));
    }

    /// Delete a damaged record and its index row (best effort — a second
    /// handle may have removed it first, which is equally a miss).
    fn quarantine(&mut self, path: &Path, kind: u8, net_hash: u64, aux_hash: u64) {
        self.forget(kind, net_hash, aux_hash);
        if let Ok(_lock) = self.lock_exclusive() {
            let _ = fs::remove_file(path);
            let _ = self.write_index();
        }
    }

    /// Evict least-recently-used records until within the byte budget,
    /// never evicting the just-touched `keep` key. Caller holds the lock.
    fn evict_over_budget(&mut self, keep_kind: u8, keep_net: u64, keep_aux: u64) {
        loop {
            let total: u64 = self.entries.iter().map(|e| e.bytes).sum();
            if total <= self.byte_budget {
                return;
            }
            let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| {
                    !(e.kind == keep_kind && e.net_hash == keep_net && e.aux_hash == keep_aux)
                })
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                return; // only the protected record remains
            };
            let e = self.entries.swap_remove(lru);
            let _ = fs::remove_file(self.record_path(e.kind, e.net_hash, e.aux_hash));
            self.evictions += 1;
        }
    }

    // ---- index + lock plumbing ------------------------------------------

    /// Acquire the advisory store lock (blocking). The returned handle
    /// releases the lock on drop — including on panic unwind, so a chaos
    /// kill inside a publish cannot wedge other handles (and the OS
    /// releases it outright if the whole process dies).
    fn lock_exclusive(&self) -> io::Result<File> {
        let f = File::options()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.dir.join(LOCK_FILE))?;
        f.lock()?;
        Ok(f)
    }

    /// Parse the index file; `None` on any damage (caller rebuilds).
    fn read_index(&self) -> Option<Vec<IndexEntry>> {
        let bytes = fs::read(self.dir.join(INDEX_FILE)).ok()?;
        let mut r = ByteReader::new(&bytes);
        if r.get_u64().ok()? != INDEX_MAGIC {
            return None;
        }
        let stored_sum = r.get_u64().ok()?;
        let body = &bytes[16..];
        if checksum64(body) != stored_sum {
            return None;
        }
        let mut r = ByteReader::new(body);
        if r.get_u64().ok()? != STORE_FORMAT_VERSION as u64 {
            return None;
        }
        let count = r.get_len(40).ok()?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let word = r.get_u64().ok()?;
            entries.push(IndexEntry {
                kind: (word & 0xff) as u8,
                net_hash: r.get_u64().ok()?,
                aux_hash: r.get_u64().ok()?,
                bytes: r.get_u64().ok()?,
                last_used: r.get_u64().ok()?,
            });
        }
        r.is_exhausted().then_some(entries)
    }

    /// Atomically rewrite the index file from the in-memory entries.
    /// Caller holds the lock.
    fn write_index(&mut self) -> io::Result<()> {
        let mut body = ByteWriter::new();
        body.put_u64(STORE_FORMAT_VERSION as u64);
        body.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            body.put_u64(e.kind as u64);
            body.put_u64(e.net_hash);
            body.put_u64(e.aux_hash);
            body.put_u64(e.bytes);
            body.put_u64(e.last_used);
        }
        let mut file = ByteWriter::new();
        file.put_u64(INDEX_MAGIC);
        file.put_u64(checksum64(body.bytes()));
        self.temp_seq += 1;
        let temp = self
            .dir
            .join(format!(".tmp-{}-{}", std::process::id(), self.temp_seq));
        let mut bytes = file.into_bytes();
        bytes.extend_from_slice(body.bytes());
        fs::write(&temp, &bytes)?;
        // Chaos site: index temp written but never renamed — the stale
        // index must still reconcile correctly at the next open().
        neurofail_par::failpoint!("store::index_rewrite");
        fs::rename(&temp, self.dir.join(INDEX_FILE))
    }

    /// Make the index agree with the directory: sweep temp files, drop
    /// rows for vanished records, adopt unindexed records (as LRU, so a
    /// lost index biases toward evicting records of unknown recency).
    fn reconcile(&self, indexed: Vec<IndexEntry>) -> io::Result<Vec<IndexEntry>> {
        let mut on_disk: Vec<(u8, u64, u64, u64)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(".tmp-") {
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some(key) = parse_record_name(&name) {
                on_disk.push((key.0, key.1, key.2, entry.metadata()?.len()));
            }
        }
        let mut merged = Vec::with_capacity(on_disk.len());
        for (kind, net_hash, aux_hash, bytes) in on_disk {
            let last_used = indexed
                .iter()
                .find(|e| e.kind == kind && e.net_hash == net_hash && e.aux_hash == aux_hash)
                .map(|e| e.last_used)
                .unwrap_or(0);
            merged.push(IndexEntry {
                kind,
                net_hash,
                aux_hash,
                bytes,
                last_used,
            });
        }
        Ok(merged)
    }
}

impl Drop for ArtifactStore {
    fn drop(&mut self) {
        // Persist recency bookkeeping; failure only costs eviction order.
        let _ = self.flush_index();
    }
}

/// Parse `{kind:02x}-{net:016x}-{aux:016x}.rec`; `None` for foreign files.
fn parse_record_name(name: &str) -> Option<(u8, u64, u64)> {
    let stem = name.strip_suffix(".rec")?;
    let mut parts = stem.splitn(3, '-');
    let kind = u8::from_str_radix(parts.next()?, 16).ok()?;
    let net = parts.next().filter(|p| p.len() == 16)?;
    let aux = parts.next().filter(|p| p.len() == 16)?;
    Some((
        kind,
        u64::from_str_radix(net, 16).ok()?,
        u64::from_str_radix(aux, 16).ok()?,
    ))
}

/// Validate a record image's header and checksum against the expected
/// key, returning the payload slice. Every failure mode — short file,
/// wrong magic/version/kind, key mismatch, length mismatch, checksum
/// mismatch — is a [`DecodeError`], which the store maps to a miss.
fn validate_record(
    bytes: &[u8],
    kind: u8,
    net_hash: u64,
    aux_hash: u64,
) -> Result<&[u8], DecodeError> {
    if bytes.len() < HEADER_BYTES {
        return Err(DecodeError("record shorter than header"));
    }
    let mut r = ByteReader::new(bytes);
    if r.get_u64().expect("header") != MAGIC {
        return Err(DecodeError("bad record magic"));
    }
    let meta = r.get_u64().expect("header");
    if (meta & 0xff) as u8 != STORE_FORMAT_VERSION || ((meta >> 8) & 0xff) as u8 != kind {
        return Err(DecodeError("record version/kind mismatch"));
    }
    if r.get_u64().expect("header") != net_hash || r.get_u64().expect("header") != aux_hash {
        return Err(DecodeError("record key mismatch"));
    }
    let payload = &bytes[HEADER_BYTES..];
    if r.get_u64().expect("header") != payload.len() as u64 {
        return Err(DecodeError("record length mismatch"));
    }
    if r.get_u64().expect("header") != checksum64(payload) {
        return Err(DecodeError("record checksum mismatch"));
    }
    Ok(payload)
}

/// Verify and rehydrate a checkpoint record: header + checksum, then the
/// stored network bytes against the caller's canonical encoding, the
/// stored input set bitwise against the caller's, and every shape against
/// the network — only then are the taps copied into `ws`.
fn decode_checkpoint(
    bytes: &[u8],
    net: &Mlp,
    expected_net: &[u8],
    xs: &Matrix,
    ws: &mut BatchWorkspace,
    net_hash: u64,
    aux_hash: u64,
) -> Result<Vec<f64>, DecodeError> {
    let payload = validate_record(bytes, KIND_CHECKPOINT, net_hash, aux_hash)?;
    let mut r = ByteReader::new(payload);
    if r.get_bytes()? != expected_net {
        // A 64-bit net-hash collision (or targeted corruption that kept
        // the checksum valid): the record is for a *different* network.
        return Err(DecodeError("stored network differs"));
    }
    let rows = r.get_len(1)?;
    let cols = r.get_len(1)?;
    if rows != xs.rows() || cols != xs.cols() {
        return Err(DecodeError("stored input shape differs"));
    }
    for &v in xs.data() {
        if r.get_u64()? != v.to_bits() {
            return Err(DecodeError("stored input set differs"));
        }
    }
    if r.get_len(8)? != net.depth() {
        return Err(DecodeError("stored depth differs"));
    }
    ws.reshape(net, rows);
    for (l, layer) in net.layers().iter().enumerate() {
        if r.get_len(1)? != layer.out_dim() {
            return Err(DecodeError("stored layer width differs"));
        }
        for v in ws.sums[l].data_mut() {
            *v = r.get_f64()?;
        }
        for v in ws.outs[l].data_mut() {
            *v = r.get_f64()?;
        }
    }
    let nominal_y = r.get_f64_vec()?;
    if nominal_y.len() != rows {
        return Err(DecodeError("stored output count differs"));
    }
    if !r.is_exhausted() {
        return Err(DecodeError("trailing bytes after record"));
    }
    Ok(nominal_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_data::rng::rng;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::builder::MlpBuilder;
    use neurofail_tensor::init::Init;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nf-store-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn net(seed: u64) -> Mlp {
        MlpBuilder::new(3)
            .dense(5, Activation::Sigmoid { k: 1.0 })
            .dense(4, Activation::Tanh { k: 0.7 })
            .init(Init::Xavier)
            .build(&mut rng(seed))
    }

    fn points(seed: u64, rows: usize) -> Matrix {
        Matrix::from_fn(rows, 3, |r, c| {
            0.11 * (r as f64 + seed as f64) - 0.3 + 0.07 * c as f64
        })
    }

    fn checkpoint_of(net: &Mlp, xs: &Matrix) -> (BatchWorkspace, Vec<f64>) {
        let mut ws = BatchWorkspace::default();
        let y = net.forward_batch(xs, &mut ws);
        (ws, y)
    }

    #[test]
    fn publish_then_load_is_bitwise() {
        let dir = tmp_dir("roundtrip");
        let net = net(1);
        let xs = points(0, 6);
        let (ws, y) = checkpoint_of(&net, &xs);
        let mut store = ArtifactStore::open(&dir).unwrap();
        assert!(store.publish_checkpoint(&net, &xs, &ws, &y).unwrap());
        assert!(
            !store.publish_checkpoint(&net, &xs, &ws, &y).unwrap(),
            "content addressing: re-publish is a no-op"
        );
        let mut out = BatchWorkspace::default();
        let got = store.load_checkpoint(&net, &xs, &mut out).expect("hit");
        for (g, e) in got.iter().zip(&y) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
        for l in 0..net.depth() {
            assert_eq!(out.sums[l].data(), ws.sums[l].data());
            assert_eq!(out.outs[l].data(), ws.outs[l].data());
        }
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 0, 1, 1));
        assert_eq!(s.nominal_rows_saved, (net.depth() * 6) as u64);
        assert!(s.bytes > HEADER_BYTES as u64);
        // A second handle over the same directory hits without help.
        drop(store);
        let mut fresh = ArtifactStore::open(&dir).unwrap();
        assert!(fresh.load_checkpoint(&net, &xs, &mut out).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_or_damage_degrades_to_miss() {
        let dir = tmp_dir("damage");
        let net_a = net(1);
        let xs = points(0, 5);
        let (ws, y) = checkpoint_of(&net_a, &xs);
        let mut store = ArtifactStore::open(&dir).unwrap();
        store.publish_checkpoint(&net_a, &xs, &ws, &y).unwrap();
        // Different network, different input: plain misses, no rejects.
        let mut out = BatchWorkspace::default();
        assert!(store.load_checkpoint(&net(2), &xs, &mut out).is_none());
        assert!(store
            .load_checkpoint(&net_a, &points(7, 5), &mut out)
            .is_none());
        assert_eq!(store.stats().verify_rejects, 0);
        // Flip one payload bit: checksum catches it, record quarantined.
        let path = store.record_path(
            KIND_CHECKPOINT,
            net_content_hash(&net_a),
            input_set_hash(&xs),
        );
        let mut bytes = fs::read(&path).unwrap();
        let mid = HEADER_BYTES + bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_checkpoint(&net_a, &xs, &mut out).is_none());
        assert_eq!(store.stats().verify_rejects, 1);
        assert!(!path.exists(), "damaged record is quarantined");
        // And the next lookup is a clean miss, not a second reject.
        assert!(store.load_checkpoint(&net_a, &xs, &mut out).is_none());
        assert_eq!(store.stats().verify_rejects, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_lru_only() {
        let dir = tmp_dir("evict");
        let net = net(3);
        let sets: Vec<Matrix> = (0..3).map(|s| points(s, 4)).collect();
        let mut store = ArtifactStore::open(&dir).unwrap();
        let mut record_bytes = 0;
        for xs in &sets {
            let (ws, y) = checkpoint_of(&net, xs);
            store.publish_checkpoint(&net, xs, &ws, &y).unwrap();
            record_bytes = store.stats().bytes / store.stats().entries as u64;
        }
        assert_eq!(store.stats().entries, 3);
        // Touch set 0 so set 1 is the LRU, then budget down to two records.
        let mut out = BatchWorkspace::default();
        assert!(store.load_checkpoint(&net, &sets[0], &mut out).is_some());
        store.set_byte_budget(2 * record_bytes + record_bytes / 2);
        let (ws, y) = checkpoint_of(&net, &sets[2]);
        // Re-publish is a no-op on content but triggers budget enforcement
        // via a fresh publish of a 4th set.
        let xs3 = points(9, 4);
        let (ws3, y3) = checkpoint_of(&net, &xs3);
        store.publish_checkpoint(&net, &xs3, &ws3, &y3).unwrap();
        assert!(store.stats().evictions >= 1);
        assert!(store.stats().bytes <= 2 * record_bytes + record_bytes / 2);
        // The just-published and recently-touched records survive...
        assert!(store.load_checkpoint(&net, &xs3, &mut out).is_some());
        // ...and every surviving record still verifies bitwise.
        for xs in sets.iter().chain([&xs3]) {
            if let Some(got) = store.load_checkpoint(&net, xs, &mut out) {
                let (_, expect) = checkpoint_of(&net, xs);
                for (g, e) in got.iter().zip(&expect) {
                    assert_eq!(g.to_bits(), e.to_bits());
                }
            }
        }
        assert_eq!(store.stats().verify_rejects, 0);
        let _ = (ws, y);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trained_net_records_round_trip() {
        let dir = tmp_dir("netkind");
        let net = net(5);
        let mut store = ArtifactStore::open(&dir).unwrap();
        assert!(store.store_net("mnist-v1", &net).unwrap());
        assert!(!store.store_net("mnist-v1", &net).unwrap());
        let back = store.load_net("mnist-v1").expect("hit");
        assert_eq!(net_to_bytes(&back), net_to_bytes(&net));
        assert!(store.load_net("mnist-v2").is_none(), "unknown name misses");
        // Checkpoint and net records share the directory without clashing.
        let xs = points(0, 3);
        let (ws, y) = checkpoint_of(&net, &xs);
        store.publish_checkpoint(&net, &xs, &ws, &y).unwrap();
        assert_eq!(store.stats().entries, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_reconciles_index_with_directory() {
        let dir = tmp_dir("reconcile");
        let net = net(6);
        let xs = points(0, 4);
        let (ws, y) = checkpoint_of(&net, &xs);
        {
            let mut store = ArtifactStore::open(&dir).unwrap();
            store.publish_checkpoint(&net, &xs, &ws, &y).unwrap();
        }
        // Zero the index and drop a stray temp file: open() rebuilds from
        // the directory and sweeps the temp.
        fs::write(dir.join(INDEX_FILE), b"").unwrap();
        fs::write(dir.join(".tmp-999-1"), b"torn").unwrap();
        let mut store = ArtifactStore::open(&dir).unwrap();
        assert!(!dir.join(".tmp-999-1").exists(), "temp swept");
        let mut out = BatchWorkspace::default();
        assert!(
            store.load_checkpoint(&net, &xs, &mut out).is_some(),
            "record adopted from directory scan"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_names_parse_and_foreign_files_are_ignored() {
        assert_eq!(
            parse_record_name("00-00000000000000ab-00000000000000cd.rec"),
            Some((0, 0xab, 0xcd))
        );
        assert_eq!(parse_record_name("index.v1"), None);
        assert_eq!(parse_record_name("LOCK"), None);
        assert_eq!(parse_record_name("00-short-00000000000000cd.rec"), None);
        let dir = tmp_dir("foreign");
        fs::write(dir.join("README.txt"), b"not a record").unwrap();
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(store.stats().entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}

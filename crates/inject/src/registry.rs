//! A registry of compiled plans ready for repeated, shared evaluation.
//!
//! Campaigns compile a plan, use it, and drop it. Long-lived consumers —
//! the serving engine (`neurofail-serve`), plan-sharded multi-process
//! campaigns — instead hold a *set* of `(network, compiled plan)` pairs and
//! route queries to them by id. [`PlanRegistry`] is that set: each
//! [`register`](PlanRegistry::register) validates the plan against its
//! network once (the usual compile-once contract) and returns a dense
//! [`PlanId`], so downstream engines can shard work per plan with plain
//! indexing and no hashing on the hot path.
//!
//! Networks are held behind [`Arc`] so one trained network can back many
//! registered plans (the common case: one net, a family of fault
//! hypotheses) without cloning its weights per plan.

use std::sync::Arc;

use neurofail_nn::{BatchWorkspace, Mlp};
use neurofail_tensor::Matrix;

use crate::executor::{CompiledPlan, PlanError};
use crate::plan::InjectionPlan;

/// Dense identifier of a plan within a [`PlanRegistry`] (and the shard
/// index downstream engines key their per-plan workers by).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(pub usize);

impl std::fmt::Display for PlanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan#{}", self.0)
    }
}

/// One registered `(network, compiled plan)` pair.
#[derive(Debug, Clone)]
pub struct RegisteredPlan {
    net: Arc<Mlp>,
    compiled: CompiledPlan,
}

impl RegisteredPlan {
    /// The network the plan was compiled against.
    pub fn net(&self) -> &Arc<Mlp> {
        &self.net
    }

    /// The compiled plan.
    pub fn compiled(&self) -> &CompiledPlan {
        &self.compiled
    }

    /// Input dimension queries against this plan must have.
    pub fn input_dim(&self) -> usize {
        self.net.input_dim()
    }

    /// Disturbance `|F_neu(x) − F_fail(x)|` of a single input, evaluated
    /// as a **singleton batch** through
    /// [`CompiledPlan::output_error_batch`].
    ///
    /// This is the reference the serving engine's bitwise contract is
    /// stated against: by the batched engine's per-row independence, a
    /// served response coalesced into any batch equals this call exactly.
    pub fn eval_singleton(&self, x: &[f64], ws: &mut BatchWorkspace) -> f64 {
        let mut xs = Matrix::zeros(0, 0);
        self.eval_singleton_with(x, &mut xs, ws)
    }

    /// [`eval_singleton`](Self::eval_singleton) with a caller-provided
    /// `1 × d` scratch matrix, allocation-free once the scratch has grown
    /// — for loops that replay many singletons (e.g. request-log audits).
    pub fn eval_singleton_with(&self, x: &[f64], xs: &mut Matrix, ws: &mut BatchWorkspace) -> f64 {
        assert_eq!(
            x.len(),
            self.input_dim(),
            "eval_singleton: input dimension mismatch"
        );
        xs.resize(1, x.len());
        xs.row_mut(0).copy_from_slice(x);
        self.compiled.output_error_batch(&self.net, xs, ws)[0]
    }

    /// Batched disturbance over `xs` rows (delegates to
    /// [`CompiledPlan::output_error_batch`]).
    pub fn eval_batch(&self, xs: &Matrix, ws: &mut BatchWorkspace) -> Vec<f64> {
        self.compiled.output_error_batch(&self.net, xs, ws)
    }

    /// Batched disturbance through the suffix engine
    /// ([`CompiledPlan::output_error_resumed`]): the nominal pass goes to
    /// `ws_nominal` (the checkpoint) and the faulty pass resumes at the
    /// plan's first faulty layer into `ws_scratch`. Bitwise equal to
    /// [`eval_batch`](Self::eval_batch); this mirrors the serving
    /// engine's flush-loop logic (which inlines the same nominal +
    /// resume split so it can also serve multi-plan flushes) for callers
    /// that batch against a single registered plan.
    pub fn eval_batch_resumed(
        &self,
        xs: &Matrix,
        ws_nominal: &mut BatchWorkspace,
        ws_scratch: &mut BatchWorkspace,
    ) -> Vec<f64> {
        self.compiled
            .output_error_resumed(&self.net, xs, ws_nominal, ws_scratch)
    }
}

/// An append-only collection of compiled plans addressed by [`PlanId`].
#[derive(Debug, Clone, Default)]
pub struct PlanRegistry {
    entries: Vec<RegisteredPlan>,
}

impl PlanRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile `plan` against `net` under capacity `capacity` and register
    /// it.
    ///
    /// # Errors
    /// [`PlanError`] if the plan does not validate against the network.
    pub fn register(
        &mut self,
        net: Arc<Mlp>,
        plan: &InjectionPlan,
        capacity: f64,
    ) -> Result<PlanId, PlanError> {
        let compiled = CompiledPlan::compile(plan, &net, capacity)?;
        Ok(self.register_compiled(net, compiled))
    }

    /// Register an already-compiled plan (caller vouches it was compiled
    /// against `net`).
    pub fn register_compiled(&mut self, net: Arc<Mlp>, compiled: CompiledPlan) -> PlanId {
        let id = PlanId(self.entries.len());
        self.entries.push(RegisteredPlan { net, compiled });
        id
    }

    /// Look up a registered plan.
    pub fn get(&self, id: PlanId) -> Option<&RegisteredPlan> {
        self.entries.get(id.0)
    }

    /// Number of registered plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(id, entry)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (PlanId, &RegisteredPlan)> {
        self.entries.iter().enumerate().map(|(i, e)| (PlanId(i), e))
    }

    /// Consume the registry, yielding entries in registration order — the
    /// handoff a sharded engine uses to move each plan onto its worker.
    pub fn into_entries(self) -> Vec<RegisteredPlan> {
        self.entries
    }

    /// Group `ids` positions by the network they share (`Arc` identity),
    /// preserving first-seen order — the shared front half of
    /// [`PlanRegistry::eval_many`] and [`PlanRegistry::eval_many_cached`].
    ///
    /// # Panics
    /// If any id is unregistered.
    fn group_by_net(&self, ids: &[PlanId]) -> Vec<(&Arc<Mlp>, Vec<usize>)> {
        let mut groups: Vec<(&Arc<Mlp>, Vec<usize>)> = Vec::new();
        for (pos, id) in ids.iter().enumerate() {
            let entry = self
                .get(*id)
                .unwrap_or_else(|| panic!("eval_many: no registered {id}"));
            match groups
                .iter_mut()
                .find(|(net, _)| Arc::ptr_eq(net, &entry.net))
            {
                Some((_, positions)) => positions.push(pos),
                None => groups.push((&entry.net, vec![pos])),
            }
        }
        groups
    }

    /// Evaluate many registered plans over one shared input set through
    /// the multi-plan suffix engine: plans are grouped by the network
    /// they share (`Arc` identity), each group pays **one** nominal pass,
    /// and every plan resumes its faulty pass at its own first faulty
    /// layer. Returns one disturbance vector per id, aligned with `ids`
    /// — each **bitwise** equal to the corresponding
    /// [`RegisteredPlan::eval_batch`] call.
    ///
    /// This is the batch-side mirror of the serving engine's cross-plan
    /// coalescing: the common registry shape (one net, a family of fault
    /// hypotheses) collapses to a single nominal pass for the whole
    /// family.
    ///
    /// # Panics
    /// If any id is unregistered, or `xs` column count mismatches a
    /// plan's network.
    pub fn eval_many(&self, ids: &[PlanId], xs: &Matrix) -> Vec<Vec<f64>> {
        let mut results: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];
        for (net, positions) in self.group_by_net(ids) {
            let mut eval = crate::multi::MultiPlanEvaluator::new(net, xs);
            for pos in positions {
                let entry = self.get(ids[pos]).expect("validated above");
                results[pos] = eval.output_error(entry.compiled());
            }
        }
        results
    }

    /// [`PlanRegistry::eval_many`] through a
    /// [`CheckpointCache`](crate::CheckpointCache): per net group the
    /// nominal checkpoint is looked up by `(net identity, input-set
    /// content hash)` — so a registry re-evaluated over an input set it
    /// has seen before (repeated tolerance searches, periodic
    /// re-certification sweeps) skips even the one nominal pass per
    /// group. Results are **bitwise** identical to
    /// [`PlanRegistry::eval_many`]; `scratch` absorbs the suffix
    /// recomputation.
    ///
    /// # Panics
    /// As [`PlanRegistry::eval_many`].
    pub fn eval_many_cached(
        &self,
        ids: &[PlanId],
        xs: &Matrix,
        cache: &mut crate::CheckpointCache,
        scratch: &mut BatchWorkspace,
    ) -> Vec<Vec<f64>> {
        let mut results: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];
        for (net, positions) in self.group_by_net(ids) {
            let ck = cache.checkpoint(net, xs);
            for pos in positions {
                let entry = self.get(ids[pos]).expect("validated above");
                results[pos] = entry.compiled().output_error_checkpointed(
                    net,
                    xs,
                    ck.ws,
                    ck.nominal_y,
                    scratch,
                );
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::layer::DenseLayer;
    use neurofail_nn::network::Layer;

    fn net() -> Arc<Mlp> {
        Arc::new(Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
                vec![],
                Activation::Identity,
            ))],
            vec![1.0, 2.0],
            0.0,
        ))
    }

    #[test]
    fn register_assigns_dense_ids_and_shares_the_net() {
        let net = net();
        let mut reg = PlanRegistry::new();
        let a = reg
            .register(Arc::clone(&net), &InjectionPlan::none(), 1.0)
            .unwrap();
        let b = reg
            .register(Arc::clone(&net), &InjectionPlan::crash([(0, 1)]), 1.0)
            .unwrap();
        assert_eq!((a, b), (PlanId(0), PlanId(1)));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        // One network backs both plans without a weight clone.
        assert!(Arc::ptr_eq(
            reg.get(a).unwrap().net(),
            reg.get(b).unwrap().net()
        ));
        assert_eq!(reg.get(b).unwrap().input_dim(), 2);
        assert!(reg.get(PlanId(2)).is_none());
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn register_propagates_compile_errors() {
        let mut reg = PlanRegistry::new();
        let err = reg.register(net(), &InjectionPlan::crash([(5, 0)]), 1.0);
        assert!(matches!(err, Err(PlanError::BadNeuron { .. })));
        assert!(reg.is_empty());
    }

    #[test]
    fn eval_singleton_matches_direct_singleton_batch() {
        let net = net();
        let mut reg = PlanRegistry::new();
        let id = reg
            .register(Arc::clone(&net), &InjectionPlan::crash([(0, 1)]), 1.0)
            .unwrap();
        let entry = reg.get(id).unwrap();
        let mut ws = BatchWorkspace::default();
        let x = [0.5, 0.25];
        let got = entry.eval_singleton(&x, &mut ws);
        let c = CompiledPlan::compile(&InjectionPlan::crash([(0, 1)]), &net, 1.0).unwrap();
        let xs = Matrix::from_vec(1, 2, x.to_vec());
        let direct = c.output_error_batch(&net, &xs, &mut ws)[0];
        assert_eq!(got.to_bits(), direct.to_bits());
        // Batched evaluation through the registry matches row-wise.
        let xs3 = Matrix::from_vec(3, 2, vec![0.5, 0.25, 0.0, 0.0, 1.0, -1.0]);
        let batch = entry.eval_batch(&xs3, &mut ws);
        assert_eq!(batch[0].to_bits(), got.to_bits());
    }

    #[test]
    fn eval_many_matches_per_plan_eval_batch_bitwise() {
        // Two nets, three plans (two sharing a net): eval_many must group
        // by net identity and stay bitwise equal to per-plan evaluation.
        let net_a = net();
        let net_b = Arc::new(Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::from_vec(2, 2, vec![0.5, -0.25, 1.0, 0.75]),
                vec![],
                Activation::Identity,
            ))],
            vec![2.0, -1.0],
            0.1,
        ));
        let mut reg = PlanRegistry::new();
        let a0 = reg
            .register(Arc::clone(&net_a), &InjectionPlan::crash([(0, 1)]), 1.0)
            .unwrap();
        let b0 = reg
            .register(Arc::clone(&net_b), &InjectionPlan::crash([(0, 0)]), 1.0)
            .unwrap();
        let a1 = reg
            .register(Arc::clone(&net_a), &InjectionPlan::none(), 1.0)
            .unwrap();
        let xs = Matrix::from_vec(3, 2, vec![0.5, 0.25, -0.4, 0.9, 0.0, 1.0]);
        let many = reg.eval_many(&[a0, b0, a1], &xs);
        let mut ws = BatchWorkspace::default();
        for (id, got) in [a0, b0, a1].iter().zip(&many) {
            let direct = reg.get(*id).unwrap().eval_batch(&xs, &mut ws);
            assert_eq!(got.len(), 3);
            for (g, d) in got.iter().zip(&direct) {
                assert_eq!(g.to_bits(), d.to_bits(), "{id}");
            }
        }
    }

    #[test]
    fn eval_many_cached_is_bitwise_and_hits_on_reuse() {
        let net_a = net();
        let net_b = Arc::new(Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::from_vec(2, 2, vec![0.5, -0.25, 1.0, 0.75]),
                vec![],
                Activation::Identity,
            ))],
            vec![2.0, -1.0],
            0.1,
        ));
        let mut reg = PlanRegistry::new();
        let a0 = reg
            .register(Arc::clone(&net_a), &InjectionPlan::crash([(0, 1)]), 1.0)
            .unwrap();
        let b0 = reg
            .register(Arc::clone(&net_b), &InjectionPlan::crash([(0, 0)]), 1.0)
            .unwrap();
        let a1 = reg
            .register(Arc::clone(&net_a), &InjectionPlan::none(), 1.0)
            .unwrap();
        let xs = Matrix::from_vec(3, 2, vec![0.5, 0.25, -0.4, 0.9, 0.0, 1.0]);
        let ids = [a0, b0, a1];
        let reference = reg.eval_many(&ids, &xs);
        let mut cache = crate::CheckpointCache::new(4);
        let mut scratch = BatchWorkspace::default();
        // Cold call: one miss per net group; warm call: one hit per group
        // — and both are bitwise the uncached engine.
        for (round, expected_hits) in [(0u32, 0u64), (1, 2)] {
            let got = reg.eval_many_cached(&ids, &xs, &mut cache, &mut scratch);
            for (pi, (g, r)) in got.iter().zip(&reference).enumerate() {
                for (b, (gv, rv)) in g.iter().zip(r).enumerate() {
                    assert_eq!(
                        gv.to_bits(),
                        rv.to_bits(),
                        "round {round}, plan {pi}, row {b}"
                    );
                }
            }
            assert_eq!(cache.stats().hits, expected_hits);
        }
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn eval_batch_resumed_matches_eval_batch_bitwise() {
        let net = net();
        let mut reg = PlanRegistry::new();
        let id = reg
            .register(Arc::clone(&net), &InjectionPlan::crash([(0, 0)]), 1.0)
            .unwrap();
        let entry = reg.get(id).unwrap();
        let xs = Matrix::from_vec(2, 2, vec![0.3, 0.6, -0.1, 0.8]);
        let mut ws = BatchWorkspace::default();
        let direct = entry.eval_batch(&xs, &mut ws);
        let (mut wn, mut wsc) = (BatchWorkspace::default(), BatchWorkspace::default());
        let resumed = entry.eval_batch_resumed(&xs, &mut wn, &mut wsc);
        for (r, d) in resumed.iter().zip(&direct) {
            assert_eq!(r.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(PlanId(3).to_string(), "plan#3");
    }
}

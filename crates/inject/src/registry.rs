//! A registry of admitted plans ready for repeated, shared evaluation.
//!
//! Campaigns compile a plan, use it, and drop it. Long-lived consumers —
//! the serving engine (`neurofail-serve`), plan-sharded multi-process
//! campaigns — instead hold a *set* of `(network, admitted plan)` pairs
//! and route queries to them by id. [`PlanRegistry`] is that set, and
//! since PR 9 its front door is the admission pipeline ([`crate::ir`]):
//! each [`register`](PlanRegistry::register) validates the plan once with
//! typed errors, dedups plans equal up to fault value onto one compiled
//! body, and returns a dense [`PlanId`], so downstream engines can shard
//! work per plan with plain indexing and no hashing on the hot path.
//!
//! Networks are held behind [`Arc`] so one trained network can back many
//! registered plans (the common case: one net, a family of fault
//! hypotheses) without cloning its weights per plan. Registration also
//! assigns each plan a **family** — the group of plans over content-equal
//! networks (`Arc` identity *or* bitwise weight equality, proven at
//! registration, never re-checked on the hot path) — and the batch
//! evaluators route whole families through the cost-model
//! [`Planner`]: per request mix the planner picks among
//! the bitwise-equivalent engines (ARCHITECTURE contract 14), identical
//! plans share one evaluation, and measured timings refine the cost model
//! online.

use std::sync::Arc;
use std::time::Instant;

use neurofail_nn::{net_to_bytes, BatchWorkspace, Mlp};
use neurofail_tensor::Matrix;

use crate::executor::{CompiledPlan, PlanError};
use crate::ir::{Admission, AdmissionStats, PlanIr};
use crate::plan::InjectionPlan;
use crate::planner::{Engine, Planner, RequestMix};
use crate::store::ArtifactStore;

/// Dense identifier of a plan within a [`PlanRegistry`] (and the shard
/// index downstream engines key their per-plan workers by).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(pub usize);

impl std::fmt::Display for PlanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan#{}", self.0)
    }
}

/// One registered `(network, admitted plan)` pair.
#[derive(Debug, Clone)]
pub struct RegisteredPlan {
    net: Arc<Mlp>,
    ir: PlanIr,
    family: usize,
}

impl RegisteredPlan {
    /// The network the plan was admitted against.
    pub fn net(&self) -> &Arc<Mlp> {
        &self.net
    }

    /// The admitted intermediate representation: content identities,
    /// shared body, precomputed first faulty layer.
    pub fn ir(&self) -> &PlanIr {
        &self.ir
    }

    /// The compiled plan (the IR's materialized executable).
    pub fn compiled(&self) -> &CompiledPlan {
        self.ir.compiled()
    }

    /// Index of the content-equal network family this plan belongs to
    /// (assigned at registration; plans in one family may share nominal
    /// passes and shards bitwise-safely).
    pub fn family(&self) -> usize {
        self.family
    }

    /// Input dimension queries against this plan must have.
    pub fn input_dim(&self) -> usize {
        self.net.input_dim()
    }

    /// Disturbance `|F_neu(x) − F_fail(x)|` of a single input, evaluated
    /// as a **singleton batch** through
    /// [`CompiledPlan::output_error_batch`].
    ///
    /// This is the reference the serving engine's bitwise contract is
    /// stated against: by the batched engine's per-row independence, a
    /// served response coalesced into any batch equals this call exactly.
    pub fn eval_singleton(&self, x: &[f64], ws: &mut BatchWorkspace) -> f64 {
        let mut xs = Matrix::zeros(0, 0);
        self.eval_singleton_with(x, &mut xs, ws)
    }

    /// [`eval_singleton`](Self::eval_singleton) with a caller-provided
    /// `1 × d` scratch matrix, allocation-free once the scratch has grown
    /// — for loops that replay many singletons (e.g. request-log audits).
    pub fn eval_singleton_with(&self, x: &[f64], xs: &mut Matrix, ws: &mut BatchWorkspace) -> f64 {
        assert_eq!(
            x.len(),
            self.input_dim(),
            "eval_singleton: input dimension mismatch"
        );
        xs.resize(1, x.len());
        xs.row_mut(0).copy_from_slice(x);
        self.compiled().output_error_batch(&self.net, xs, ws)[0]
    }

    /// Batched disturbance over `xs` rows (delegates to
    /// [`CompiledPlan::output_error_batch`]).
    pub fn eval_batch(&self, xs: &Matrix, ws: &mut BatchWorkspace) -> Vec<f64> {
        self.compiled().output_error_batch(&self.net, xs, ws)
    }

    /// Batched disturbance through the suffix engine
    /// ([`CompiledPlan::output_error_resumed`]): the nominal pass goes to
    /// `ws_nominal` (the checkpoint) and the faulty pass resumes at the
    /// plan's first faulty layer into `ws_scratch`. Bitwise equal to
    /// [`eval_batch`](Self::eval_batch); this mirrors the serving
    /// engine's flush-loop logic (which inlines the same nominal +
    /// resume split so it can also serve multi-plan flushes) for callers
    /// that batch against a single registered plan.
    pub fn eval_batch_resumed(
        &self,
        xs: &Matrix,
        ws_nominal: &mut BatchWorkspace,
        ws_scratch: &mut BatchWorkspace,
    ) -> Vec<f64> {
        self.compiled()
            .output_error_resumed(&self.net, xs, ws_nominal, ws_scratch)
    }
}

/// One content-equal network family: the representative `Arc` every
/// family-grouped evaluation runs against, plus the canonical bytes that
/// prove membership at registration time.
#[derive(Debug, Clone)]
struct Family {
    net_hash: u64,
    rep: Arc<Mlp>,
    rep_bytes: Vec<u8>,
}

/// An append-only collection of admitted plans addressed by [`PlanId`].
#[derive(Debug, Clone, Default)]
pub struct PlanRegistry {
    entries: Vec<RegisteredPlan>,
    families: Vec<Family>,
    admission: Admission,
    planner: Arc<Planner>,
}

impl PlanRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admit `plan` against `net` under capacity `capacity` and register
    /// it (validate → normalize → compile → cache; see [`crate::ir`]).
    ///
    /// # Errors
    /// [`PlanError`] if the plan does not validate against the network.
    pub fn register(
        &mut self,
        net: Arc<Mlp>,
        plan: &InjectionPlan,
        capacity: f64,
    ) -> Result<PlanId, PlanError> {
        let ir = self.admission.admit(&net, plan, capacity, None)?;
        Ok(self.push(net, ir))
    }

    /// [`register`](Self::register) with an [`ArtifactStore`] consulted
    /// for warm admission (a verified compiled-plan record skips the
    /// compile) and fed newly compiled bodies.
    ///
    /// # Errors
    /// As [`register`](Self::register).
    pub fn register_with_store(
        &mut self,
        net: Arc<Mlp>,
        plan: &InjectionPlan,
        capacity: f64,
        store: &mut ArtifactStore,
    ) -> Result<PlanId, PlanError> {
        let ir = self.admission.admit(&net, plan, capacity, Some(store))?;
        Ok(self.push(net, ir))
    }

    /// Register an already-compiled plan (caller vouches it was compiled
    /// against `net`). Runs the admission pipeline's normalize/dedup half
    /// so even pre-compiled plans share bodies.
    pub fn register_compiled(&mut self, net: Arc<Mlp>, compiled: CompiledPlan) -> PlanId {
        let ir = self.admission.admit_compiled(&net, compiled, None);
        self.push(net, ir)
    }

    fn push(&mut self, net: Arc<Mlp>, ir: PlanIr) -> PlanId {
        let family = self.family_for(&net, ir.net_hash());
        let id = PlanId(self.entries.len());
        self.entries.push(RegisteredPlan { net, ir, family });
        id
    }

    /// Find (or create) the family of content-equal networks `net`
    /// belongs to — `Arc` identity first, then bitwise content proof
    /// against the family representative. Registration-time only.
    fn family_for(&mut self, net: &Arc<Mlp>, net_hash: u64) -> usize {
        let mut encoded: Option<Vec<u8>> = None;
        for (i, f) in self.families.iter().enumerate() {
            if f.net_hash != net_hash {
                continue;
            }
            if Arc::ptr_eq(&f.rep, net) {
                return i;
            }
            let bytes = encoded.get_or_insert_with(|| net_to_bytes(net));
            if &f.rep_bytes == bytes {
                return i;
            }
        }
        self.families.push(Family {
            net_hash,
            rep: Arc::clone(net),
            rep_bytes: encoded.unwrap_or_else(|| net_to_bytes(net)),
        });
        self.families.len() - 1
    }

    /// Look up a registered plan.
    pub fn get(&self, id: PlanId) -> Option<&RegisteredPlan> {
        self.entries.get(id.0)
    }

    /// Number of registered plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of content-equal network families.
    pub fn family_count(&self) -> usize {
        self.families.len()
    }

    /// Admission pipeline counters (dedup hits, bodies compiled, …).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// The planner routing this registry's batch evaluations.
    pub fn planner(&self) -> &Arc<Planner> {
        &self.planner
    }

    /// Replace the planner (e.g. to share one planner across registries,
    /// or to install a forced-engine planner in tests).
    pub fn set_planner(&mut self, planner: Arc<Planner>) {
        self.planner = planner;
    }

    /// Iterate over `(id, entry)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (PlanId, &RegisteredPlan)> {
        self.entries.iter().enumerate().map(|(i, e)| (PlanId(i), e))
    }

    /// Consume the registry, yielding entries in registration order — the
    /// handoff a sharded engine uses to move each plan onto its worker
    /// (each entry carries its admission IR and family index).
    pub fn into_entries(self) -> Vec<RegisteredPlan> {
        self.entries
    }

    /// Group `ids` positions by network family, preserving first-seen
    /// order — the shared front half of [`PlanRegistry::eval_many`] and
    /// [`PlanRegistry::eval_many_cached`]. Family membership was proven
    /// at registration, so this is pure index bucketing.
    ///
    /// # Panics
    /// If any id is unregistered.
    fn group_by_family(&self, ids: &[PlanId]) -> Vec<(usize, Vec<usize>)> {
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (pos, id) in ids.iter().enumerate() {
            let entry = self
                .get(*id)
                .unwrap_or_else(|| panic!("eval_many: no registered {id}"));
            match groups.iter_mut().find(|(f, _)| *f == entry.family) {
                Some((_, positions)) => positions.push(pos),
                None => groups.push((entry.family, vec![pos])),
            }
        }
        groups
    }

    /// Evaluate many registered plans over one shared input set, engine
    /// chosen per network family by the registry's [`Planner`]: plans are
    /// grouped by content-equal network family (one nominal pass per
    /// family at most), identical plans (same `(net, structure, value)`
    /// key) are evaluated once and share their result, and the measured
    /// duration refines the planner's cost model. Returns one disturbance
    /// vector per id, aligned with `ids` — each **bitwise** equal to the
    /// corresponding [`RegisteredPlan::eval_batch`] call, whatever engine
    /// the planner picked (ARCHITECTURE contract 14).
    ///
    /// # Panics
    /// If any id is unregistered, or `xs` column count mismatches a
    /// plan's network.
    pub fn eval_many(&self, ids: &[PlanId], xs: &Matrix) -> Vec<Vec<f64>> {
        self.eval_many_inner(ids, xs, None)
    }

    /// [`PlanRegistry::eval_many`] with a
    /// [`CheckpointCache`](crate::CheckpointCache) available to the
    /// planner: the nominal checkpoint is looked up by `(net content,
    /// input-set content)` — so a registry re-evaluated over an input set
    /// it has seen before (repeated tolerance searches, periodic
    /// re-certification sweeps) skips even the one nominal pass per
    /// family. Results are **bitwise** identical to
    /// [`PlanRegistry::eval_many`]; `scratch` absorbs the suffix
    /// recomputation.
    ///
    /// # Panics
    /// As [`PlanRegistry::eval_many`].
    pub fn eval_many_cached(
        &self,
        ids: &[PlanId],
        xs: &Matrix,
        cache: &mut crate::CheckpointCache,
        scratch: &mut BatchWorkspace,
    ) -> Vec<Vec<f64>> {
        self.eval_many_inner(ids, xs, Some((cache, scratch)))
    }

    fn eval_many_inner(
        &self,
        ids: &[PlanId],
        xs: &Matrix,
        mut cache: Option<(&mut crate::CheckpointCache, &mut BatchWorkspace)>,
    ) -> Vec<Vec<f64>> {
        let mut results: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];
        for (family, positions) in self.group_by_family(ids) {
            let net = &self.families[family].rep;
            let depth = net.depth();
            // Identical-plan dedup: evaluate each distinct plan key once,
            // alias the rest (bitwise-equal by the determinism contracts).
            let mut unique: Vec<usize> = Vec::new();
            let mut alias: Vec<(usize, usize)> = Vec::new();
            for &pos in &positions {
                let key = self.entries[ids[pos].0].ir.plan_key();
                match unique
                    .iter()
                    .position(|&u| self.entries[ids[u].0].ir.plan_key() == key)
                {
                    Some(u) => alias.push((pos, u)),
                    None => unique.push(pos),
                }
            }
            self.planner.note_dedup(alias.len() as u64);
            let suffix_layers: usize = unique
                .iter()
                .map(|&pos| depth - self.entries[ids[pos].0].ir.first_faulty_layer())
                .sum();
            let mix = RequestMix {
                rows: xs.rows(),
                plans: unique.len(),
                depth,
                suffix_layers,
                cache_available: cache.is_some(),
                cache_resident: cache.as_ref().is_some_and(|(c, _)| c.contains(net, xs)),
                stream_prefix_rows: 0,
            };
            let engine = self.planner.choose(&mix);
            let start = Instant::now();
            match engine {
                Engine::Cached => {
                    let (cache, scratch) = cache.as_mut().expect("cached engine needs a cache");
                    let ck = cache.checkpoint(net, xs);
                    for &pos in &unique {
                        results[pos] = self.entries[ids[pos].0]
                            .compiled()
                            .output_error_checkpointed(net, xs, ck.ws, ck.nominal_y, scratch);
                    }
                }
                Engine::SuffixResume | Engine::Streaming => {
                    // No ingest state lives here, so a (forced) streaming
                    // pick runs the suffix engine — the engines share the
                    // nominal-plus-resume shape and are bitwise equal.
                    let mut eval = crate::multi::MultiPlanEvaluator::new(net, xs);
                    for &pos in &unique {
                        results[pos] = eval.output_error(self.entries[ids[pos].0].compiled());
                    }
                }
                Engine::WholeBatch => {
                    let mut ws = BatchWorkspace::default();
                    for &pos in &unique {
                        results[pos] = self.entries[ids[pos].0]
                            .compiled()
                            .output_error_batch(net, xs, &mut ws);
                    }
                }
                Engine::Singleton => {
                    let mut ws = BatchWorkspace::default();
                    let mut row = Matrix::zeros(0, 0);
                    for &pos in &unique {
                        let compiled = self.entries[ids[pos].0].compiled();
                        let mut out = Vec::with_capacity(xs.rows());
                        for r in 0..xs.rows() {
                            row.resize(1, xs.cols());
                            row.row_mut(0).copy_from_slice(xs.row(r));
                            out.push(compiled.output_error_batch(net, &row, &mut ws)[0]);
                        }
                        results[pos] = out;
                    }
                }
            }
            self.planner
                .observe(engine, &mix, start.elapsed().as_nanos() as u64);
            for (pos, u) in alias {
                results[pos] = results[unique[u]].clone();
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::layer::DenseLayer;
    use neurofail_nn::network::Layer;

    fn net() -> Arc<Mlp> {
        Arc::new(Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
                vec![],
                Activation::Identity,
            ))],
            vec![1.0, 2.0],
            0.0,
        ))
    }

    fn net_b() -> Arc<Mlp> {
        Arc::new(Mlp::new(
            vec![Layer::Dense(DenseLayer::new(
                Matrix::from_vec(2, 2, vec![0.5, -0.25, 1.0, 0.75]),
                vec![],
                Activation::Identity,
            ))],
            vec![2.0, -1.0],
            0.1,
        ))
    }

    #[test]
    fn register_assigns_dense_ids_and_shares_the_net() {
        let net = net();
        let mut reg = PlanRegistry::new();
        let a = reg
            .register(Arc::clone(&net), &InjectionPlan::none(), 1.0)
            .unwrap();
        let b = reg
            .register(Arc::clone(&net), &InjectionPlan::crash([(0, 1)]), 1.0)
            .unwrap();
        assert_eq!((a, b), (PlanId(0), PlanId(1)));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        // One network backs both plans without a weight clone.
        assert!(Arc::ptr_eq(
            reg.get(a).unwrap().net(),
            reg.get(b).unwrap().net()
        ));
        assert_eq!(reg.get(b).unwrap().input_dim(), 2);
        assert!(reg.get(PlanId(2)).is_none());
        assert_eq!(reg.iter().count(), 2);
        assert_eq!(reg.family_count(), 1);
        assert_eq!(reg.get(a).unwrap().family(), reg.get(b).unwrap().family());
    }

    #[test]
    fn register_propagates_compile_errors() {
        let mut reg = PlanRegistry::new();
        let err = reg.register(net(), &InjectionPlan::crash([(5, 0)]), 1.0);
        assert!(matches!(err, Err(PlanError::BadNeuron { .. })));
        assert!(reg.is_empty());
        assert_eq!(reg.admission_stats().rejected, 1);
    }

    #[test]
    fn content_equal_nets_join_one_family_distinct_nets_do_not() {
        let mut reg = PlanRegistry::new();
        let a = reg
            .register(net(), &InjectionPlan::crash([(0, 0)]), 1.0)
            .unwrap();
        // A distinct Arc over a bitwise-identical net: same family.
        let b = reg
            .register(net(), &InjectionPlan::crash([(0, 1)]), 1.0)
            .unwrap();
        let c = reg
            .register(net_b(), &InjectionPlan::crash([(0, 0)]), 1.0)
            .unwrap();
        assert_eq!(reg.family_count(), 2);
        assert_eq!(reg.get(a).unwrap().family(), reg.get(b).unwrap().family());
        assert_ne!(reg.get(a).unwrap().family(), reg.get(c).unwrap().family());
        // Family grouping shares the nominal pass across Arcs — and the
        // result is still bitwise per-plan evaluation.
        let xs = Matrix::from_vec(2, 2, vec![0.4, -0.2, 0.8, 0.1]);
        let many = reg.eval_many(&[a, b, c], &xs);
        let mut ws = BatchWorkspace::default();
        for (id, got) in [a, b, c].iter().zip(&many) {
            let direct = reg.get(*id).unwrap().eval_batch(&xs, &mut ws);
            for (g, d) in got.iter().zip(&direct) {
                assert_eq!(g.to_bits(), d.to_bits(), "{id}");
            }
        }
    }

    #[test]
    fn eval_singleton_matches_direct_singleton_batch() {
        let net = net();
        let mut reg = PlanRegistry::new();
        let id = reg
            .register(Arc::clone(&net), &InjectionPlan::crash([(0, 1)]), 1.0)
            .unwrap();
        let entry = reg.get(id).unwrap();
        let mut ws = BatchWorkspace::default();
        let x = [0.5, 0.25];
        let got = entry.eval_singleton(&x, &mut ws);
        let c = CompiledPlan::compile(&InjectionPlan::crash([(0, 1)]), &net, 1.0).unwrap();
        let xs = Matrix::from_vec(1, 2, x.to_vec());
        let direct = c.output_error_batch(&net, &xs, &mut ws)[0];
        assert_eq!(got.to_bits(), direct.to_bits());
        // Batched evaluation through the registry matches row-wise.
        let xs3 = Matrix::from_vec(3, 2, vec![0.5, 0.25, 0.0, 0.0, 1.0, -1.0]);
        let batch = entry.eval_batch(&xs3, &mut ws);
        assert_eq!(batch[0].to_bits(), got.to_bits());
    }

    #[test]
    fn eval_many_matches_per_plan_eval_batch_bitwise() {
        // Two nets, three plans (two sharing a net): eval_many must group
        // by family and stay bitwise equal to per-plan evaluation — under
        // every forced engine, not just the planner's pick.
        let net_a = net();
        let net_b = net_b();
        let mut reg = PlanRegistry::new();
        let a0 = reg
            .register(Arc::clone(&net_a), &InjectionPlan::crash([(0, 1)]), 1.0)
            .unwrap();
        let b0 = reg
            .register(Arc::clone(&net_b), &InjectionPlan::crash([(0, 0)]), 1.0)
            .unwrap();
        let a1 = reg
            .register(Arc::clone(&net_a), &InjectionPlan::none(), 1.0)
            .unwrap();
        let xs = Matrix::from_vec(3, 2, vec![0.5, 0.25, -0.4, 0.9, 0.0, 1.0]);
        let mut ws = BatchWorkspace::default();
        for forced in std::iter::once(None).chain(Engine::ALL.map(Some)) {
            reg.planner().force(forced);
            let many = reg.eval_many(&[a0, b0, a1], &xs);
            for (id, got) in [a0, b0, a1].iter().zip(&many) {
                let direct = reg.get(*id).unwrap().eval_batch(&xs, &mut ws);
                assert_eq!(got.len(), 3);
                for (g, d) in got.iter().zip(&direct) {
                    assert_eq!(g.to_bits(), d.to_bits(), "{id} forced={forced:?}");
                }
            }
        }
        reg.planner().force(None);
    }

    #[test]
    fn eval_many_cached_is_bitwise_and_hits_on_reuse() {
        let net_a = net();
        let net_b = net_b();
        let mut reg = PlanRegistry::new();
        let a0 = reg
            .register(Arc::clone(&net_a), &InjectionPlan::crash([(0, 1)]), 1.0)
            .unwrap();
        let b0 = reg
            .register(Arc::clone(&net_b), &InjectionPlan::crash([(0, 0)]), 1.0)
            .unwrap();
        let a1 = reg
            .register(Arc::clone(&net_a), &InjectionPlan::none(), 1.0)
            .unwrap();
        let xs = Matrix::from_vec(3, 2, vec![0.5, 0.25, -0.4, 0.9, 0.0, 1.0]);
        let ids = [a0, b0, a1];
        let reference = reg.eval_many(&ids, &xs);
        let mut cache = crate::CheckpointCache::new(4);
        let mut scratch = BatchWorkspace::default();
        // Cold call: one miss per net group; warm call: one hit per group
        // — and both are bitwise the uncached engine. The planner must
        // keep picking the cached engine here or the counters drift.
        for (round, expected_hits) in [(0u32, 0u64), (1, 2)] {
            let got = reg.eval_many_cached(&ids, &xs, &mut cache, &mut scratch);
            for (pi, (g, r)) in got.iter().zip(&reference).enumerate() {
                for (b, (gv, rv)) in g.iter().zip(r).enumerate() {
                    assert_eq!(
                        gv.to_bits(),
                        rv.to_bits(),
                        "round {round}, plan {pi}, row {b}"
                    );
                }
            }
            assert_eq!(cache.stats().hits, expected_hits);
        }
        assert_eq!(cache.stats().misses, 2);
        let picks = reg.planner().stats().picks;
        assert_eq!(picks[Engine::Cached.index()], 4, "2 families × 2 rounds");
    }

    #[test]
    fn identical_plans_share_one_evaluation() {
        let net = net();
        let mut reg = PlanRegistry::new();
        let plan = InjectionPlan::crash([(0, 1)]);
        let a = reg.register(Arc::clone(&net), &plan, 1.0).unwrap();
        let b = reg.register(Arc::clone(&net), &plan, 1.0).unwrap();
        assert!(reg
            .get(a)
            .unwrap()
            .ir()
            .shares_body_with(reg.get(b).unwrap().ir()));
        assert_eq!(reg.admission_stats().dedup_hits, 1);
        let xs = Matrix::from_vec(2, 2, vec![0.3, 0.6, -0.1, 0.8]);
        let many = reg.eval_many(&[a, b], &xs);
        for (x, y) in many[0].iter().zip(&many[1]) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(reg.planner().stats().dedup_hits, 1);
        let mut ws = BatchWorkspace::default();
        let direct = reg.get(a).unwrap().eval_batch(&xs, &mut ws);
        for (g, d) in many[0].iter().zip(&direct) {
            assert_eq!(g.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn eval_batch_resumed_matches_eval_batch_bitwise() {
        let net = net();
        let mut reg = PlanRegistry::new();
        let id = reg
            .register(Arc::clone(&net), &InjectionPlan::crash([(0, 0)]), 1.0)
            .unwrap();
        let entry = reg.get(id).unwrap();
        let xs = Matrix::from_vec(2, 2, vec![0.3, 0.6, -0.1, 0.8]);
        let mut ws = BatchWorkspace::default();
        let direct = entry.eval_batch(&xs, &mut ws);
        let (mut wn, mut wsc) = (BatchWorkspace::default(), BatchWorkspace::default());
        let resumed = entry.eval_batch_resumed(&xs, &mut wn, &mut wsc);
        for (r, d) in resumed.iter().zip(&direct) {
            assert_eq!(r.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(PlanId(3).to_string(), "plan#3")
    }
}

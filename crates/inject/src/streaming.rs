//! Streaming input-incremental evaluation: a fixed plan family, inputs
//! arriving in chunks.
//!
//! The suffix engine ([`crate::multi`]) shares one nominal pass across a
//! *plan* family over a fixed input set. Streaming certification traffic
//! is the transpose: the plan family is long-lived, and the input set
//! grows — each new chunk of probe inputs must be certified against every
//! plan. Recomputing from scratch pays `(all inputs × all layers)` per
//! arrival; [`StreamingEvaluator`] pays `(new inputs × all layers)` for
//! the nominal extension plus `(new inputs × suffix layers)` per plan:
//!
//! 1. [`Mlp::extend_batch_with`] grows the accumulated nominal checkpoint
//!    by only the chunk's rows (bitwise identical to a full-batch
//!    recompute, by per-row determinism);
//! 2. the chunk's own nominal taps (the extension scratch) double as a
//!    per-chunk checkpoint, so each plan's faulty pass resumes at its
//!    [`CompiledPlan::first_faulty_layer`] over just the chunk — no rows
//!    are ever copied back out of the grown checkpoint.
//!
//! Bitwise contract: every disturbance produced here equals the
//! corresponding per-plan [`CompiledPlan::output_error_batch`] call over
//! the full accumulated input set, bit for bit, for every chunking of the
//! stream (0/1/odd chunk sizes included), every fault kind and every
//! `Parallelism` policy — asserted by `tests/incremental_equivalence.rs`
//! and the cross-engine fuzz suite `tests/engine_fuzz.rs`.

use std::sync::Arc;

use neurofail_nn::{BatchWorkspace, Mlp, NoBatchTap};
use neurofail_tensor::Matrix;

use crate::executor::CompiledPlan;
use crate::registry::{PlanId, PlanRegistry};

/// Accumulated cost counters of one streaming evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Chunks ingested (empty chunks included).
    pub chunks: u64,
    /// Input rows ingested across all chunks.
    pub rows: u64,
    /// Layer-rows of **nominal** recomputation the appendable checkpoint
    /// avoided: each chunk's extension recomputes nothing for the rows
    /// already held, where a from-scratch engine would recompute
    /// `held_rows × depth` per arrival.
    pub nominal_rows_saved: u64,
    /// Layer-rows of **faulty-prefix** recomputation the per-plan suffix
    /// resumes skipped (the
    /// [`MultiPlanEvaluator::prefix_rows_saved`](crate::MultiPlanEvaluator::prefix_rows_saved)
    /// accounting, summed over chunks and plans).
    pub prefix_rows_saved: u64,
    /// Oldest rows evicted from the checkpoint by the sliding-window
    /// budget ([`StreamingEvaluator::with_row_budget`]). Purely an
    /// accounting signal: retirement never changes a served bit, only
    /// what a later back-fill can resume against.
    pub rows_retired: u64,
}

/// Incremental evaluator of a fixed plan family over a growing input set.
///
/// # Example
/// ```
/// use std::sync::Arc;
/// use neurofail_data::rng::rng;
/// use neurofail_inject::{CompiledPlan, InjectionPlan, StreamingEvaluator};
/// use neurofail_nn::{activation::Activation, BatchWorkspace, MlpBuilder};
/// use neurofail_tensor::{init::Init, Matrix};
///
/// let net = Arc::new(
///     MlpBuilder::new(2)
///         .dense(6, Activation::Sigmoid { k: 1.0 })
///         .dense(4, Activation::Sigmoid { k: 1.0 })
///         .init(Init::Xavier)
///         .build(&mut rng(8)),
/// );
/// let plans: Vec<CompiledPlan> = [(0usize, 1usize), (1, 2)]
///     .iter()
///     .map(|&site| CompiledPlan::compile(&InjectionPlan::crash([site]), &net, 1.0).unwrap())
///     .collect();
///
/// let mut stream = StreamingEvaluator::new(Arc::clone(&net), plans.clone());
/// let chunk1 = Matrix::from_fn(3, 2, |r, c| 0.1 * (r + c) as f64);
/// let chunk2 = Matrix::from_fn(2, 2, |r, c| 0.3 - 0.05 * (r * 2 + c) as f64);
/// let errs1 = stream.push_chunk(&chunk1); // one vec per plan, chunk rows
/// let errs2 = stream.push_chunk(&chunk2);
/// assert_eq!((errs1[0].len(), errs2[0].len()), (3, 2));
///
/// // Bitwise equal to batch evaluation over the full accumulated set.
/// let mut all = chunk1.clone();
/// all.append_rows(&chunk2);
/// let mut ws = BatchWorkspace::default();
/// for (p, plan) in plans.iter().enumerate() {
///     let direct = plan.output_error_batch(&net, &all, &mut ws);
///     let streamed: Vec<f64> = errs1[p].iter().chain(&errs2[p]).copied().collect();
///     assert!(streamed.iter().zip(&direct).all(|(a, b)| a.to_bits() == b.to_bits()));
/// }
/// ```
#[derive(Debug)]
pub struct StreamingEvaluator {
    net: Arc<Mlp>,
    plans: Vec<CompiledPlan>,
    ids: Vec<PlanId>,
    /// Every input row ingested so far, in arrival order.
    xs: Matrix,
    /// Appendable nominal checkpoint over `xs`.
    ws: BatchWorkspace,
    /// Nominal outputs `F_neu(x_b)`, row-aligned with `xs`.
    nominal_y: Vec<f64>,
    /// The latest chunk's nominal taps (extension scratch — doubles as
    /// the per-chunk checkpoint the faulty suffixes resume against).
    chunk_ck: BatchWorkspace,
    /// Scratch for resumed faulty suffixes.
    scratch: BatchWorkspace,
    /// Sliding-window budget: after each chunk, evict the oldest rows
    /// past this many (None = grow forever, the original lifecycle).
    row_budget: Option<usize>,
    stats: StreamStats,
}

impl StreamingEvaluator {
    /// A streaming evaluator over `plans`, all compiled against `net`.
    pub fn new(net: Arc<Mlp>, plans: Vec<CompiledPlan>) -> Self {
        let d = net.input_dim();
        // Shape the checkpoint for an empty batch up front, so the
        // zero-chunk evaluator is already a valid (empty) checkpoint.
        let ws = BatchWorkspace::for_net(&net, 0);
        StreamingEvaluator {
            net,
            ids: (0..plans.len()).map(PlanId).collect(),
            plans,
            xs: Matrix::zeros(0, d),
            ws,
            nominal_y: Vec::new(),
            chunk_ck: BatchWorkspace::default(),
            scratch: BatchWorkspace::default(),
            row_budget: None,
            stats: StreamStats::default(),
        }
    }

    /// Cap the retained checkpoint at `budget` rows: after every chunk,
    /// the oldest rows past the budget are retired (inputs, checkpoint
    /// and nominal outputs together — the eviction companion to
    /// [`Matrix::append_rows`]). Per-chunk disturbance vectors are
    /// **unchanged bitwise** for every budget (each chunk's rows never
    /// depended on older rows); only the window
    /// [`Self::eval_plan_over_stream`] can back-fill over shrinks, and
    /// [`StreamStats::rows_retired`] counts what was given up. The
    /// long-running-worker fix: an unbounded stream no longer grows the
    /// checkpoint without bound.
    ///
    /// # Panics
    /// If `budget` is zero.
    pub fn with_row_budget(mut self, budget: usize) -> Self {
        assert!(budget >= 1, "row budget must be >= 1");
        self.row_budget = Some(budget);
        self
    }

    /// The configured sliding-window budget, if any.
    pub fn row_budget(&self) -> Option<usize> {
        self.row_budget
    }

    /// A streaming evaluator over registered plans. All `ids` must share
    /// one network (`Arc` identity) — the
    /// [`PlanRegistry::eval_many`] grouping requirement, made a
    /// construction-time check here because the family is long-lived.
    ///
    /// # Panics
    /// If any id is unregistered or the ids span different networks.
    pub fn from_registry(registry: &PlanRegistry, ids: &[PlanId]) -> Self {
        assert!(
            !ids.is_empty(),
            "StreamingEvaluator: need at least one plan"
        );
        let first = registry
            .get(ids[0])
            .unwrap_or_else(|| panic!("StreamingEvaluator: no registered {}", ids[0]));
        let net = Arc::clone(first.net());
        let plans = ids
            .iter()
            .map(|&id| {
                let entry = registry
                    .get(id)
                    .unwrap_or_else(|| panic!("StreamingEvaluator: no registered {id}"));
                assert!(
                    Arc::ptr_eq(entry.net(), &net),
                    "StreamingEvaluator: {id} is registered against a different network"
                );
                entry.compiled().clone()
            })
            .collect();
        let mut eval = StreamingEvaluator::new(net, plans);
        eval.ids = ids.to_vec();
        eval
    }

    /// The network the family is compiled against.
    pub fn net(&self) -> &Arc<Mlp> {
        &self.net
    }

    /// The plan family, in evaluation order.
    pub fn plans(&self) -> &[CompiledPlan] {
        &self.plans
    }

    /// Plan ids aligned with [`plans`](Self::plans) (registry ids when
    /// built via [`StreamingEvaluator::from_registry`], dense `0..n`
    /// otherwise).
    pub fn plan_ids(&self) -> &[PlanId] {
        &self.ids
    }

    /// Rows ingested so far.
    pub fn rows(&self) -> usize {
        self.xs.rows()
    }

    /// Every ingested input row, in arrival order.
    pub fn inputs(&self) -> &Matrix {
        &self.xs
    }

    /// Nominal outputs over the whole stream, row-aligned with
    /// [`inputs`](Self::inputs).
    pub fn nominal_outputs(&self) -> &[f64] {
        &self.nominal_y
    }

    /// Accumulated cost counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Ingest one chunk of inputs and certify it against the whole
    /// family: the nominal checkpoint grows by the chunk's rows only,
    /// then each plan's faulty pass resumes at its first faulty layer
    /// over the chunk. Returns one disturbance vector per plan
    /// (plan-major, row-aligned with `chunk`), each **bitwise** equal to
    /// the rows this chunk contributes to a from-scratch
    /// [`CompiledPlan::output_error_batch`] over the full accumulated
    /// input set.
    ///
    /// # Panics
    /// If `chunk.cols() != net.input_dim()`.
    pub fn push_chunk(&mut self, chunk: &Matrix) -> Vec<Vec<f64>> {
        let held = self.ws.batch() as u64;
        let ys =
            self.net
                .extend_batch_with(&mut self.ws, &mut self.chunk_ck, &mut NoBatchTap, chunk);
        self.xs.append_rows(chunk);
        let base = self.nominal_y.len();
        self.nominal_y.extend_from_slice(&ys);
        let nominal = &self.nominal_y[base..];
        let depth = self.net.depth();
        let results = self
            .plans
            .iter()
            .map(|plan| {
                let from = plan.first_faulty_layer().min(depth);
                let mut errors = plan.resume_batch_checkpointed(
                    &self.net,
                    chunk,
                    &self.chunk_ck,
                    &mut self.scratch,
                    from,
                );
                for (e, &nom) in errors.iter_mut().zip(nominal) {
                    *e = (nom - *e).abs();
                }
                self.stats.prefix_rows_saved += from as u64 * chunk.rows() as u64;
                errors
            })
            .collect();
        self.stats.chunks += 1;
        self.stats.rows += chunk.rows() as u64;
        // A from-scratch engine would have recomputed every held row
        // through every layer to re-derive the checkpoint this arrival.
        self.stats.nominal_rows_saved += held * depth as u64;
        if let Some(budget) = self.row_budget {
            if self.xs.rows() > budget {
                let evict = self.xs.rows() - budget;
                self.xs.drop_prefix_rows(evict);
                self.ws.drop_prefix_rows(evict);
                self.nominal_y.drain(..evict);
                self.stats.rows_retired += evict as u64;
            }
        }
        results
    }

    /// Disturbances of one plan over the **whole stream so far**, resumed
    /// against the accumulated checkpoint — the late-subscriber path: a
    /// plan joining mid-stream back-fills without a fresh nominal pass.
    /// The plan need not belong to the family (it must be compiled
    /// against the same network). Bitwise equal to
    /// [`CompiledPlan::output_error_batch`] over
    /// [`inputs`](Self::inputs).
    pub fn eval_plan_over_stream(&mut self, plan: &CompiledPlan) -> Vec<f64> {
        let from = plan.first_faulty_layer().min(self.net.depth());
        self.stats.prefix_rows_saved += from as u64 * self.xs.rows() as u64;
        plan.output_error_checkpointed(
            &self.net,
            &self.xs,
            &self.ws,
            &self.nominal_y,
            &mut self.scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::InjectionPlan;
    use crate::ByzantineStrategy;
    use neurofail_data::rng::rng;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::builder::MlpBuilder;
    use neurofail_tensor::init::Init;

    fn net() -> Arc<Mlp> {
        Arc::new(
            MlpBuilder::new(3)
                .dense(6, Activation::Sigmoid { k: 1.1 })
                .dense(5, Activation::Tanh { k: 0.9 })
                .dense(4, Activation::Sigmoid { k: 1.0 })
                .init(Init::Xavier)
                .build(&mut rng(17)),
        )
    }

    fn family(net: &Mlp) -> Vec<CompiledPlan> {
        [
            InjectionPlan::none(),
            InjectionPlan::crash([(0, 1)]),
            InjectionPlan::crash([(2, 3)]),
            InjectionPlan::byzantine([(1, 2)], ByzantineStrategy::OpposeNominal),
        ]
        .iter()
        .map(|p| CompiledPlan::compile(p, net, 1.0).unwrap())
        .collect()
    }

    #[test]
    fn chunked_stream_is_bitwise_full_batch() {
        let net = net();
        let plans = family(&net);
        let mut stream = StreamingEvaluator::new(Arc::clone(&net), plans.clone());
        let mut all = Matrix::zeros(0, 3);
        let mut streamed: Vec<Vec<f64>> = vec![Vec::new(); plans.len()];
        for (i, rows) in [2usize, 0, 1, 4].iter().enumerate() {
            let chunk = Matrix::from_fn(*rows, 3, |r, c| {
                0.11 * (i + r) as f64 - 0.3 + 0.07 * c as f64
            });
            all.append_rows(&chunk);
            for (p, errs) in stream.push_chunk(&chunk).into_iter().enumerate() {
                assert_eq!(errs.len(), *rows);
                streamed[p].extend(errs);
            }
        }
        assert_eq!(stream.rows(), 7);
        let mut ws = BatchWorkspace::default();
        for (p, plan) in plans.iter().enumerate() {
            let direct = plan.output_error_batch(&net, &all, &mut ws);
            for (b, (s, d)) in streamed[p].iter().zip(&direct).enumerate() {
                assert_eq!(s.to_bits(), d.to_bits(), "plan {p}, row {b}");
            }
        }
        let stats = stream.stats();
        assert_eq!((stats.chunks, stats.rows), (4, 7));
        // Held-row savings: chunk arrivals held 0, 2, 2, 3 rows → 7 rows
        // of depth-3 nominal recomputation skipped.
        assert_eq!(stats.nominal_rows_saved, 7 * 3);
        assert!(stats.prefix_rows_saved > 0);
    }

    #[test]
    fn late_plan_backfills_over_the_stream() {
        let net = net();
        let mut stream = StreamingEvaluator::new(Arc::clone(&net), family(&net));
        for i in 0..3u64 {
            let chunk = Matrix::from_fn(3, 3, |r, c| 0.05 * (i as usize + r + c) as f64);
            let _ = stream.push_chunk(&chunk);
        }
        let late =
            CompiledPlan::compile(&InjectionPlan::crash([(1, 0), (2, 1)]), &net, 1.0).unwrap();
        let got = stream.eval_plan_over_stream(&late);
        let mut ws = BatchWorkspace::default();
        let direct = late.output_error_batch(&net, stream.inputs(), &mut ws);
        assert_eq!(got.len(), 9);
        for (g, d) in got.iter().zip(&direct) {
            assert_eq!(g.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn from_registry_adopts_ids_and_checks_net_identity() {
        let net = net();
        let mut reg = PlanRegistry::new();
        let a = reg
            .register(Arc::clone(&net), &InjectionPlan::crash([(0, 0)]), 1.0)
            .unwrap();
        let b = reg
            .register(Arc::clone(&net), &InjectionPlan::none(), 1.0)
            .unwrap();
        let stream = StreamingEvaluator::from_registry(&reg, &[b, a]);
        assert_eq!(stream.plan_ids(), &[b, a]);
        assert_eq!(stream.plans().len(), 2);
    }

    #[test]
    fn row_budget_retires_oldest_rows_without_changing_chunk_results() {
        let net = net();
        let plans = family(&net);
        let mut capped =
            StreamingEvaluator::new(Arc::clone(&net), plans.clone()).with_row_budget(4);
        let mut unbounded = StreamingEvaluator::new(Arc::clone(&net), plans.clone());
        for i in 0..5u64 {
            let chunk = Matrix::from_fn(3, 3, |r, c| 0.04 * (i as usize + r + 2 * c) as f64);
            let got = capped.push_chunk(&chunk);
            let want = unbounded.push_chunk(&chunk);
            for (g, w) in got.iter().flatten().zip(want.iter().flatten()) {
                assert_eq!(g.to_bits(), w.to_bits(), "eviction changed a served bit");
            }
            assert!(
                capped.rows() <= 4,
                "budget exceeded: {} rows",
                capped.rows()
            );
        }
        assert_eq!(capped.stats().rows_retired, 15 - 4);
        assert_eq!(unbounded.stats().rows_retired, 0);
        // The window back-fills bitwise against a from-scratch recompute
        // over the retained inputs.
        let late = CompiledPlan::compile(&InjectionPlan::crash([(1, 1)]), &net, 1.0).unwrap();
        let got = capped.eval_plan_over_stream(&late);
        let mut ws = BatchWorkspace::default();
        let direct = late.output_error_batch(&net, capped.inputs(), &mut ws);
        assert_eq!(got.len(), 4);
        for (g, d) in got.iter().zip(&direct) {
            assert_eq!(g.to_bits(), d.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "different network")]
    fn from_registry_rejects_mixed_networks() {
        let net_a = net();
        let net_b = net();
        let mut reg = PlanRegistry::new();
        let a = reg
            .register(Arc::clone(&net_a), &InjectionPlan::none(), 1.0)
            .unwrap();
        let b = reg
            .register(Arc::clone(&net_b), &InjectionPlan::none(), 1.0)
            .unwrap();
        let _ = StreamingEvaluator::from_registry(&reg, &[a, b]);
    }
}

//! Cost-model engine planner: one decision point for "which of the five
//! bitwise-equivalent engines runs this request mix".
//!
//! The workspace now has five ways to evaluate a set of admitted plans
//! over a set of inputs — singleton batches, whole-batch, suffix-resume,
//! streaming ingest, and cache/warm-start-backed — all proven bitwise
//! equal by the differential fuzz suite (ARCHITECTURE contracts 5, 6, 9,
//! 10). Historically every call site hard-coded its engine; the
//! [`Planner`] replaces that with a measured cost model:
//!
//! * each engine has a **unit cost** (nanoseconds per *row-layer*, the
//!   common work unit of every engine), seeded from the committed
//!   `BENCH_PR4`–`BENCH_PR8.json` measurements and refined online with
//!   the same EWMA the serve shards use for row costs (α = 1/8);
//! * a request is summarized as a [`RequestMix`] — rows, plans, depth,
//!   total suffix layers, cache/stream state — from which each engine's
//!   nominal work in row-layers follows in closed form;
//! * [`Planner::choose`] picks the feasible engine with the lowest
//!   predicted cost; [`Planner::observe`] feeds the measured duration
//!   back, tracking prediction error so the snapshot can report how well
//!   the model fits.
//!
//! Because the engines are bitwise-equivalent *by contract*, the
//! planner's choice is invisible in every output bit (ARCHITECTURE
//! contract 14); `NEUROFAIL_PLANNER` / [`Planner::force`] pin a specific
//! engine so the fuzz suite and benchmarks can certify exactly that.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

/// The five execution engines the planner arbitrates between. The
/// discriminants are stable indices into every per-engine counter array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Engine {
    /// Per-plan, per-row singleton batches (`eval_singleton`) — the
    /// simplest engine; pays full dispatch per row.
    Singleton = 0,
    /// Per-plan whole-batch evaluation (`output_error_batch`) — the
    /// *reference* engine every other engine is certified against.
    WholeBatch = 1,
    /// Shared nominal pass + per-plan suffix resume
    /// ([`crate::MultiPlanEvaluator`] / `resume_batch_from`).
    SuffixResume = 2,
    /// Streaming ingest ([`crate::StreamingEvaluator`]) — only new rows
    /// pay, feasible when a bitwise-verified prefix already exists.
    Streaming = 3,
    /// Checkpoint-cache / artifact-store backed evaluation
    /// ([`crate::CheckpointCache`]) — the nominal pass itself is skipped
    /// on a resident or stored checkpoint.
    Cached = 4,
}

impl Engine {
    /// All engines, in preference order for cost ties: the engines that
    /// reuse the most prior work win ties, so equal-cost predictions
    /// degrade gracefully toward less recomputation.
    pub const PREFERENCE: [Engine; 5] = [
        Engine::Cached,
        Engine::Streaming,
        Engine::SuffixResume,
        Engine::WholeBatch,
        Engine::Singleton,
    ];

    /// All engines in index order.
    pub const ALL: [Engine; 5] = [
        Engine::Singleton,
        Engine::WholeBatch,
        Engine::SuffixResume,
        Engine::Streaming,
        Engine::Cached,
    ];

    /// Stable index (the enum discriminant).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Engine from its stable index.
    pub fn from_index(i: usize) -> Option<Engine> {
        Engine::ALL.get(i).copied().filter(|e| e.index() == i)
    }

    /// Stable lowercase name (used by `NEUROFAIL_PLANNER` and stats).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Singleton => "singleton",
            Engine::WholeBatch => "whole-batch",
            Engine::SuffixResume => "suffix-resume",
            Engine::Streaming => "streaming",
            Engine::Cached => "cached",
        }
    }

    /// Parse an engine name as accepted by `NEUROFAIL_PLANNER`.
    pub fn parse(s: &str) -> Option<Engine> {
        match s.trim().to_ascii_lowercase().as_str() {
            "singleton" => Some(Engine::Singleton),
            "whole-batch" | "wholebatch" | "batch" => Some(Engine::WholeBatch),
            "suffix-resume" | "suffix" | "resume" => Some(Engine::SuffixResume),
            "streaming" | "stream" => Some(Engine::Streaming),
            "cached" | "cache" | "store" => Some(Engine::Cached),
            _ => None,
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Closed-form summary of one evaluation request, from which every
/// engine's nominal work in row-layers follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestMix {
    /// Input rows to evaluate.
    pub rows: usize,
    /// Plans in the request (all over one content-equal network family).
    pub plans: usize,
    /// Network depth in layers.
    pub depth: usize,
    /// Σ over plans of `depth − first_faulty_layer` — the total resumed
    /// layers a suffix engine runs per row.
    pub suffix_layers: usize,
    /// A checkpoint cache (possibly store-backed) is attached to this
    /// call path, so the `Cached` engine is dispatchable.
    pub cache_available: bool,
    /// The checkpoint for exactly this `(net, rows)` key is known
    /// resident (cache hit guaranteed; the nominal pass costs nothing).
    pub cache_resident: bool,
    /// Rows of an already-ingested, bitwise-verified streaming prefix
    /// (0 = no stream to extend, `Streaming` infeasible).
    pub stream_prefix_rows: usize,
}

impl RequestMix {
    /// Nominal work of `engine` on this mix, in row-layers (≥ 1 so cost
    /// ratios and EWMA divisions stay well-defined on empty requests).
    pub fn units(&self, engine: Engine) -> u64 {
        let rows = self.rows as u64;
        let depth = self.depth as u64;
        let suffix = self.suffix_layers as u64;
        let plans = self.plans as u64;
        let new_rows = rows.saturating_sub(self.stream_prefix_rows as u64);
        let u = match engine {
            // Per-plan nominal + faulty full passes.
            Engine::Singleton | Engine::WholeBatch => 2 * plans * rows * depth,
            // One shared nominal pass + per-plan resumed suffixes.
            Engine::SuffixResume => rows * depth + rows * suffix,
            // A resident checkpoint erases the nominal pass entirely.
            Engine::Cached => {
                let nominal = if self.cache_resident { 0 } else { rows * depth };
                nominal + rows * suffix
            }
            // Only rows beyond the verified prefix pay at all.
            Engine::Streaming => new_rows * depth + new_rows * suffix,
        };
        u.max(1)
    }

    /// Whether `engine` can execute this mix at all.
    pub fn feasible(&self, engine: Engine) -> bool {
        match engine {
            Engine::Singleton | Engine::WholeBatch | Engine::SuffixResume => true,
            Engine::Streaming => self.stream_prefix_rows > 0,
            Engine::Cached => self.cache_available,
        }
    }
}

/// Point-in-time planner counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerStats {
    /// Times each engine was picked, indexed by [`Engine::index`].
    pub picks: [u64; 5],
    /// Timings fed back through [`Planner::observe`].
    pub observations: u64,
    /// EWMA of |predicted − actual| / actual, in parts per million — the
    /// cost model's running prediction error.
    pub pred_err_ppm: u64,
    /// Plan evaluations skipped because an identical plan (same
    /// `(net, structure, value)` key) was already evaluated in the same
    /// request — its result is shared, bitwise, for free.
    pub dedup_hits: u64,
    /// Current per-engine unit costs (ns per row-layer), indexed by
    /// [`Engine::index`].
    pub unit_ns: [u64; 5],
    /// The engine currently forced, if any.
    pub forced: Option<Engine>,
}

/// EWMA with α = 1/8 — the same smoothing the serve shards use for
/// per-row flush costs, so planner and shard statistics age identically.
fn ewma(old: u64, sample: u64) -> u64 {
    if old == 0 {
        sample
    } else {
        (old - old / 8 + sample / 8).max(1)
    }
}

/// Baseline ns per row-layer, per engine ([`Engine::index`] order),
/// measured by the committed bench history:
/// * singleton ≈ 1540 ns — the per-row dispatch rate (batch-of-1 GEMVs
///   forfeit the GEMM blocking win, ~4× whole-batch — the BENCH_PR4-era
///   `serve` singleton gap);
/// * whole-batch ≈ 385 ns — BENCH_PR8 `multi_plan` `per_plan_units_per_s`
///   ≈ 0.65 M plan-row-layers/s at 4 plans ⇒ ~1538 ns ÷ 4 plans;
/// * suffix-resume ≈ 167 ns — BENCH_PR8 `multi_plan`
///   `suffix_units_per_s` ≈ 6.0 M units/s;
/// * streaming ≈ 383 ns — BENCH_PR8 `streaming` ≈ 2.61 M units/s (its
///   units include the nominal prefix work);
/// * cached ≈ 167 ns — a hit degenerates to pure suffix work (BENCH_PR8
///   `store` warm-start matches the suffix rate).
const UNIT_NS_SEED: [u64; 5] = [1540, 385, 167, 383, 167];

/// The cost-model planner. Cheap to share (`Arc`): all state is relaxed
/// atomics, and choices are pure reads plus counter bumps.
///
/// ## Why one global calibration scale, not per-engine rates
///
/// The *relative* engine rates come from the committed benches
/// (`UNIT_NS_SEED`) and stay fixed; [`Planner::observe`] refines a
/// single multiplicative speed scale that absorbs what actually varies at
/// runtime — machine speed, build profile, thermal state. Refining each
/// engine's rate independently from its own picks would create an
/// absorbing state: an engine measured slow once (a cold page, a debug
/// build) is never picked again, so its estimate never recovers, and
/// call-path invariants (e.g. "a provided checkpoint cache is consulted")
/// turn timing-dependent. With a shared scale, routing is a deterministic
/// function of the request mix while predicted costs still track the
/// measured rates (see [`PlannerStats::pred_err_ppm`]).
#[derive(Debug)]
pub struct Planner {
    /// Global speed scale in parts per million of the bench-seeded rates
    /// (1_000_000 = exactly as benched), EWMA-refined from observations.
    scale_ppm: AtomicU64,
    picks: [AtomicU64; 5],
    observations: AtomicU64,
    pred_err_ppm: AtomicU64,
    dedup_hits: AtomicU64,
    /// 0 = auto; `e.index() + 1` = forced engine.
    forced: AtomicU8,
}

impl Default for Planner {
    fn default() -> Self {
        Self::new()
    }
}

impl Planner {
    /// A planner with bench-seeded unit costs. Honors `NEUROFAIL_PLANNER`
    /// (an [`Engine::parse`] name forces that engine; `auto`/unset picks
    /// by cost).
    pub fn new() -> Planner {
        let p = Planner {
            scale_ppm: AtomicU64::new(1_000_000),
            picks: Default::default(),
            observations: AtomicU64::new(0),
            pred_err_ppm: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            forced: AtomicU8::new(0),
        };
        if let Ok(v) = std::env::var("NEUROFAIL_PLANNER") {
            if let Some(e) = Engine::parse(&v) {
                p.force(Some(e));
            }
        }
        p
    }

    /// The process-wide planner used by call paths without a registry
    /// (`core::measured`, campaign chunking).
    pub fn global() -> &'static Planner {
        static GLOBAL: OnceLock<Planner> = OnceLock::new();
        GLOBAL.get_or_init(Planner::new)
    }

    /// Convenience: a fresh shared planner.
    pub fn shared() -> Arc<Planner> {
        Arc::new(Planner::new())
    }

    /// Pin every subsequent choice to `engine` (when feasible for the
    /// mix; infeasible forces fall back to cost-based choice so a forced
    /// `Streaming` with no stream still returns *an* engine). `None`
    /// restores cost-based choice.
    pub fn force(&self, engine: Option<Engine>) {
        self.forced
            .store(engine.map(|e| e.index() as u8 + 1).unwrap_or(0), Relaxed);
    }

    /// The currently forced engine, if any.
    pub fn forced(&self) -> Option<Engine> {
        match self.forced.load(Relaxed) {
            0 => None,
            i => Engine::from_index(i as usize - 1),
        }
    }

    /// Current effective unit cost of `engine` (ns per row-layer):
    /// bench-seeded rate times the calibrated speed scale.
    pub fn unit_ns(&self, engine: Engine) -> u64 {
        (UNIT_NS_SEED[engine.index()].saturating_mul(self.scale_ppm.load(Relaxed)) / 1_000_000)
            .max(1)
    }

    /// Predicted cost of running `engine` on `mix`, in nanoseconds.
    pub fn predicted_ns(&self, engine: Engine, mix: &RequestMix) -> u64 {
        mix.units(engine).saturating_mul(self.unit_ns(engine))
    }

    /// Pick the engine for `mix`: the forced engine when set and
    /// feasible, otherwise the feasible engine with the lowest predicted
    /// cost (ties resolved by [`Engine::PREFERENCE`]). Records the pick.
    pub fn choose(&self, mix: &RequestMix) -> Engine {
        let picked = match self.forced() {
            Some(e) if mix.feasible(e) => e,
            _ => {
                let mut best = Engine::WholeBatch;
                let mut best_cost = u64::MAX;
                for &e in &Engine::PREFERENCE {
                    if !mix.feasible(e) {
                        continue;
                    }
                    let cost = self.predicted_ns(e, mix);
                    if cost < best_cost {
                        best = e;
                        best_cost = cost;
                    }
                }
                best
            }
        };
        self.picks[picked.index()].fetch_add(1, Relaxed);
        picked
    }

    /// Feed back a measured execution: refines the global speed scale
    /// and the running prediction error (both EWMA, α = 1/8).
    pub fn observe(&self, engine: Engine, mix: &RequestMix, elapsed_ns: u64) {
        let predicted = self.predicted_ns(engine, mix);
        if elapsed_ns > 0 && predicted > 0 {
            let err_ppm = predicted.abs_diff(elapsed_ns).saturating_mul(1_000_000) / elapsed_ns;
            let e = &self.pred_err_ppm;
            e.store(ewma(e.load(Relaxed), err_ppm), Relaxed);
            // Scale sample: how much slower/faster this run was than the
            // *seed* rate predicts (independent of the current scale, so
            // the EWMA converges on the measured ratio instead of
            // compounding). Racy read-modify-write is fine: this is
            // telemetry smoothing, and every interleaving still converges.
            let seed_ns = mix
                .units(engine)
                .saturating_mul(UNIT_NS_SEED[engine.index()])
                .max(1);
            let sample_ppm = elapsed_ns
                .saturating_mul(1_000_000)
                .checked_div(seed_ns)
                .unwrap_or(u64::MAX)
                .clamp(1_000, 1_000_000_000); // 0.001×..1000× sanity bounds
            let s = &self.scale_ppm;
            s.store(ewma(s.load(Relaxed), sample_ppm), Relaxed);
        }
        self.observations.fetch_add(1, Relaxed);
    }

    /// Record a pick made outside [`choose`](Planner::choose) — call
    /// paths (serve's flush) where live state dictates the route: a
    /// streaming prefix actually matched, or a store checkpoint actually
    /// hit. The cost model can't see that state up front, but the pick
    /// still belongs in the telemetry.
    pub fn note_pick(&self, engine: Engine) {
        self.picks[engine.index()].fetch_add(1, Relaxed);
    }

    /// Record `plans` evaluations skipped by identical-plan result
    /// sharing (see [`PlannerStats::dedup_hits`]).
    pub fn note_dedup(&self, plans: u64) {
        if plans > 0 {
            self.dedup_hits.fetch_add(plans, Relaxed);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlannerStats {
        PlannerStats {
            picks: std::array::from_fn(|i| self.picks[i].load(Relaxed)),
            observations: self.observations.load(Relaxed),
            pred_err_ppm: self.pred_err_ppm.load(Relaxed),
            dedup_hits: self.dedup_hits.load(Relaxed),
            unit_ns: std::array::from_fn(|i| {
                self.unit_ns(Engine::from_index(i).expect("dense index"))
            }),
            forced: self.forced(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family_mix() -> RequestMix {
        RequestMix {
            rows: 64,
            plans: 8,
            depth: 6,
            suffix_layers: 8, // deep faults: ~1 suffix layer per plan
            cache_available: false,
            cache_resident: false,
            stream_prefix_rows: 0,
        }
    }

    #[test]
    fn suffix_beats_whole_batch_on_plan_families() {
        let p = Planner::new();
        assert_eq!(p.choose(&family_mix()), Engine::SuffixResume);
        // A single shallow-fault plan has no suffix advantage: the
        // suffix engine's nominal+full-resume matches whole-batch units,
        // and whole-batch's unit rate is the same, so preference order
        // keeps suffix — but singleton must never win here.
        let single = RequestMix {
            plans: 1,
            suffix_layers: 6,
            ..family_mix()
        };
        assert_ne!(p.choose(&single), Engine::Singleton);
    }

    #[test]
    fn resident_cache_wins_and_infeasible_engines_are_skipped() {
        let p = Planner::new();
        let mut mix = family_mix();
        mix.cache_available = true;
        mix.cache_resident = true;
        assert_eq!(p.choose(&mix), Engine::Cached);
        mix.cache_available = false;
        assert_ne!(p.choose(&mix), Engine::Cached);
        assert_ne!(p.choose(&mix), Engine::Streaming);
    }

    #[test]
    fn streaming_wins_when_most_rows_are_already_ingested() {
        let p = Planner::new();
        let mut mix = family_mix();
        mix.stream_prefix_rows = 56; // only 8 of 64 rows are new
        assert_eq!(p.choose(&mix), Engine::Streaming);
    }

    #[test]
    fn force_pins_feasible_choices_only() {
        let p = Planner::new();
        p.force(Some(Engine::Singleton));
        assert_eq!(p.choose(&family_mix()), Engine::Singleton);
        p.force(Some(Engine::Streaming));
        // No stream prefix → forced engine infeasible → cost-based.
        assert_ne!(p.choose(&family_mix()), Engine::Streaming);
        p.force(None);
        assert_eq!(p.stats().forced, None);
        assert_eq!(p.choose(&family_mix()), Engine::SuffixResume);
    }

    #[test]
    fn observe_calibrates_the_speed_scale_without_flipping_routes() {
        let p = Planner::new();
        let mix = family_mix();
        let before = p.stats().unit_ns[Engine::SuffixResume.index()];
        // Report every run as 10× slower than the bench seeds predict
        // (e.g. a debug build): predictions must track the measurements…
        for _ in 0..64 {
            p.observe(
                Engine::SuffixResume,
                &mix,
                mix.units(Engine::SuffixResume) * UNIT_NS_SEED[Engine::SuffixResume.index()] * 10,
            );
        }
        let after = p.stats().unit_ns[Engine::SuffixResume.index()];
        assert!(after > before * 8, "EWMA must track the measurements");
        // …and the scale is global, so every engine slowed equally…
        let s = p.stats();
        assert!(s.unit_ns[Engine::WholeBatch.index()] > UNIT_NS_SEED[1] * 8);
        // …which means routing — a function of the request mix and the
        // benched *ratios* — does not flip under uniform slowdown.
        assert_eq!(p.choose(&mix), Engine::SuffixResume);
        assert_eq!(s.observations, 64);
        assert!(s.pred_err_ppm > 0, "first observations were mispredicted");
        // Once calibrated, fresh predictions match fresh measurements.
        let calibrated = p.predicted_ns(Engine::SuffixResume, &mix);
        let measured =
            mix.units(Engine::SuffixResume) * UNIT_NS_SEED[Engine::SuffixResume.index()] * 10;
        assert!(calibrated.abs_diff(measured) * 20 < measured, "within 5%");
    }

    #[test]
    fn units_are_exact_row_layer_accounting() {
        let mix = family_mix();
        assert_eq!(mix.units(Engine::WholeBatch), 2 * 8 * 64 * 6);
        assert_eq!(mix.units(Engine::SuffixResume), 64 * 6 + 64 * 8);
        let mut m = mix;
        m.cache_available = true;
        m.cache_resident = true;
        assert_eq!(m.units(Engine::Cached), 64 * 8);
        m.stream_prefix_rows = 60;
        assert_eq!(m.units(Engine::Streaming), 4 * 6 + 4 * 8);
        assert_eq!(RequestMix::default().units(Engine::WholeBatch), 1);
    }

    #[test]
    fn names_round_trip() {
        for e in Engine::ALL {
            assert_eq!(Engine::parse(e.name()), Some(e));
            assert_eq!(Engine::from_index(e.index()), Some(e));
        }
        assert_eq!(Engine::parse("nonsense"), None);
        assert_eq!(Engine::from_index(9), None);
    }
}

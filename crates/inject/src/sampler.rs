//! Random plan generation for Monte-Carlo campaigns.
//!
//! A sampler draws injection plans matching a per-layer fault *count*
//! distribution `(f_l)` — the quantity the bounds speak about — with the
//! faulty sites chosen uniformly without replacement inside each layer.

use neurofail_data::rng::DetRng;
use neurofail_nn::Mlp;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::plan::{
    ByzantineStrategy, InjectionPlan, NeuronFault, NeuronSite, SynapseFault, SynapseSite,
    SynapseTarget,
};

/// What kind of fault the sampled neurons exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// All sampled neurons crash.
    Crash,
    /// All sampled neurons send +C.
    ByzantineMaxPositive,
    /// All sampled neurons send −C.
    ByzantineMaxNegative,
    /// Each sampled neuron sends a fixed pseudo-random value in `[−C, C]`.
    ByzantineRandom,
    /// Each sampled neuron opposes its nominal output at ±C.
    ByzantineOpposeNominal,
    /// All sampled neurons stick at the given value.
    StuckAt(f64),
}

impl FaultSpec {
    fn to_fault(self, rng: &mut DetRng) -> NeuronFault {
        match self {
            FaultSpec::Crash => NeuronFault::Crash,
            FaultSpec::ByzantineMaxPositive => {
                NeuronFault::Byzantine(ByzantineStrategy::MaxPositive)
            }
            FaultSpec::ByzantineMaxNegative => {
                NeuronFault::Byzantine(ByzantineStrategy::MaxNegative)
            }
            FaultSpec::ByzantineRandom => {
                NeuronFault::Byzantine(ByzantineStrategy::Random { seed: rng.gen() })
            }
            FaultSpec::ByzantineOpposeNominal => {
                NeuronFault::Byzantine(ByzantineStrategy::OpposeNominal)
            }
            FaultSpec::StuckAt(v) => NeuronFault::StuckAt(v),
        }
    }
}

/// Sample a neuron-fault plan with exactly `counts[l]` faulty neurons in
/// each 0-based layer `l`.
///
/// # Panics
/// If `counts` mismatches the network depth or exceeds a layer width.
pub fn sample_neuron_plan(
    net: &Mlp,
    counts: &[usize],
    spec: FaultSpec,
    rng: &mut DetRng,
) -> InjectionPlan {
    let widths = net.widths();
    assert_eq!(counts.len(), widths.len(), "counts/depth mismatch");
    let mut neurons = Vec::new();
    for (layer, (&count, &width)) in counts.iter().zip(&widths).enumerate() {
        assert!(
            count <= width,
            "layer {layer}: {count} faults > {width} neurons"
        );
        let mut idx: Vec<usize> = (0..width).collect();
        idx.shuffle(rng);
        for &neuron in idx.iter().take(count) {
            neurons.push(NeuronSite {
                layer,
                neuron,
                fault: spec.to_fault(rng),
            });
        }
    }
    InjectionPlan {
        neurons,
        synapses: Vec::new(),
    }
}

/// Sample a synapse-fault plan with `counts[l]` faulty synapses entering
/// each 0-based layer `l` (`counts[L]` = output synapses). Byzantine
/// synapses get deviations uniform in `[−c, c]` when `byzantine` is true,
/// otherwise synapses crash.
///
/// # Panics
/// If `counts.len() != depth + 1` or a count exceeds the synapse population
/// of its layer.
pub fn sample_synapse_plan(
    net: &Mlp,
    counts: &[usize],
    byzantine: bool,
    capacity: f64,
    rng: &mut DetRng,
) -> InjectionPlan {
    let widths = net.widths();
    let depth = widths.len();
    assert_eq!(counts.len(), depth + 1, "need depth+1 synapse counts");
    let mut synapses = Vec::new();
    for layer in 0..depth {
        let fan_in = if layer == 0 {
            net.input_dim()
        } else {
            widths[layer - 1]
        };
        let population = fan_in * widths[layer];
        assert!(
            counts[layer] <= population,
            "layer {layer}: {} synapse faults > {population} synapses",
            counts[layer]
        );
        let mut flat: Vec<usize> = (0..population).collect();
        flat.shuffle(rng);
        for &s in flat.iter().take(counts[layer]) {
            let to = s / fan_in;
            let from = s % fan_in;
            synapses.push(SynapseSite {
                target: SynapseTarget::Hidden { layer, to, from },
                fault: sample_synapse_fault(byzantine, capacity, rng),
            });
        }
    }
    let out_pop = widths[depth - 1];
    assert!(counts[depth] <= out_pop, "too many output synapse faults");
    let mut flat: Vec<usize> = (0..out_pop).collect();
    flat.shuffle(rng);
    for &from in flat.iter().take(counts[depth]) {
        synapses.push(SynapseSite {
            target: SynapseTarget::Output { from },
            fault: sample_synapse_fault(byzantine, capacity, rng),
        });
    }
    InjectionPlan {
        neurons: Vec::new(),
        synapses,
    }
}

fn sample_synapse_fault(byzantine: bool, capacity: f64, rng: &mut DetRng) -> SynapseFault {
    if byzantine {
        SynapseFault::Byzantine(rng.gen_range(-capacity..=capacity))
    } else {
        SynapseFault::Crash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_data::rng::rng;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::builder::MlpBuilder;

    fn net() -> Mlp {
        MlpBuilder::new(3)
            .dense(6, Activation::Sigmoid { k: 1.0 })
            .dense(4, Activation::Sigmoid { k: 1.0 })
            .build(&mut rng(50))
    }

    #[test]
    fn neuron_plan_matches_requested_counts() {
        let net = net();
        let plan = sample_neuron_plan(&net, &[3, 2], FaultSpec::Crash, &mut rng(51));
        assert_eq!(plan.neuron_counts(2), vec![3, 2]);
        // Sites are distinct within each layer.
        let mut seen = std::collections::HashSet::new();
        for s in &plan.neurons {
            assert!(seen.insert((s.layer, s.neuron)));
        }
    }

    #[test]
    fn neuron_plan_is_deterministic() {
        let net = net();
        let a = sample_neuron_plan(&net, &[2, 1], FaultSpec::ByzantineRandom, &mut rng(52));
        let b = sample_neuron_plan(&net, &[2, 1], FaultSpec::ByzantineRandom, &mut rng(52));
        assert_eq!(a, b);
    }

    #[test]
    fn synapse_plan_matches_counts() {
        let net = net();
        let plan = sample_synapse_plan(&net, &[4, 3, 2], true, 1.0, &mut rng(53));
        assert_eq!(plan.synapse_counts(2), vec![4, 3, 2]);
        // Byzantine deviations respect the capacity.
        for s in &plan.synapses {
            if let SynapseFault::Byzantine(d) = s.fault {
                assert!(d.abs() <= 1.0);
            } else {
                panic!("expected Byzantine faults");
            }
        }
    }

    #[test]
    fn crash_synapse_plan() {
        let net = net();
        let plan = sample_synapse_plan(&net, &[1, 0, 1], false, 1.0, &mut rng(54));
        assert!(plan
            .synapses
            .iter()
            .all(|s| matches!(s.fault, SynapseFault::Crash)));
    }

    #[test]
    #[should_panic(expected = "faults >")]
    fn too_many_faults_panics() {
        let net = net();
        let _ = sample_neuron_plan(&net, &[7, 0], FaultSpec::Crash, &mut rng(55));
    }
}

//! Content-addressed nominal-checkpoint cache: skip even the *one*
//! nominal pass.
//!
//! The suffix engine ([`crate::multi`]) already shares one nominal pass
//! across a plan family — but every new evaluation over the same input
//! set still pays that one pass. Tolerance/threshold searches re-evaluate
//! the same Halton/grid probe sets across ε′ (or capacity) iterations,
//! repeated campaigns re-certify fixed input sets, and
//! [`PlanRegistry::eval_many`](crate::PlanRegistry::eval_many) calls
//! arrive over long-lived input sets. [`CheckpointCache`] memoises the
//! nominal checkpoint itself, keyed by **(network content hash,
//! input-set content hash)**: a hit returns the stored [`BatchWorkspace`] taps and
//! nominal outputs, so the whole evaluation reduces to per-plan faulty
//! suffixes.
//!
//! ## Key semantics and the determinism contract
//!
//! * **Network identity is content**, not address: [`net_content_hash`]
//!   folds the topology (layer kinds, dimensions, activation tags and
//!   gains) and every parameter's raw f64 bit pattern into the key, so
//!   two `Arc<Mlp>` handles with bitwise-equal parameters share a
//!   checkpoint — a deserialised or re-cloned network hits the entries
//!   its original populated. A pointer-identity fast path
//!   (`Arc::ptr_eq`) skips the parameter comparison in the common case;
//!   when pointers differ, the hit is verified structurally and bitwise
//!   (`net_content_eq`), so a recycled allocation address can never
//!   alias a different network. Mutating a cached network in place
//!   through `layers_mut` is outside the contract, exactly as for the
//!   suffix engine's checkpoints.
//! * **Input-set content hash**: [`input_set_hash`] folds the dimensions
//!   and the raw f64 *bit patterns* of the input matrix (FNV-1a over
//!   64-bit words, SplitMix64-finalised). Bitwise-equal input sets — the
//!   only kind for which reusing a checkpoint is bitwise-sound — always
//!   collide onto the same key; numerically equal but bitwise distinct
//!   sets (`-0.0` vs `0.0`) deliberately do not.
//! * The hashes are the *index*, not the proof: every entry stores its
//!   input set (and its network handle), and a hit additionally verifies
//!   both bitwise, so a 64-bit hash collision degrades to a miss, never
//!   to a wrong checkpoint. Cached results are therefore **bitwise**
//!   equal to cold-path evaluation, and eviction can never change a
//!   value — only cost (`tests/incremental_equivalence.rs`).
//!
//! Eviction is LRU over a fixed entry capacity; [`CacheStats`] reports
//! hits, misses, evictions, resident bytes, and the layer-rows of nominal
//! recomputation hits avoided.
//!
//! ## The disk tier
//!
//! [`CheckpointCache::attach_store`] adds a persistent
//! [`ArtifactStore`] below the memory tier:
//! lookups go **memory → disk → compute**, computed checkpoints are
//! written through, and a verified disk hit is promoted to memory. Disk
//! hits count as [`CacheStats::store_hits`] (and as hits in the returned
//! [`CachedCheckpoint::hit`] flag — the nominal pass was skipped), never
//! as misses. The store applies the same bitwise-verification rule as
//! the memory tier, so all three paths return bitwise-identical values
//! (`tests/store_equivalence.rs`), and a corrupted store degrades to the
//! compute path (`tests/store_corruption.rs`).

use std::sync::Arc;

use neurofail_nn::{BatchWorkspace, Layer, Mlp};
use neurofail_par::seed::splitmix64;
use neurofail_tensor::Matrix;

use crate::executor::CompiledPlan;
use crate::store::{ArtifactStore, StoreStats};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Content hash of an input set: dimensions plus every element's raw bit
/// pattern, folded FNV-1a-style over 64-bit words and finalised with
/// SplitMix64. A pure function of the matrix's bits — equal bits always
/// hash equal, so bitwise-identical input sets address the same cache
/// slot on any host and any run.
pub fn input_set_hash(xs: &Matrix) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(FNV_PRIME);
    };
    mix(xs.rows() as u64);
    mix(xs.cols() as u64);
    for &v in xs.data() {
        mix(v.to_bits());
    }
    splitmix64(h)
}

/// Discriminant pair folded into [`net_content_hash`] for an activation:
/// a variant tag plus the raw bits of its gain (0 for the gain-free
/// variants). Bitwise-equal gains — the only kind for which forward
/// passes agree bitwise — hash equal; `k = 1.0` vs `k = 1.0 + 1 ulp`
/// deliberately do not.
fn activation_key(a: neurofail_nn::Activation) -> (u64, u64) {
    use neurofail_nn::Activation;
    match a {
        Activation::Sigmoid { k } => (1, k.to_bits()),
        Activation::Tanh { k } => (2, k.to_bits()),
        Activation::Relu => (3, 0),
        Activation::Identity => (4, 0),
    }
}

/// Content hash of a network: topology (layer kinds, dimensions,
/// activation tags and gains) plus every parameter's raw f64 bit
/// pattern, folded with the same FNV-1a / SplitMix64 scheme as
/// [`input_set_hash`]. A pure function of the network's bits — two
/// handles to bitwise-equal networks (clones, deserialised copies)
/// hash equal on any host and any run, while a one-ulp parameter
/// perturbation hashes apart.
pub fn net_content_hash(net: &Mlp) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(FNV_PRIME);
    };
    mix(net.input_dim() as u64);
    mix(net.depth() as u64);
    for layer in net.layers() {
        match layer {
            Layer::Dense(d) => {
                mix(0);
                let (tag, k) = activation_key(d.activation());
                mix(tag);
                mix(k);
                mix(d.weights().rows() as u64);
                mix(d.weights().cols() as u64);
                for &w in d.weights().data() {
                    mix(w.to_bits());
                }
                mix(d.bias().len() as u64);
                for &b in d.bias() {
                    mix(b.to_bits());
                }
            }
            Layer::Conv1d(c) => {
                mix(1);
                let (tag, k) = activation_key(c.activation());
                mix(tag);
                mix(k);
                mix(c.in_dim() as u64);
                mix(c.kernels().rows() as u64);
                mix(c.kernels().cols() as u64);
                for &w in c.kernels().data() {
                    mix(w.to_bits());
                }
                mix(c.bias().len() as u64);
                for &b in c.bias() {
                    mix(b.to_bits());
                }
            }
        }
    }
    mix(net.output_weights().len() as u64);
    for &w in net.output_weights() {
        mix(w.to_bits());
    }
    mix(net.output_bias().to_bits());
    splitmix64(h)
}

/// Structural-and-bitwise network equality: the verification a cache hit
/// runs when the handles are not pointer-identical. True exactly when
/// every quantity folded into [`net_content_hash`] matches, so a hash
/// collision between genuinely different networks degrades to a miss.
fn net_content_eq(a: &Mlp, b: &Mlp) -> bool {
    let bits_eq = |x: &[f64], y: &[f64]| {
        x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
    };
    let mat_eq = |x: &Matrix, y: &Matrix| {
        x.rows() == y.rows() && x.cols() == y.cols() && bits_eq(x.data(), y.data())
    };
    a.input_dim() == b.input_dim()
        && a.depth() == b.depth()
        && a.layers()
            .iter()
            .zip(b.layers())
            .all(|(la, lb)| match (la, lb) {
                (Layer::Dense(x), Layer::Dense(y)) => {
                    activation_key(x.activation()) == activation_key(y.activation())
                        && mat_eq(x.weights(), y.weights())
                        && bits_eq(x.bias(), y.bias())
                }
                (Layer::Conv1d(x), Layer::Conv1d(y)) => {
                    activation_key(x.activation()) == activation_key(y.activation())
                        && x.in_dim() == y.in_dim()
                        && mat_eq(x.kernels(), y.kernels())
                        && bits_eq(x.bias(), y.bias())
                }
                _ => false,
            })
        && bits_eq(a.output_weights(), b.output_weights())
        && a.output_bias().to_bits() == b.output_bias().to_bits()
}

/// One resident checkpoint: the `(net, xs)` witness pair plus the nominal
/// taps and outputs a pass over them produced.
#[derive(Debug)]
struct CacheEntry {
    net: Arc<Mlp>,
    /// [`net_content_hash`] of `net` at insertion time — the network half
    /// of the key (verified via `Arc::ptr_eq` or [`net_content_eq`] on a
    /// candidate hit).
    net_hash: u64,
    hash: u64,
    /// The exact input set the checkpoint was computed over — the bitwise
    /// witness a hit is verified against (hash collisions degrade to
    /// misses).
    xs: Matrix,
    ws: BatchWorkspace,
    nominal_y: Vec<f64>,
    last_used: u64,
    bytes: usize,
}

/// A borrowed view of a cached (or just-computed) nominal checkpoint.
#[derive(Debug)]
pub struct CachedCheckpoint<'a> {
    /// The nominal per-layer taps (read-only by the aliasing rules —
    /// resume suffixes into a separate scratch workspace).
    pub ws: &'a BatchWorkspace,
    /// Nominal outputs `F_neu(x_b)`, row-aligned with the input set.
    pub nominal_y: &'a [f64],
    /// Whether the nominal pass was skipped: served from memory or from
    /// an attached disk tier (`false`: the pass just ran and the entry
    /// was inserted).
    pub hit: bool,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a resident checkpoint (nominal pass skipped).
    pub hits: u64,
    /// Lookups that had to run the nominal pass. A disk-tier hit is *not*
    /// a miss: the pass was skipped, just served from the store instead
    /// of memory.
    pub misses: u64,
    /// Lookups served from the attached [`ArtifactStore`] (nominal pass
    /// skipped, checkpoint rehydrated from disk and promoted to memory).
    /// Always 0 with no store attached.
    pub store_hits: u64,
    /// Entries displaced by LRU pressure.
    pub evictions: u64,
    /// Checkpoints currently resident.
    pub entries: usize,
    /// Approximate resident payload bytes (taps + outputs + witness sets).
    pub bytes: usize,
    /// Layer-rows of nominal recomputation hits skipped: a hit over `B`
    /// rows through an `L`-layer network banks `L · B` (the
    /// [`prefix_rows_saved`](crate::MultiPlanEvaluator::prefix_rows_saved)
    /// accounting, applied to the nominal pass itself).
    pub nominal_rows_saved: u64,
}

/// An LRU cache of nominal batch checkpoints keyed by
/// `(network content hash, input-set content hash)` — two handles to
/// bitwise-equal networks share entries.
///
/// # Example
/// ```
/// use std::sync::Arc;
/// use neurofail_data::rng::rng;
/// use neurofail_inject::{CheckpointCache, CompiledPlan, InjectionPlan};
/// use neurofail_nn::{activation::Activation, BatchWorkspace, MlpBuilder};
/// use neurofail_tensor::{init::Init, Matrix};
///
/// let net = Arc::new(
///     MlpBuilder::new(2)
///         .dense(6, Activation::Sigmoid { k: 1.0 })
///         .init(Init::Xavier)
///         .build(&mut rng(5)),
/// );
/// let plan = CompiledPlan::compile(&InjectionPlan::crash([(0, 1)]), &net, 1.0).unwrap();
/// let xs = Matrix::from_fn(8, 2, |r, c| 0.1 * r as f64 + 0.07 * c as f64);
///
/// let mut cache = CheckpointCache::new(4);
/// let mut scratch = BatchWorkspace::default();
/// let cold = cache.output_error_many(&net, &xs, std::slice::from_ref(&plan), &mut scratch);
/// let warm = cache.output_error_many(&net, &xs, std::slice::from_ref(&plan), &mut scratch);
/// assert_eq!(cold, warm); // bitwise: the hit reuses the same checkpoint
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct CheckpointCache {
    capacity: usize,
    entries: Vec<CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    store_hits: u64,
    evictions: u64,
    nominal_rows_saved: u64,
    /// Optional disk tier: consulted on memory misses, written through on
    /// computes. `None` keeps the cache purely in-memory (the PR 5
    /// behaviour, bit for bit).
    store: Option<ArtifactStore>,
}

impl CheckpointCache {
    /// A cache holding at most `capacity` checkpoints.
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "CheckpointCache: capacity must be >= 1");
        CheckpointCache {
            capacity,
            entries: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            store_hits: 0,
            evictions: 0,
            nominal_rows_saved: 0,
            store: None,
        }
    }

    /// Attach a persistent [`ArtifactStore`] as the disk tier: lookups
    /// become memory → disk → compute, and computed checkpoints are
    /// written through (best effort — an I/O failure publishing never
    /// fails the evaluation). Returns the previously attached store.
    pub fn attach_store(&mut self, store: ArtifactStore) -> Option<ArtifactStore> {
        self.store.replace(store)
    }

    /// Detach and return the disk tier, reverting to memory-only.
    pub fn detach_store(&mut self) -> Option<ArtifactStore> {
        self.store.take()
    }

    /// Counters of the attached disk tier, if any.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// The entry capacity this cache evicts against.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            store_hits: self.store_hits,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.entries.iter().map(|e| e.bytes).sum(),
            nominal_rows_saved: self.nominal_rows_saved,
        }
    }

    /// Drop every resident checkpoint (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Whether a checkpoint for `(net, xs)` is resident in memory right
    /// now — a guaranteed [`CheckpointCache::checkpoint`] hit. Pure read:
    /// no counters move, no recency updates, the disk tier is not
    /// consulted. This is the planner's `cache_resident` feasibility
    /// probe.
    pub fn contains(&self, net: &Arc<Mlp>, xs: &Matrix) -> bool {
        let hash = input_set_hash(xs);
        let net_hash = net_content_hash(net);
        self.entries.iter().any(|e| {
            e.net_hash == net_hash
                && e.hash == hash
                && (Arc::ptr_eq(&e.net, net) || net_content_eq(&e.net, net))
                && e.xs.rows() == xs.rows()
                && e.xs.cols() == xs.cols()
                && e.xs
                    .data()
                    .iter()
                    .zip(xs.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        })
    }

    /// Look up the nominal checkpoint for `(net, xs)`, running the
    /// nominal pass and inserting it on a miss. The returned view is
    /// bitwise identical either way — a hit only changes cost.
    pub fn checkpoint(&mut self, net: &Arc<Mlp>, xs: &Matrix) -> CachedCheckpoint<'_> {
        let hash = input_set_hash(xs);
        let net_hash = net_content_hash(net);
        self.tick += 1;
        let found = self.entries.iter().position(|e| {
            e.net_hash == net_hash
                && e.hash == hash
                && (Arc::ptr_eq(&e.net, net) || net_content_eq(&e.net, net))
                && e.xs.rows() == xs.rows()
                && e.xs.cols() == xs.cols()
                && e.xs
                    .data()
                    .iter()
                    .zip(xs.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        });
        let (idx, hit) = match found {
            Some(idx) => {
                self.hits += 1;
                self.nominal_rows_saved += (net.depth() * xs.rows()) as u64;
                self.entries[idx].last_used = self.tick;
                (idx, true)
            }
            None => {
                // Disk tier, before any entry mutation: a verified store
                // hit skips the nominal pass exactly like a memory hit,
                // and the rehydrated checkpoint is promoted to memory.
                let store_hit = self.store.as_mut().and_then(|s| {
                    let mut ws = BatchWorkspace::default();
                    s.load_checkpoint(net, xs, &mut ws).map(|y| (ws, y))
                });
                let from_store = store_hit.is_some();
                if !from_store {
                    self.misses += 1;
                    // Chaos site: a panic here models the cache dying
                    // mid-insert (before any entry mutation besides the
                    // counters), so a caller that recovers the unwind can
                    // retry cleanly.
                    neurofail_par::failpoint!("cache::insert");
                }
                // Reuse the evicted entry's buffers where possible: the
                // steady state of a search alternating a few input sets
                // through a small cache is then allocation-free.
                let evicted_ws = if self.entries.len() >= self.capacity {
                    self.evictions += 1;
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("capacity >= 1");
                    Some(self.entries.swap_remove(lru).ws)
                } else {
                    None
                };
                let (ws, nominal_y) = match store_hit {
                    Some((ws, y)) => {
                        self.store_hits += 1;
                        self.nominal_rows_saved += (net.depth() * xs.rows()) as u64;
                        (ws, y)
                    }
                    None => {
                        let mut ws = evicted_ws.unwrap_or_default();
                        let y = net.forward_batch(xs, &mut ws);
                        // Write through, best effort: a full disk or torn
                        // publish can cost a future warm start, never the
                        // current evaluation.
                        if let Some(store) = &mut self.store {
                            let _ = store.publish_checkpoint(net, xs, &ws, &y);
                        }
                        (ws, y)
                    }
                };
                let tap_elems: usize = ws.sums.iter().map(|m| m.data().len()).sum::<usize>()
                    + ws.outs.iter().map(|m| m.data().len()).sum::<usize>();
                let bytes =
                    (tap_elems + nominal_y.len() + xs.data().len()) * std::mem::size_of::<f64>();
                self.entries.push(CacheEntry {
                    net: Arc::clone(net),
                    net_hash,
                    hash,
                    xs: xs.clone(),
                    ws,
                    nominal_y,
                    last_used: self.tick,
                    bytes,
                });
                // A disk-tier hit reports as a hit: the nominal pass was
                // skipped, which is the only thing `hit` promises.
                (self.entries.len() - 1, from_store)
            }
        };
        let entry = &self.entries[idx];
        CachedCheckpoint {
            ws: &entry.ws,
            nominal_y: &entry.nominal_y,
            hit,
        }
    }

    /// [`output_error_many`](crate::output_error_many) through the cache:
    /// evaluate a plan family over `xs` with the nominal pass served from
    /// cache when `(net, xs)` was seen before. Returns one disturbance
    /// vector per plan, each **bitwise** equal to the corresponding
    /// per-plan
    /// [`CompiledPlan::output_error_batch`] call; `scratch` absorbs the
    /// suffix recomputation (allocation-free once grown).
    pub fn output_error_many(
        &mut self,
        net: &Arc<Mlp>,
        xs: &Matrix,
        plans: &[CompiledPlan],
        scratch: &mut BatchWorkspace,
    ) -> Vec<Vec<f64>> {
        let ck = self.checkpoint(net, xs);
        plans
            .iter()
            .map(|plan| plan.output_error_checkpointed(net, xs, ck.ws, ck.nominal_y, scratch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::InjectionPlan;
    use neurofail_data::rng::rng;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::builder::MlpBuilder;
    use neurofail_tensor::init::Init;

    fn net(seed: u64) -> Arc<Mlp> {
        Arc::new(
            MlpBuilder::new(2)
                .dense(5, Activation::Sigmoid { k: 1.0 })
                .dense(4, Activation::Tanh { k: 0.8 })
                .init(Init::Xavier)
                .build(&mut rng(seed)),
        )
    }

    fn points(seed: u64, rows: usize) -> Matrix {
        Matrix::from_fn(rows, 2, |r, c| {
            0.13 * (r as f64 + seed as f64) - 0.4 + 0.09 * c as f64
        })
    }

    #[test]
    fn hash_is_content_addressed() {
        let a = points(1, 6);
        let mut b = points(1, 6);
        assert_eq!(input_set_hash(&a), input_set_hash(&b));
        // Flip one ulp: numerically invisible, but content-distinct.
        b.set(3, 1, f64::from_bits(b.get(3, 1).to_bits() ^ 1));
        assert_ne!(input_set_hash(&a), input_set_hash(&b));
        // Sign-of-zero is content: -0.0 and 0.0 hash apart.
        let z = Matrix::zeros(1, 1);
        let nz = Matrix::from_vec(1, 1, vec![-0.0]);
        assert_ne!(input_set_hash(&z), input_set_hash(&nz));
        // Shape is content too (a 2x3 and a 3x2 of equal data differ).
        let flat = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let tall = Matrix::from_vec(3, 2, vec![1.0; 6]);
        assert_ne!(input_set_hash(&flat), input_set_hash(&tall));
    }

    #[test]
    fn hits_are_bitwise_and_counted() {
        let net = net(3);
        let plan = CompiledPlan::compile(&InjectionPlan::crash([(1, 2)]), &net, 1.0).unwrap();
        let xs = points(0, 7);
        let mut cache = CheckpointCache::new(2);
        let mut scratch = BatchWorkspace::default();
        let cold = cache.output_error_many(&net, &xs, std::slice::from_ref(&plan), &mut scratch);
        let warm = cache.output_error_many(&net, &xs, std::slice::from_ref(&plan), &mut scratch);
        for (c, w) in cold[0].iter().zip(&warm[0]) {
            assert_eq!(c.to_bits(), w.to_bits());
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.nominal_rows_saved, (net.depth() * 7) as u64);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn distinct_nets_and_inputs_do_not_collide() {
        let net_a = net(1);
        let net_b = net(2);
        let xs = points(0, 4);
        let mut cache = CheckpointCache::new(4);
        assert!(!cache.checkpoint(&net_a, &xs).hit);
        assert!(!cache.checkpoint(&net_b, &xs).hit, "net content is key");
        assert!(!cache.checkpoint(&net_a, &points(9, 4)).hit);
        assert!(cache.checkpoint(&net_a, &xs).hit);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn lru_eviction_is_value_transparent() {
        let net = net(4);
        let plan = CompiledPlan::compile(&InjectionPlan::crash([(0, 0)]), &net, 1.0).unwrap();
        let (a, b) = (points(0, 5), points(1, 5));
        let mut scratch = BatchWorkspace::default();
        let mut ws = BatchWorkspace::default();
        let direct_a = plan.output_error_batch(&net, &a, &mut ws);
        let direct_b = plan.output_error_batch(&net, &b, &mut ws);
        // Capacity 1: alternating sets evicts on every switch, yet every
        // answer stays bitwise the cold path.
        let mut cache = CheckpointCache::new(1);
        for _ in 0..3 {
            for (xs, direct) in [(&a, &direct_a), (&b, &direct_b)] {
                let got =
                    cache.output_error_many(&net, xs, std::slice::from_ref(&plan), &mut scratch);
                for (g, d) in got[0].iter().zip(direct) {
                    assert_eq!(g.to_bits(), d.to_bits());
                }
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 0, "capacity 1 + alternation = no reuse");
        assert_eq!(stats.evictions, 5);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn content_equal_handles_hit_and_perturbed_parameters_miss() {
        let net_a = net(7);
        let xs = points(2, 5);
        let mut cache = CheckpointCache::new(4);
        assert!(!cache.checkpoint(&net_a, &xs).hit);

        // A distinct Arc over a bitwise-equal clone is the same key: a
        // reloaded/re-cloned network reuses the original's checkpoint.
        let net_clone = Arc::new((*net_a).clone());
        assert!(!Arc::ptr_eq(&net_a, &net_clone));
        assert_eq!(net_content_hash(&net_a), net_content_hash(&net_clone));
        assert!(
            cache.checkpoint(&net_clone, &xs).hit,
            "content-equal handle must hit"
        );

        // One ulp on one weight is a different network: key changes, miss.
        let mut perturbed = (*net_a).clone();
        if let Layer::Dense(d) = &mut perturbed.layers_mut()[0] {
            let w = d.weights().get(0, 0);
            d.weights_mut().set(0, 0, f64::from_bits(w.to_bits() ^ 1));
        } else {
            unreachable!("test net is dense");
        }
        let perturbed = Arc::new(perturbed);
        assert_ne!(net_content_hash(&net_a), net_content_hash(&perturbed));
        assert!(
            !cache.checkpoint(&perturbed, &xs).hit,
            "one-ulp weight flip must miss"
        );
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn net_content_eq_discriminates_structure() {
        let a = net(1);
        assert!(net_content_eq(&a, &a.clone()));
        assert!(!net_content_eq(&a, &net(2)));
        // Activation gain is part of content.
        let mut g = (*a).clone();
        if let Layer::Dense(d) = &mut g.layers_mut()[0] {
            *d = with_activation(d, Activation::Sigmoid { k: 1.5 });
        }
        assert!(!net_content_eq(&a, &g));
    }

    fn with_activation(
        d: &neurofail_nn::layer::DenseLayer,
        a: Activation,
    ) -> neurofail_nn::layer::DenseLayer {
        neurofail_nn::layer::DenseLayer::new(d.weights().clone(), d.bias().to_vec(), a)
    }

    #[test]
    fn empty_input_sets_are_cacheable() {
        let net = net(5);
        let xs = Matrix::zeros(0, 2);
        let mut cache = CheckpointCache::new(2);
        assert!(!cache.checkpoint(&net, &xs).hit);
        let ck = cache.checkpoint(&net, &xs);
        assert!(ck.hit);
        assert!(ck.nominal_y.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = CheckpointCache::new(0);
    }

    #[test]
    fn disk_tier_serves_fresh_caches_without_a_nominal_pass() {
        let dir = std::env::temp_dir().join(format!("nf-cache-tier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let net = net(11);
        let plan = CompiledPlan::compile(&InjectionPlan::crash([(0, 1)]), &net, 1.0).unwrap();
        let xs = points(3, 6);
        let mut scratch = BatchWorkspace::default();

        // Cache A computes once (write-through publishes to the store).
        let mut cache_a = CheckpointCache::new(4);
        cache_a.attach_store(crate::ArtifactStore::open(&dir).unwrap());
        let cold = cache_a.output_error_many(&net, &xs, std::slice::from_ref(&plan), &mut scratch);
        let a = cache_a.stats();
        assert_eq!((a.misses, a.store_hits), (1, 0));
        assert_eq!(cache_a.store_stats().unwrap().inserts, 1);
        drop(cache_a);

        // A fresh cache over the same store: zero nominal passes, bitwise
        // the same values, accounted as a store hit.
        let mut cache_b = CheckpointCache::new(4);
        cache_b.attach_store(crate::ArtifactStore::open(&dir).unwrap());
        let warm = cache_b.output_error_many(&net, &xs, std::slice::from_ref(&plan), &mut scratch);
        for (c, w) in cold[0].iter().zip(&warm[0]) {
            assert_eq!(c.to_bits(), w.to_bits());
        }
        let b = cache_b.stats();
        assert_eq!((b.misses, b.store_hits, b.hits), (0, 1, 0));
        assert_eq!(b.nominal_rows_saved, (net.depth() * 6) as u64);
        // The disk hit was promoted: the next lookup is a memory hit.
        assert!(cache_b.checkpoint(&net, &xs).hit);
        assert_eq!(cache_b.stats().hits, 1);
        // Detaching reverts to memory-only.
        assert!(cache_b.detach_store().is_some());
        assert!(cache_b.store_stats().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! # neurofail-inject
//!
//! The fault-injection engine of the `neurofail` workspace — the
//! experimental counterpart of `neurofail-core`'s analytic bounds:
//!
//! * [`plan`] — serialisable injection plans: crash / Byzantine / stuck-at
//!   **neurons** (the paper's Definition 2) and crash / Byzantine
//!   **synapses** (Section II-A, Lemma 2), all under the capacity clamp of
//!   Assumption 1.
//! * [`executor`] — plans compiled against a network and applied through
//!   the forward pass's `Tap` hooks; measures `|F_neu(X) − F_fail(X)|`,
//!   the left side of Theorem 2's inequality.
//! * [`sampler`] / [`campaign`] — Monte-Carlo campaigns over random
//!   `(plan, input)` pairs, parallel and bit-reproducible for any thread
//!   count.
//! * [`exhaustive`] — the "discouraging combinatorial explosion" itself
//!   (full subset enumeration), kept so experiments can price it against
//!   the O(L) bound.
//! * [`adversary`] / [`input_search`] — the tightness playbook: kill the
//!   highest same-sign-weight neurons, then search the input cube for the
//!   disturbance maximiser (Theorem 1's equality cases).
//! * [`multi`] — the multi-plan **suffix engine**: one shared nominal pass
//!   per input set, each plan's faulty pass resumed at its
//!   [`CompiledPlan::first_faulty_layer`] — bitwise equal to per-plan
//!   evaluation at a fraction of the flops.
//! * [`registry`] — long-lived sets of `(network, compiled plan)` pairs
//!   addressed by dense [`registry::PlanId`]s, the plan-sharding substrate
//!   of the serving engine (`neurofail-serve`).
//! * [`cache`] / [`streaming`] — the **input-incremental engine**: a
//!   content-addressed LRU cache of nominal checkpoints
//!   ([`cache::CheckpointCache`]) so repeated evaluations over the same
//!   input set skip even the one nominal pass, and a
//!   [`streaming::StreamingEvaluator`] that certifies a fixed plan family
//!   against inputs arriving in chunks — new work proportional to
//!   (new inputs × suffix layers), never (all inputs × all layers).
//! * [`ir`] / [`planner`] — the **admission pipeline** (validate →
//!   normalize → compile → cache: typed rejection, dedup of plans equal
//!   up to fault value onto one compiled body, warm-started admission
//!   from the [`store`]) and the cost-model [`planner::Planner`] that
//!   picks among the five bitwise-equivalent engines per request mix
//!   (ARCHITECTURE contract 14: planner choice is bitwise invisible).

#![warn(missing_docs)]

pub mod adversary;
pub mod cache;
pub mod campaign;
pub mod executor;
pub mod exhaustive;
pub mod input_search;
pub mod ir;
pub mod multi;
pub mod plan;
pub mod planner;
pub mod registry;
pub mod sampler;
pub mod store;
pub mod streaming;

pub use cache::{input_set_hash, net_content_hash, CacheStats, CachedCheckpoint, CheckpointCache};
pub use campaign::{
    merge_trials, run_campaign, run_campaign_trials, CampaignConfig, CampaignResult, TrialKind,
    TrialResult, WorstCase,
};
pub use executor::{CompiledPlan, PlanError};
pub use ir::{nets_content_equal, Admission, AdmissionStats, PlanIr};
pub use multi::{output_error_many, MultiPlanEvaluator};
/// Compute-backend selection, re-exported so injection campaigns can pin
/// or scope the kernel backend without depending on the tensor crate
/// directly (see [`neurofail_tensor::backend`]).
pub use neurofail_tensor::backend::{
    active_kind, detected_features, force_backend, supported_kinds, with_backend, BackendKind,
};
pub use plan::{ByzantineStrategy, InjectionPlan, NeuronFault, SynapseFault};
pub use planner::{Engine, Planner, PlannerStats, RequestMix};
pub use registry::{PlanId, PlanRegistry, RegisteredPlan};
pub use sampler::FaultSpec;
pub use store::{ArtifactStore, StoreStats};
pub use streaming::{StreamStats, StreamingEvaluator};

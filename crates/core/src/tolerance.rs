//! Search over admissible fault distributions.
//!
//! Theorem 3 certifies a *given* distribution `(f_l)`; designers usually ask
//! the inverse question: *how many* failures fit inside the slack `ε − ε'`?
//! This module provides:
//!
//! * a closed-form per-layer maximum ([`crate::byzantine::max_faults_in_layer`]),
//! * a greedy multi-layer packing ([`greedy_max_faults`]),
//! * exact exhaustive search with a budgeted state space
//!   ([`exact_max_total_faults`]),
//! * uniform-distribution search ([`max_uniform_faults`]).
//!
//! A subtlety worth stating: `Fep` is **not monotone** in `(f_l)`. Raising
//! `f_{l'}` shrinks the `(N_{l'} − f_{l'})` relay factor of *earlier* layers'
//! terms, so the admissible set is not downward closed and greedy results
//! are maximal, not necessarily maximum. The exact search exists precisely
//! to quantify that gap (it is tiny in practice — see EXPERIMENTS.md E6).
//!
//! All searches here run on the **batched** Fep path
//! ([`crate::fep::increment_feps`] / [`crate::fep::fep_for_into`]): each
//! step evaluates its whole candidate frontier through one reused scratch
//! buffer instead of allocating per candidate. Values are bitwise identical
//! to per-candidate [`crate::fep::fep_for`] calls, so search results are unchanged —
//! only the evaluation rate differs (see the `tolerance_search` bench).

use serde::{Deserialize, Serialize};

use crate::budget::EpsilonBudget;
use crate::fep::{fep_for_into, increment_feps};
use crate::profile::{FaultClass, NetworkProfile};

/// Greedily pack faults one at a time: at each step, add the fault (to any
/// layer) that minimises the resulting Fep, as long as the result stays
/// within the slack. Returns the final distribution (maximal: no single
/// additional fault fits). Each step's candidate frontier is one batched
/// [`increment_feps`] evaluation.
pub fn greedy_max_faults(
    profile: &NetworkProfile,
    budget: EpsilonBudget,
    class: FaultClass,
) -> Vec<usize> {
    let l = profile.depth();
    let slack = budget.slack();
    let mut faults = vec![0usize; l];
    let mut scratch = Vec::new();
    let mut frontier = Vec::new();
    loop {
        increment_feps(profile, &mut faults, class, &mut scratch, &mut frontier);
        let mut best: Option<(usize, f64)> = None;
        for (i, f) in frontier.iter().enumerate() {
            let Some(f) = *f else { continue };
            if f <= slack {
                match best {
                    Some((_, bf)) if bf <= f => {}
                    _ => best = Some((i, f)),
                }
            }
        }
        match best {
            Some((i, _)) => faults[i] += 1,
            None => return faults,
        }
    }
}

/// Whether no single extra fault keeps `(f_l)` admissible (local/Pareto
/// maximality on the fault lattice). One batched frontier evaluation.
pub fn is_maximal(
    profile: &NetworkProfile,
    faults: &[usize],
    budget: EpsilonBudget,
    class: FaultClass,
) -> bool {
    let slack = budget.slack();
    let mut scratch = Vec::new();
    if fep_for_into(profile, faults, class, &mut scratch) > slack {
        return false;
    }
    let mut work = faults.to_vec();
    let mut frontier = Vec::new();
    increment_feps(profile, &mut work, class, &mut scratch, &mut frontier);
    !frontier.iter().flatten().any(|&f| f <= slack)
}

/// Result of an exact search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExactSearch {
    /// A distribution attaining the maximum total.
    pub witness: Vec<usize>,
    /// The maximum total `Σ f_l` over admissible distributions.
    pub total: usize,
    /// Number of lattice points evaluated.
    pub evaluated: u64,
}

/// Exhaustively maximise `Σ f_l` subject to `Fep ≤ ε − ε'`.
///
/// The state space is `Π (N_l + 1)`; returns `None` when it exceeds
/// `state_limit` (the caller should fall back to [`greedy_max_faults`]).
/// This is the "discouraging combinatorial explosion" the paper's analytic
/// bound exists to avoid — kept here deliberately so experiment E14 can
/// measure the explosion against the O(L) bound evaluation.
pub fn exact_max_total_faults(
    profile: &NetworkProfile,
    budget: EpsilonBudget,
    class: FaultClass,
    state_limit: u64,
) -> Option<ExactSearch> {
    let sizes: Vec<u64> = profile.layers.iter().map(|l| l.n as u64 + 1).collect();
    let space: u64 = sizes.iter().try_fold(1u64, |a, &s| a.checked_mul(s))?;
    if space > state_limit {
        return None;
    }
    let slack = budget.slack();
    let l = profile.depth();
    let mut faults = vec![0usize; l];
    let mut scratch = Vec::new();
    let mut best = ExactSearch {
        witness: faults.clone(),
        total: 0,
        evaluated: 0,
    };
    loop {
        best.evaluated += 1;
        let total: usize = faults.iter().sum();
        if total > best.total && fep_for_into(profile, &faults, class, &mut scratch) <= slack {
            best.total = total;
            best.witness = faults.clone();
        }
        // Odometer increment over the mixed-radix fault lattice.
        let mut i = 0;
        loop {
            if i == l {
                return Some(best);
            }
            if faults[i] < profile.layers[i].n {
                faults[i] += 1;
                break;
            }
            faults[i] = 0;
            i += 1;
        }
    }
}

/// The largest `f` such that the uniform distribution `(f, f, …, f)` is
/// admissible. Scans all feasible `f` (Fep is not monotone in `f`, so the
/// result is the max admissible value, not a binary-search crossover).
pub fn max_uniform_faults(
    profile: &NetworkProfile,
    budget: EpsilonBudget,
    class: FaultClass,
) -> usize {
    let n_min = profile.layers.iter().map(|l| l.n).min().unwrap_or(0);
    let slack = budget.slack();
    let l = profile.depth();
    let mut scratch = Vec::new();
    let mut candidate = vec![0usize; l];
    (0..=n_min)
        .rev()
        .find(|&f| {
            candidate.fill(f);
            fep_for_into(profile, &candidate, class, &mut scratch) <= slack
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fep::fep_for;

    fn budget(e: f64, ep: f64) -> EpsilonBudget {
        EpsilonBudget::new(e, ep).unwrap()
    }

    #[test]
    fn greedy_matches_closed_form_on_single_layer() {
        // L=1: Fep = C·f·w_out; slack 0.4, per-fault 0.01 → 40 faults.
        let p = NetworkProfile::uniform(1, 100, 0.01, 1.0, 1.0);
        let g = greedy_max_faults(&p, budget(0.5, 0.1), FaultClass::Byzantine);
        assert_eq!(g, vec![40]);
        assert!(is_maximal(&p, &g, budget(0.5, 0.1), FaultClass::Byzantine));
    }

    #[test]
    fn greedy_is_admissible_and_maximal() {
        let p = NetworkProfile::uniform(3, 12, 0.2, 1.0, 1.0);
        let b = budget(0.6, 0.2);
        let g = greedy_max_faults(&p, b, FaultClass::Byzantine);
        assert!(crate::byzantine::tolerates(&p, &g, b));
        assert!(is_maximal(&p, &g, b, FaultClass::Byzantine));
    }

    #[test]
    fn exact_search_dominates_greedy() {
        let p = NetworkProfile::uniform(2, 6, 0.15, 1.2, 1.0);
        let b = budget(0.5, 0.1);
        let g = greedy_max_faults(&p, b, FaultClass::Byzantine);
        let e = exact_max_total_faults(&p, b, FaultClass::Byzantine, 1 << 20).unwrap();
        assert!(e.total >= g.iter().sum::<usize>());
        assert!(crate::byzantine::tolerates(&p, &e.witness, b));
        assert_eq!(e.evaluated, 49); // (6+1)^2 lattice points
    }

    #[test]
    fn exact_search_respects_state_limit() {
        let p = NetworkProfile::uniform(4, 100, 0.1, 1.0, 1.0);
        assert!(
            exact_max_total_faults(&p, budget(0.5, 0.1), FaultClass::Byzantine, 1000).is_none()
        );
    }

    #[test]
    fn uniform_faults_consistent_with_tolerance() {
        let p = NetworkProfile::uniform(3, 10, 0.1, 1.0, 1.0);
        let b = budget(0.4, 0.1);
        let f = max_uniform_faults(&p, b, FaultClass::Byzantine);
        assert!(crate::byzantine::tolerates(&p, &[f; 3], b));
        // Check maximality among uniform distributions.
        if f < 10 {
            let all_higher_inadmissible =
                ((f + 1)..=10).all(|g| !crate::byzantine::tolerates(&p, &[g; 3], b));
            assert!(all_higher_inadmissible);
        }
    }

    #[test]
    fn zero_slack_packs_nothing() {
        let p = NetworkProfile::uniform(2, 5, 0.3, 1.0, 1.0);
        let b = budget(0.1, 0.1);
        assert_eq!(greedy_max_faults(&p, b, FaultClass::Byzantine), vec![0, 0]);
        assert_eq!(max_uniform_faults(&p, b, FaultClass::Byzantine), 0);
    }

    #[test]
    fn unbounded_capacity_packs_nothing_byzantine() {
        let mut p = NetworkProfile::uniform(2, 5, 0.3, 1.0, 1.0);
        p.capacity = f64::INFINITY;
        let b = budget(1.0, 0.1);
        assert_eq!(greedy_max_faults(&p, b, FaultClass::Byzantine), vec![0, 0]);
        // Crash packing is unaffected (Lemma 1 is a Byzantine statement).
        assert!(
            greedy_max_faults(&p, b, FaultClass::Crash)
                .iter()
                .sum::<usize>()
                > 0
        );
    }

    #[test]
    fn nonmonotonicity_exists_on_the_lattice() {
        // Demonstrate the documented subtlety: there is a profile and a
        // distribution where *adding* a fault lowers Fep (killed relays).
        let p = NetworkProfile::uniform(2, 4, 1.0, 1.0, 1.0);
        // Fault at layer 1 propagates via (N2 − f2) relays.
        let base = fep_for(&p, &[2, 0], FaultClass::Byzantine);
        let more = fep_for(&p, &[2, 4], FaultClass::Byzantine);
        // (2,0): 2·(4)·1·1·1 = 8. (2,4): 2·0·… + 4·1 = 4 < 8.
        assert!(more < base, "{more} !< {base}");
    }
}

//! Theorem 5: accuracy degradation under reduced per-neuron precision.
//!
//! Section V-A explains the memory/accuracy trade-off observed by Proteus
//! ref. 31: implementing each neuron of layer `l` with an error at most `λ_l`
//! (e.g. from quantised arithmetic) degrades the output by at most
//!
//! ```text
//! ‖F_neu − F_λ‖ ≤ Σ_{l=1..L} K^(L−l) · λ_l · Π_{l'=l..L} N_{l'} · w_m^(l'+1)
//! ```
//!
//! Unlike Theorem 2's failure bound, *every* neuron of layer `l` is affected
//! (hence the full `N_l` — including the erroneous layer itself — in the
//! product), and the per-value magnitude is the layer-specific `λ_l` rather
//! than the uniform capacity `C`.
//!
//! The theorem statement places `λ_l` on the neuron's *output*
//! ([`ErrorLocus::PostActivation`]); the paper's inductive proof narrates a
//! variant where the error enters the *received sum* and is squashed once
//! more (an extra `K_l` factor) — exposed as [`ErrorLocus::PreActivation`].
//! We default to the statement.

use serde::{Deserialize, Serialize};

use crate::profile::NetworkProfile;

/// Where the per-neuron implementation error `λ_l` enters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorLocus {
    /// On the neuron's output `y_j` (Theorem 5 as printed). Quantising
    /// stored activations matches this locus.
    PostActivation,
    /// On the received sum `s_j`, squashed by ϕ (the proof's narration —
    /// one extra `K_l`). Quantising the accumulator matches this locus.
    PreActivation,
}

/// Theorem 5's bound for per-layer error magnitudes `lambdas[i] = λ_{i+1}`.
///
/// # Panics
/// If `lambdas.len() != L` or any `λ_l < 0`.
pub fn precision_bound(profile: &NetworkProfile, lambdas: &[f64], locus: ErrorLocus) -> f64 {
    let l = profile.depth();
    assert_eq!(
        lambdas.len(),
        l,
        "need one lambda per layer ({l}), got {}",
        lambdas.len()
    );
    assert!(
        lambdas.iter().all(|&x| x >= 0.0),
        "lambdas must be non-negative"
    );
    // suffix[i] = Π_{j=i..L-1} n_j · (k_{j+1}…) · w_(j+2) … — concretely:
    // contribution factor for an output-level error at layer i's neurons:
    // every neuron of layer j relays through w into layer j+1 with its K.
    // factor(i) = n_i · w_(i+2)^m · Π_{j=i+1..L-1} [k_j · n_j · w_(j+2)^m]
    // where w_(j+2)^m is w_in of code layer j+1, or w_out for j = L-1.
    // Implemented as a right-to-left recurrence:
    //   acc(L-1) = n_{L-1} · w_out
    //   acc(i)   = n_i · w_in(i+1) · k(i+1) · acc(i+1) / … —
    // easier: factor(i) = n_i · w_next(i) · Π_{j=i+1..L-1} k_j n_j w_next(j)
    // with w_next(j) = w_in(j+1) for j < L-1, w_out for j = L-1.
    let w_next = |j: usize| -> f64 {
        if j + 1 < l {
            profile.layers[j + 1].w_in
        } else {
            profile.w_out
        }
    };
    let mut total = 0.0;
    // Right-to-left accumulation of Π_{j=i+1..L-1} k_j n_j w_next(j).
    let mut tail = 1.0;
    for i in (0..l).rev() {
        let lay = &profile.layers[i];
        let mut term = lambdas[i] * lay.n as f64 * w_next(i) * tail;
        if locus == ErrorLocus::PreActivation {
            term *= lay.k;
        }
        total += term;
        tail *= lay.k * lay.n as f64 * w_next(i);
    }
    total
}

/// Uniform-λ convenience: all layers share the same per-neuron error.
pub fn precision_bound_uniform(profile: &NetworkProfile, lambda: f64, locus: ErrorLocus) -> f64 {
    precision_bound(profile, &vec![lambda; profile.depth()], locus)
}

/// Invert Theorem 5 for hardware sizing: the largest uniform per-neuron
/// error `λ` keeping the output degradation within `target` (0 if even
/// λ = 0 misses, which cannot happen: the bound is linear in λ).
pub fn max_uniform_lambda(profile: &NetworkProfile, target: f64, locus: ErrorLocus) -> f64 {
    assert!(target >= 0.0, "target degradation must be non-negative");
    let per_unit = precision_bound_uniform(profile, 1.0, locus);
    if per_unit == 0.0 {
        f64::INFINITY
    } else {
        target / per_unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_layer_closed_form() {
        // L=1: bound = λ·N1·w^(2) (the proof's base case).
        let p = NetworkProfile::uniform(1, 8, 0.25, 2.0, 1.0);
        let b = precision_bound(&p, &[0.1], ErrorLocus::PostActivation);
        assert!((b - 0.1 * 8.0 * 0.25).abs() < 1e-12);
        // Pre-activation adds one K = 2 factor.
        let bp = precision_bound(&p, &[0.1], ErrorLocus::PreActivation);
        assert!((bp - 2.0 * b).abs() < 1e-12);
    }

    #[test]
    fn two_layer_closed_form() {
        // L=2 (paper formula):
        //   l=1: K^(1)·λ1·N1·w^(2)·N2·w^(3)
        //   l=2: K^(0)·λ2·N2·w^(3)
        let mut p = NetworkProfile::uniform(2, 4, 0.5, 3.0, 1.0);
        p.layers[1].w_in = 0.5; // w^(2)
        p.w_out = 0.2; // w^(3)
        let l1 = 0.01;
        let l2 = 0.02;
        let expect = 3.0 * l1 * 4.0 * 0.5 * 4.0 * 0.2 + l2 * 4.0 * 0.2;
        let got = precision_bound(&p, &[l1, l2], ErrorLocus::PostActivation);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn zero_lambda_zero_bound() {
        let p = NetworkProfile::uniform(3, 16, 0.5, 1.0, 1.0);
        assert_eq!(
            precision_bound_uniform(&p, 0.0, ErrorLocus::PostActivation),
            0.0
        );
    }

    #[test]
    fn max_uniform_lambda_inverts_bound() {
        let p = NetworkProfile::uniform(2, 8, 0.3, 1.5, 1.0);
        let target = 0.05;
        let lam = max_uniform_lambda(&p, target, ErrorLocus::PostActivation);
        let achieved = precision_bound_uniform(&p, lam, ErrorLocus::PostActivation);
        assert!((achieved - target).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one lambda per layer")]
    fn wrong_lambda_count_panics() {
        let p = NetworkProfile::uniform(2, 4, 0.5, 1.0, 1.0);
        let _ = precision_bound(&p, &[0.1], ErrorLocus::PostActivation);
    }

    proptest! {
        /// The bound is linear in a uniform λ.
        #[test]
        fn linear_in_lambda(
            l in 1usize..5,
            n in 1usize..20,
            lam in 0.0f64..0.5,
            scale in 1.0f64..10.0,
        ) {
            let p = NetworkProfile::uniform(l, n, 0.4, 1.2, 1.0);
            let b1 = precision_bound_uniform(&p, lam, ErrorLocus::PostActivation);
            let b2 = precision_bound_uniform(&p, lam * scale, ErrorLocus::PostActivation);
            prop_assert!((b2 - scale * b1).abs() <= 1e-9 * b2.abs().max(1e-12));
        }

        /// Pre-activation locus dominates post-activation iff K ≥ 1
        /// (errors get amplified by the extra squashing when K > 1).
        #[test]
        fn locus_ordering(k in 0.1f64..4.0, n in 1usize..10) {
            let p = NetworkProfile::uniform(2, n, 0.5, k, 1.0);
            let post = precision_bound_uniform(&p, 0.1, ErrorLocus::PostActivation);
            let pre = precision_bound_uniform(&p, 0.1, ErrorLocus::PreActivation);
            if k >= 1.0 {
                prop_assert!(pre >= post);
            } else {
                prop_assert!(pre <= post);
            }
        }

        /// Degradation grows with network size (more neurons carry error).
        #[test]
        fn monotone_in_width(n in 1usize..20) {
            let small = NetworkProfile::uniform(2, n, 0.5, 1.0, 1.0);
            let big = NetworkProfile::uniform(2, n + 1, 0.5, 1.0, 1.0);
            let bs = precision_bound_uniform(&small, 0.1, ErrorLocus::PostActivation);
            let bb = precision_bound_uniform(&big, 0.1, ErrorLocus::PostActivation);
            prop_assert!(bb > bs);
        }
    }
}

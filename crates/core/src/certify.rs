//! One-call robustness certification.
//!
//! [`certify`] bundles every bound in the crate into a single serialisable
//! report for a `(profile, ε, ε')` triple: per-layer and packed crash /
//! Byzantine tolerances (Theorems 1 & 3), synapse tolerances (Theorem 4,
//! Lemma-2 form), the boosting quorum table (Corollary 2), and the maximum
//! uniform per-neuron implementation error (Theorem 5). This is the API a
//! deployment pipeline would call before shipping a trained network to
//! unreliable hardware.

use serde::{Deserialize, Serialize};

use crate::boosting::QuorumTable;
use crate::budget::EpsilonBudget;
use crate::byzantine::max_faults_in_layer;
use crate::fep::fep_for;
use crate::precision::{max_uniform_lambda, ErrorLocus};
use crate::profile::{FaultClass, NetworkProfile};
use crate::synapse::{synapse_fep, SynapseBoundForm};
use crate::tolerance::greedy_max_faults;

/// The full certificate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// Accuracy demanded of the deployed network (Definition 1's ε).
    pub eps: f64,
    /// Accuracy achieved by training (ε').
    pub eps_prime: f64,
    /// The slack `ε − ε'`.
    pub slack: f64,
    /// The synaptic capacity `C` (`+inf` = Assumption 1 absent).
    pub capacity: f64,
    /// Max crashes tolerated in layer `l` alone, per layer.
    pub crash_per_layer: Vec<usize>,
    /// A greedy-maximal simultaneous crash distribution.
    pub crash_packed: Vec<usize>,
    /// Max Byzantine neurons tolerated in layer `l` alone (all zeros when
    /// the capacity is unbounded — Lemma 1).
    pub byzantine_per_layer: Vec<usize>,
    /// A greedy-maximal simultaneous Byzantine distribution.
    pub byzantine_packed: Vec<usize>,
    /// Max Byzantine synapses tolerated per synapse layer `1..=L+1` alone
    /// (Lemma-2 bound form).
    pub synapse_per_layer: Vec<usize>,
    /// Corollary 2 quorum table derived from `crash_packed`.
    pub quorums: QuorumTable,
    /// Max uniform per-neuron output error (Theorem 5, post-activation)
    /// keeping the network within ε.
    pub max_lambda: f64,
}

/// Build the certificate for a profile and budget.
pub fn certify(profile: &NetworkProfile, budget: EpsilonBudget) -> Certificate {
    let l = profile.depth();
    let per_layer = |class: FaultClass| -> Vec<usize> {
        (1..=l)
            .map(|layer| max_faults_in_layer(profile, layer, budget, class))
            .collect()
    };
    let synapse_per_layer = (0..=l)
        .map(|i| {
            let mut single = vec![0usize; l + 1];
            single[i] = 1;
            let per_fault = synapse_fep(profile, &single, SynapseBoundForm::Lemma2);
            if per_fault == 0.0 {
                usize::MAX
            } else if per_fault.is_infinite() {
                0
            } else {
                (budget.slack() / per_fault).floor() as usize
            }
        })
        .collect();
    let crash_packed = greedy_max_faults(profile, budget, FaultClass::Crash);
    Certificate {
        eps: budget.eps(),
        eps_prime: budget.eps_prime(),
        slack: budget.slack(),
        capacity: profile.capacity,
        crash_per_layer: per_layer(FaultClass::Crash),
        byzantine_per_layer: per_layer(FaultClass::Byzantine),
        byzantine_packed: greedy_max_faults(profile, budget, FaultClass::Byzantine),
        quorums: crate::boosting::quorums_for(profile, &crash_packed, budget),
        crash_packed,
        synapse_per_layer,
        max_lambda: max_uniform_lambda(profile, budget.slack(), ErrorLocus::PostActivation),
    }
}

impl Certificate {
    /// Total crashes in the packed distribution.
    pub fn crash_total(&self) -> usize {
        self.crash_packed.iter().sum()
    }

    /// Total Byzantine neurons in the packed distribution.
    pub fn byzantine_total(&self) -> usize {
        self.byzantine_packed.iter().sum()
    }

    /// Residual slack after the packed crash distribution.
    pub fn crash_residual(&self, profile: &NetworkProfile) -> f64 {
        self.slack - fep_for(profile, &self.crash_packed, FaultClass::Crash)
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Robustness certificate (eps = {:.4}, eps' = {:.4}, slack = {:.4}, C = {})",
            self.eps, self.eps_prime, self.slack, self.capacity
        )?;
        writeln!(
            f,
            "  crash     per-layer max: {:?}  packed: {:?} (total {})",
            self.crash_per_layer,
            self.crash_packed,
            self.crash_total()
        )?;
        writeln!(
            f,
            "  byzantine per-layer max: {:?}  packed: {:?} (total {})",
            self.byzantine_per_layer,
            self.byzantine_packed,
            self.byzantine_total()
        )?;
        writeln!(f, "  synapses  per-layer max: {:?}", self.synapse_per_layer)?;
        writeln!(
            f,
            "  boosting quorums: {:?} (skip {:?})",
            self.quorums.quorums, self.quorums.faults
        )?;
        writeln!(
            f,
            "  max uniform per-neuron error (Thm 5): {:.3e}",
            self.max_lambda
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Capacity;

    fn budget(e: f64, ep: f64) -> EpsilonBudget {
        EpsilonBudget::new(e, ep).unwrap()
    }

    #[test]
    fn certificate_is_internally_consistent() {
        let p = NetworkProfile::uniform(3, 12, 0.05, 1.0, 1.0);
        let b = budget(0.5, 0.1);
        let cert = certify(&p, b);
        assert_eq!(cert.crash_per_layer.len(), 3);
        assert_eq!(cert.synapse_per_layer.len(), 4);
        // Packed distributions are admissible.
        assert!(crate::crash::crash_tolerates(&p, &cert.crash_packed, b));
        assert!(crate::byzantine::tolerates(&p, &cert.byzantine_packed, b));
        assert!(cert.crash_residual(&p) >= 0.0);
        // Packed per-layer never exceeds the per-layer-alone maximum... not
        // guaranteed in general (non-monotone lattice), but quorums must
        // complement the packed faults exactly.
        for ((q, f), l) in cert
            .quorums
            .quorums
            .iter()
            .zip(&cert.quorums.faults)
            .zip(&p.layers)
        {
            assert_eq!(q + f, l.n);
        }
        // λ inverts to the slack.
        let back = crate::precision::precision_bound_uniform(
            &p,
            cert.max_lambda,
            ErrorLocus::PostActivation,
        );
        assert!((back - cert.slack).abs() < 1e-12);
    }

    #[test]
    fn unbounded_capacity_zeroes_byzantine_only() {
        let p = {
            let mut p = NetworkProfile::uniform(2, 8, 0.05, 1.0, 1.0);
            p.capacity = f64::INFINITY;
            p
        };
        let cert = certify(&p, budget(0.5, 0.1));
        assert!(cert.byzantine_per_layer.iter().all(|&f| f == 0));
        assert_eq!(cert.byzantine_total(), 0);
        assert!(cert.crash_total() > 0);
        // Output synapse layer also tolerates none.
        assert!(cert.synapse_per_layer.iter().all(|&f| f == 0));
    }

    #[test]
    fn display_and_serde() {
        let p = NetworkProfile::from_mlp(
            &neurofail_nn::builder::MlpBuilder::new(3)
                .dense(6, neurofail_nn::Activation::Sigmoid { k: 1.0 })
                .bias(false)
                .build(&mut {
                    use rand::SeedableRng;
                    rand::rngs::SmallRng::seed_from_u64(4)
                }),
            Capacity::Bounded(1.0),
        )
        .unwrap();
        // Exactly-representable budget so the JSON round-trip is bitwise.
        let cert = certify(&p, budget(0.5, 0.25));
        let text = format!("{cert}");
        assert!(text.contains("Robustness certificate"));
        assert!(text.contains("boosting quorums"));
        let json = serde_json::to_string_pretty(&cert).unwrap();
        let back: Certificate = serde_json::from_str(&json).unwrap();
        assert_eq!(cert, back);
    }
}

//! Over-provisioning: Section II-C and Corollary 1.
//!
//! The paper frames robustness as a *budget* bought by over-provisioning:
//! training to ε' < ε leaves a slack `ε − ε'` that absorbs propagated
//! failure error. Two quantitative handles:
//!
//! * Barron's bound (cited in II-C): `N_min(ε) = Θ(1/ε)` — approximating to
//!   accuracy ε needs on the order of `1/ε` neurons, and `N` neurons buy an
//!   error on the order of `1/N`.
//! * Corollary 1 (constructive): for any fault target `(f_l)` and any
//!   `ε' < ε`, a network exists that ε'-approximates the target *and*
//!   tolerates `(f_l)` within ε. The construction here widens each layer by
//!   a factor `m` while scaling weights by `1/m` (same represented function
//!   to first order; every Fep term shrinks like `1/m`).

use crate::budget::EpsilonBudget;
use crate::fep::fep_for;
use crate::profile::{FaultClass, NetworkProfile};

/// Barron-style estimate of the minimal neuron count for accuracy `eps`:
/// `ceil(c / eps)`. The constant `c` is target-dependent (it is the Barron
/// norm of the target function); `c = 1` gives the paper's Θ(1/ε) shape.
///
/// # Panics
/// If `eps <= 0` or `c <= 0`.
pub fn nmin_estimate(eps: f64, c: f64) -> usize {
    assert!(eps > 0.0 && c > 0.0, "nmin_estimate: need positive inputs");
    (c / eps).ceil() as usize
}

/// The approximation error `Θ(1/N)` bought by `N` neurons (inverse view).
///
/// # Panics
/// If `n == 0` or `c <= 0`.
pub fn error_at_size(n: usize, c: f64) -> f64 {
    assert!(n > 0 && c > 0.0, "error_at_size: need positive inputs");
    c / n as f64
}

/// Corollary 1, constructively: the smallest widening factor `m ≤ max_m`
/// such that [`NetworkProfile::widened`]`(m)` tolerates `faults` within the
/// budget, or `None` if even `max_m` does not suffice.
///
/// Fep under widening decays like `1/m`, so a factor always exists —
/// `max_m` only bounds the search.
pub fn overprovision_factor(
    profile: &NetworkProfile,
    faults: &[usize],
    budget: EpsilonBudget,
    class: FaultClass,
    max_m: usize,
) -> Option<usize> {
    let slack = budget.slack();
    (1..=max_m).find(|&m| fep_for(&profile.widened(m), faults, class) <= slack)
}

/// The widened profile witnessing Corollary 1 (if a factor exists).
pub fn corollary1_witness(
    profile: &NetworkProfile,
    faults: &[usize],
    budget: EpsilonBudget,
    class: FaultClass,
    max_m: usize,
) -> Option<NetworkProfile> {
    overprovision_factor(profile, faults, budget, class, max_m).map(|m| profile.widened(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn budget(e: f64, ep: f64) -> EpsilonBudget {
        EpsilonBudget::new(e, ep).unwrap()
    }

    #[test]
    fn nmin_shapes() {
        assert_eq!(nmin_estimate(0.1, 1.0), 10);
        assert_eq!(nmin_estimate(0.01, 1.0), 100);
        assert_eq!(nmin_estimate(0.01, 2.5), 250);
        assert!((error_at_size(100, 1.0) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn nmin_and_error_are_inverse() {
        let eps = 0.02;
        let n = nmin_estimate(eps, 1.0);
        assert!(error_at_size(n, 1.0) <= eps);
    }

    #[test]
    fn factor_one_when_already_tolerant() {
        let p = NetworkProfile::uniform(1, 100, 0.001, 1.0, 1.0);
        let m = overprovision_factor(&p, &[5], budget(0.5, 0.1), FaultClass::Byzantine, 100);
        assert_eq!(m, Some(1));
    }

    #[test]
    fn widening_buys_tolerance() {
        // A profile too fragile for (3, 1) faults at m = 1...
        let p = NetworkProfile::uniform(2, 10, 0.5, 1.0, 1.0);
        let b = budget(0.2, 0.1);
        assert!(!crate::byzantine::tolerates(&p, &[3, 1], b));
        // ...gains it at some finite widening factor.
        let m = overprovision_factor(&p, &[3, 1], b, FaultClass::Byzantine, 10_000).unwrap();
        assert!(m > 1);
        let wide = corollary1_witness(&p, &[3, 1], b, FaultClass::Byzantine, 10_000).unwrap();
        assert!(crate::byzantine::tolerates(&wide, &[3, 1], b));
    }

    #[test]
    fn insufficient_max_m_returns_none() {
        let p = NetworkProfile::uniform(2, 10, 0.5, 1.0, 1.0);
        let b = budget(0.2, 0.1);
        assert_eq!(
            overprovision_factor(&p, &[3, 1], b, FaultClass::Byzantine, 2),
            None
        );
    }

    proptest! {
        /// Corollary 1 always terminates with a finite factor for positive
        /// slack (1/m decay).
        #[test]
        fn factor_exists_for_positive_slack(
            n in 2usize..10,
            f in 1usize..10,
            w in 0.1f64..1.0,
        ) {
            let f = f.min(n);
            let p = NetworkProfile::uniform(2, n, w, 1.0, 1.0);
            let b = budget(0.3, 0.1);
            let m = overprovision_factor(&p, &[f, f], b, FaultClass::Byzantine, 1_000_000);
            prop_assert!(m.is_some());
        }
    }
}

//! Theorem 1: the tight crash-failure bound for single-layer networks.
//!
//! For a single-layer neural ε'-approximation with output weights bounded by
//! `w_m`, any `N_fail ≤ (ε − ε') / w_m` crashed neurons are tolerated, and
//! the bound is tight (an adversary crashing the max-weight neurons at an
//! input where they output ≈ 1 realises it — see
//! `neurofail-inject::adversary` for the constructive experiment).

use crate::budget::EpsilonBudget;
use crate::fep::crash_fep;
use crate::profile::NetworkProfile;

/// Maximum number of crashed neurons a single-layer network tolerates:
/// `⌊(ε − ε') / w_m⌋` (Theorem 1). A zero `w_m` means crashed neurons are
/// invisible at the output; `usize::MAX` encodes "all of them".
pub fn crash_tolerance_single_layer(budget: EpsilonBudget, w_out: f64) -> usize {
    assert!(w_out >= 0.0, "crash_tolerance: negative weight bound");
    if w_out == 0.0 {
        return usize::MAX;
    }
    let bound = budget.slack() / w_out;
    // The theorem's condition is Nfail ≤ (ε−ε')/wm, inclusive.
    bound.floor() as usize
}

/// Multilayer crash tolerance check: Theorem 3 specialised to crashes
/// (`C ↦ sup ϕ`, Section IV-B) — `crash_fep(f) ≤ ε − ε'`.
///
/// # Panics
/// If `faults` does not match the profile (see [`NetworkProfile`]).
pub fn crash_tolerates(profile: &NetworkProfile, faults: &[usize], budget: EpsilonBudget) -> bool {
    crash_fep(profile, faults) <= budget.slack()
}

/// Remaining crash budget: `(ε − ε') − crash_fep(f)`. Positive values mean
/// the distribution is tolerated with room to spare; negative values
/// quantify the violation.
pub fn crash_margin(profile: &NetworkProfile, faults: &[usize], budget: EpsilonBudget) -> f64 {
    budget.slack() - crash_fep(profile, faults)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(eps: f64, eps_prime: f64) -> EpsilonBudget {
        EpsilonBudget::new(eps, eps_prime).unwrap()
    }

    #[test]
    fn theorem1_closed_form() {
        // (ε−ε')/wm = (0.1 − 0.02)/0.01 = 8.
        assert_eq!(crash_tolerance_single_layer(budget(0.1, 0.02), 0.01), 8);
        // Just below an integer boundary rounds down.
        assert_eq!(crash_tolerance_single_layer(budget(0.1, 0.021), 0.01), 7);
    }

    #[test]
    fn zero_slack_tolerates_nothing() {
        assert_eq!(crash_tolerance_single_layer(budget(0.05, 0.05), 0.01), 0);
    }

    #[test]
    fn zero_weight_tolerates_everything() {
        assert_eq!(
            crash_tolerance_single_layer(budget(0.1, 0.05), 0.0),
            usize::MAX
        );
    }

    #[test]
    fn theorem1_agrees_with_crash_fep_on_single_layer() {
        // Theorem 1 is the L=1 specialisation of Theorem 3 with C = sup ϕ:
        // f·wm ≤ ε−ε'  ⇔  crash_fep ≤ slack.
        let p = NetworkProfile::uniform(1, 50, 0.01, 1.0, 1.0);
        let b = budget(0.1, 0.02);
        let max_f = crash_tolerance_single_layer(b, p.w_out);
        assert!(crash_tolerates(&p, &[max_f], b));
        assert!(!crash_tolerates(&p, &[max_f + 1], b));
    }

    #[test]
    fn margin_sign_matches_tolerance() {
        let p = NetworkProfile::uniform(2, 10, 0.05, 1.0, 1.0);
        let b = budget(0.2, 0.1);
        let ok = [1usize, 0];
        let too_many = [10usize, 10];
        assert!(crash_tolerates(&p, &ok, b));
        assert!(crash_margin(&p, &ok, b) > 0.0);
        assert!(!crash_tolerates(&p, &too_many, b));
        assert!(crash_margin(&p, &too_many, b) < 0.0);
    }
}

//! Theorem 3 (Byzantine neuron tolerance) and Lemma 1 (the unbounded case).
//!
//! A network realising an ε'-approximation tolerates a per-layer Byzantine
//! distribution `(f_l)` iff `Fep ≤ ε − ε'` (Theorem 3; the bound is tight).
//! Without Assumption 1 (bounded synaptic transmission), no network
//! tolerates even one Byzantine neuron (Lemma 1) — here that appears as
//! `Fep = +inf` whenever capacity is unbounded and any `f_l > 0`.

use serde::{Deserialize, Serialize};

use crate::budget::EpsilonBudget;
use crate::fep::{fep, fep_for};
use crate::profile::{FaultClass, NetworkProfile};

/// Theorem 3: does the profile tolerate the Byzantine distribution `(f_l)`?
///
/// # Panics
/// If `faults` does not match the profile.
pub fn tolerates(profile: &NetworkProfile, faults: &[usize], budget: EpsilonBudget) -> bool {
    fep(profile, faults) <= budget.slack()
}

/// Remaining budget `(ε − ε') − Fep` (negative = violated).
pub fn margin(profile: &NetworkProfile, faults: &[usize], budget: EpsilonBudget) -> f64 {
    budget.slack() - fep(profile, faults)
}

/// Lemma 1 as a predicate: with unbounded transmission, no non-empty fault
/// distribution is tolerated.
pub fn lemma1_zero_tolerance(profile: &NetworkProfile, faults: &[usize]) -> bool {
    !profile.is_bounded() && faults.iter().any(|&f| f > 0)
}

/// The largest number of Byzantine neurons tolerated in a *single* layer
/// `l` (1-based), all other layers correct. Fep is linear in `f_l` when the
/// other layers are clean, so this is a closed form, the multilayer analogue
/// of Theorem 1:
///
/// `f_l ≤ (ε − ε') / (C · K^(L−l) · Π_{l'>l} N_{l'} w_m^(l') · w_m^(L+1))`.
///
/// Returns `N_l` (capped) when the per-fault effect is 0, and 0 in the
/// unbounded-capacity regime.
///
/// # Panics
/// If `layer` is not in `1..=L`.
pub fn max_faults_in_layer(
    profile: &NetworkProfile,
    layer: usize,
    budget: EpsilonBudget,
    class: FaultClass,
) -> usize {
    assert!(
        (1..=profile.depth()).contains(&layer),
        "layer {layer} out of 1..={}",
        profile.depth()
    );
    let n_l = profile.layers[layer - 1].n;
    // Per-fault output effect: Fep for a single fault in `layer`.
    let mut single = vec![0usize; profile.depth()];
    single[layer - 1] = 1;
    let per_fault = fep_for(profile, &single, class);
    if per_fault == 0.0 {
        return n_l;
    }
    if per_fault.is_infinite() {
        return 0; // Lemma 1
    }
    let by_budget = (budget.slack() / per_fault).floor() as usize;
    by_budget.min(n_l)
}

/// A serialisable verdict for one distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToleranceVerdict {
    /// The distribution checked.
    pub faults: Vec<usize>,
    /// Fault class used.
    pub class: FaultClass,
    /// The Fep of the distribution.
    pub fep: f64,
    /// The available slack `ε − ε'`.
    pub slack: f64,
    /// Whether Theorem 3's condition holds.
    pub tolerated: bool,
}

/// Evaluate Theorem 3 and package the result.
pub fn verdict(
    profile: &NetworkProfile,
    faults: &[usize],
    budget: EpsilonBudget,
    class: FaultClass,
) -> ToleranceVerdict {
    let f = fep_for(profile, faults, class);
    ToleranceVerdict {
        faults: faults.to_vec(),
        class,
        fep: f,
        slack: budget.slack(),
        tolerated: f <= budget.slack(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn budget(e: f64, ep: f64) -> EpsilonBudget {
        EpsilonBudget::new(e, ep).unwrap()
    }

    #[test]
    fn tolerance_follows_fep_threshold() {
        let p = NetworkProfile::uniform(1, 20, 0.01, 1.0, 1.0);
        let b = budget(0.1, 0.05);
        // Fep(f) = f · 0.01; slack = 0.05 → f* = 5.
        assert!(tolerates(&p, &[5], b));
        assert!(!tolerates(&p, &[6], b));
        assert_eq!(max_faults_in_layer(&p, 1, b, FaultClass::Byzantine), 5);
    }

    #[test]
    fn lemma1_unbounded_tolerates_nothing() {
        let mut p = NetworkProfile::uniform(3, 10, 0.5, 1.0, 1.0);
        p.capacity = f64::INFINITY;
        let b = budget(10.0, 0.1); // even a huge slack
        assert!(!tolerates(&p, &[1, 0, 0], b));
        assert!(lemma1_zero_tolerance(&p, &[1, 0, 0]));
        assert!(!lemma1_zero_tolerance(&p, &[0, 0, 0]));
        for l in 1..=3 {
            assert_eq!(max_faults_in_layer(&p, l, b, FaultClass::Byzantine), 0);
        }
        // Crashes are still tolerable: Assumption 1 is not needed for them.
        assert!(max_faults_in_layer(&p, 3, b, FaultClass::Crash) > 0);
    }

    #[test]
    fn capacity_shrinks_tolerance() {
        // Doubling C halves the admissible faults (Theorem 3's dependence).
        let p1 = NetworkProfile::uniform(1, 100, 0.001, 1.0, 1.0);
        let mut p2 = p1.clone();
        p2.capacity = 2.0;
        let b = budget(0.2, 0.1);
        let f1 = max_faults_in_layer(&p1, 1, b, FaultClass::Byzantine);
        let f2 = max_faults_in_layer(&p2, 1, b, FaultClass::Byzantine);
        assert_eq!(f1, 100); // budget allows all
        assert_eq!(f2, 50);
    }

    #[test]
    fn deeper_layers_tolerate_more_when_gain_above_one() {
        // With per-crossing gain (N·K·w) > 1, a fault near the input is
        // amplified more, so fewer are tolerated there (Section IV-B).
        let p = NetworkProfile::uniform(3, 10, 0.5, 2.0, 1.0);
        let b = budget(1.0, 0.5);
        let f1 = max_faults_in_layer(&p, 1, b, FaultClass::Byzantine);
        let f3 = max_faults_in_layer(&p, 3, b, FaultClass::Byzantine);
        assert!(f3 >= f1);
    }

    #[test]
    fn verdict_round_trips() {
        let p = NetworkProfile::uniform(2, 8, 0.05, 1.0, 1.0);
        // Exactly-representable budget so the JSON round-trip is bitwise.
        let b = budget(0.375, 0.125);
        let v = verdict(&p, &[2, 1], b, FaultClass::Byzantine);
        assert_eq!(v.tolerated, tolerates(&p, &[2, 1], b));
        assert!((v.slack - 0.25).abs() < 1e-15);
        let json = serde_json::to_string(&v).unwrap();
        let back: ToleranceVerdict = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    proptest! {
        /// Tightness of `max_faults_in_layer`: the returned count is
        /// tolerated, one more is not (unless capped by N_l or slack 0).
        #[test]
        fn max_faults_is_maximal(
            l in 1usize..4,
            n in 2usize..30,
            w in 0.01f64..0.5,
            k in 0.2f64..2.0,
            slack_scale in 0.1f64..10.0,
        ) {
            let p = NetworkProfile::uniform(l, n, w, k, 1.0);
            let eps_prime = 0.05;
            let eps = eps_prime + 0.05 * slack_scale;
            let b = budget(eps, eps_prime);
            for layer in 1..=l {
                let fmax = max_faults_in_layer(&p, layer, b, FaultClass::Byzantine);
                let mut faults = vec![0; l];
                faults[layer - 1] = fmax;
                prop_assert!(tolerates(&p, &faults, b));
                if fmax < n {
                    faults[layer - 1] = fmax + 1;
                    prop_assert!(!tolerates(&p, &faults, b));
                }
            }
        }

        /// Crash tolerance dominates Byzantine tolerance when C ≥ sup ϕ.
        #[test]
        fn crash_at_least_as_tolerable(
            n in 2usize..20,
            c in 1.0f64..5.0,
        ) {
            let p = NetworkProfile::uniform(2, n, 0.1, 1.0, c);
            let b = budget(0.5, 0.1);
            for layer in 1..=2 {
                let fc = max_faults_in_layer(&p, layer, b, FaultClass::Crash);
                let fb = max_faults_in_layer(&p, layer, b, FaultClass::Byzantine);
                prop_assert!(fc >= fb, "crash {fc} < byz {fb}");
            }
        }
    }
}

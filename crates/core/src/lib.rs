//! # neurofail-core
//!
//! The analytical engine of the `neurofail` workspace — a faithful
//! implementation of every bound in El Mhamdi & Guerraoui, *When Neurons
//! Fail* (IPPS 2017):
//!
//! | Paper artefact | Module |
//! |---|---|
//! | Theorem 1 (single-layer crash bound) | [`crash`] |
//! | Theorem 2 (Forward Error Propagation, `Fep`) | [`mod@fep`] |
//! | Theorem 3 (Byzantine neuron tolerance) | [`byzantine`] |
//! | Lemma 1 (unbounded transmission ⇒ zero tolerance) | [`byzantine`] |
//! | Lemma 2 + Theorem 4 (synapse failures; two bound forms) | [`synapse`] |
//! | Theorem 5 (reduced precision / memory cost) | [`precision`] |
//! | Corollary 1 (reduced over-provisioning, constructive) | [`overprovision`] |
//! | Corollary 2 (boosting / quorum waits) | [`boosting`] |
//! | Section VI (convolutional extension) | [`convolutional`] |
//! | Section II-C (over-provisioning, Barron sizing) | [`overprovision`] |
//!
//! plus [`tolerance`] (inverse search: how many faults fit in `ε − ε'`) and
//! [`mod@certify`] (one-call robustness certificates).
//!
//! The bounds are pure functions of the network **topology** — the tuple
//! `(L, N_l, w_m^(l), K, C)` captured by [`profile::NetworkProfile`] —
//! never of its execution: that is the paper's point ("computing this
//! quantity only requires looking at the topology of the network", vs. the
//! "discouraging combinatorial explosion" of experimental assessment,
//! whose machinery lives in `neurofail-inject`). The one deliberate
//! exception is [`measured`]: the *inverse* tolerance searches restated
//! against measured disturbances — the empirical thresholds the
//! experiments price the analytic ones against — routed through
//! `neurofail-inject`'s checkpoint cache so re-evaluating the same probe
//! set across ε′/capacity iterations never repeats a nominal pass.

#![warn(missing_docs)]

pub mod boosting;
pub mod budget;
pub mod byzantine;
pub mod certify;
pub mod convolutional;
pub mod crash;
pub mod fep;
pub mod measured;
pub mod overprovision;
pub mod precision;
pub mod profile;
pub mod synapse;
pub mod tolerance;

pub use budget::EpsilonBudget;
pub use certify::{certify, Certificate};
pub use fep::{crash_fep, fep, FepBreakdown};
pub use measured::{measured_capacity_sweep, measured_crash_thresholds, MeasuredThreshold};
pub use profile::{Capacity, FaultClass, NetworkProfile};

//! Forward Error Propagation — Theorem 2, the paper's central quantity.
//!
//! When `f_l` neurons of layer `l` emit outputs off by at most `C` each, the
//! worst-case effect on the network output is
//!
//! ```text
//! Fep = C · Σ_{l=1..L} [ f_l · K^(L−l) · Π_{l'=l+1..L+1} (N_{l'} − f_{l'}) · w_m^(l') ]
//! ```
//!
//! with the convention `N_{L+1} = 1, f_{L+1} = 0` (the output node), so the
//! last product factor is `w_m^(L+1)`. Each term reads mechanically off the
//! worst case: the `f_l` faulty values (≤ C each) enter every correct neuron
//! of layer `l+1` through weights ≤ `w_m^(l+1)`, get squashed (× K), are
//! relayed by all `N_{l'} − f_{l'}` correct neurons of each subsequent layer
//! (faulty ones are accounted by their own term), and finally reach the
//! linear output through `w_m^(L+1)`.
//!
//! This module computes `Fep` in O(L) by suffix products, exposes a
//! per-layer breakdown (which term dominates tells the designer *where*
//! robustness is thin), and a log-space variant for very deep/wide profiles
//! whose products overflow `f64`.

use serde::{Deserialize, Serialize};

use crate::profile::{FaultClass, NetworkProfile};

/// `Fep` for a Byzantine per-layer fault distribution `(f_l)` (Theorem 2
/// with per-value magnitude `C` from Assumption 1).
///
/// Returns `+inf` when the profile is unbounded and any fault is present
/// (Lemma 1's regime).
///
/// # Panics
/// If `faults.len() != L` or any `f_l > N_l`.
pub fn fep(profile: &NetworkProfile, faults: &[usize]) -> f64 {
    fep_with_magnitude(profile, faults, profile.capacity)
}

/// `Fep` for crash faults: the per-value magnitude is `sup |ϕ|` instead of
/// `C` — a crashed neuron's worst effect is its lost nominal output
/// (Section IV-B), so Assumption 1 is not needed.
///
/// # Panics
/// As [`fep`].
pub fn crash_fep(profile: &NetworkProfile, faults: &[usize]) -> f64 {
    fep_with_magnitude(profile, faults, profile.sup_activation)
}

/// `Fep` for a given [`FaultClass`].
pub fn fep_for(profile: &NetworkProfile, faults: &[usize], class: FaultClass) -> f64 {
    fep_with_magnitude(profile, faults, profile.fault_magnitude(class))
}

/// `Fep` with an explicit per-value error magnitude (the `C` slot). Used
/// directly by Theorem 5's precision analysis and the synapse bounds.
///
/// # Panics
/// As [`fep`].
pub fn fep_with_magnitude(profile: &NetworkProfile, faults: &[usize], magnitude: f64) -> f64 {
    let mut scratch = Vec::new();
    fep_with_magnitude_into(profile, faults, magnitude, &mut scratch)
}

/// Allocation-free [`fep_with_magnitude`]: the suffix products go through a
/// caller-owned scratch buffer (resized on first use, reused afterwards).
///
/// This is the batched-evaluation primitive of the inverse tolerance
/// search: `greedy_max_faults` and the exact lattice enumeration evaluate
/// thousands to millions of candidate distributions, and the two `Vec`
/// allocations per candidate of the naive path dominated their profiles.
/// The returned value is **bitwise identical** to [`fep_with_magnitude`]
/// (same products, same left-to-right term sum).
///
/// # Panics
/// As [`fep`].
pub fn fep_with_magnitude_into(
    profile: &NetworkProfile,
    faults: &[usize],
    magnitude: f64,
    suffix_scratch: &mut Vec<f64>,
) -> f64 {
    suffix_products_into(profile, faults, suffix_scratch);
    debug_assert!(magnitude >= 0.0);
    let mut acc = 0.0;
    for (i, &f) in faults.iter().enumerate() {
        acc += if f == 0 {
            // Avoid 0 × ∞ = NaN in the unbounded-capacity regime.
            0.0
        } else {
            magnitude * f as f64 * suffix_scratch[i + 1]
        };
    }
    acc
}

/// [`fep_for`] through a reusable scratch buffer (see
/// [`fep_with_magnitude_into`]).
///
/// # Panics
/// As [`fep`].
pub fn fep_for_into(
    profile: &NetworkProfile,
    faults: &[usize],
    class: FaultClass,
    suffix_scratch: &mut Vec<f64>,
) -> f64 {
    fep_with_magnitude_into(
        profile,
        faults,
        profile.fault_magnitude(class),
        suffix_scratch,
    )
}

/// Batched Fep over the single-increment neighborhood of `faults`:
/// `out[i]` is `Some(Fep(faults + e_i))` when layer `i + 1` has a spare
/// neuron, `None` when the layer is already fully faulty. One call
/// evaluates the whole candidate frontier of a greedy packing step through
/// one shared scratch buffer; each candidate's value is bitwise identical
/// to a standalone [`fep_for`] call on the incremented distribution.
///
/// # Panics
/// As [`fep`].
pub fn increment_feps(
    profile: &NetworkProfile,
    faults: &mut [usize],
    class: FaultClass,
    suffix_scratch: &mut Vec<f64>,
    out: &mut Vec<Option<f64>>,
) {
    profile.check_faults(faults);
    out.clear();
    for i in 0..faults.len() {
        if faults[i] >= profile.layers[i].n {
            out.push(None);
            continue;
        }
        faults[i] += 1;
        out.push(Some(fep_for_into(profile, faults, class, suffix_scratch)));
        faults[i] -= 1;
    }
}

/// Write the suffix products for `(profile, faults)` into `suffix`
/// (resized to `L + 1`): `suffix[i] = Π_{j=i..L-1} (n_j − f_j)·k_j·w_in_j
/// · w_out`, the factor a unit error entering code-layer `i` picks up on
/// its way to the output; `suffix[L] = w_out`.
fn suffix_products_into(profile: &NetworkProfile, faults: &[usize], suffix: &mut Vec<f64>) {
    profile.check_faults(faults);
    let l = profile.depth();
    suffix.clear();
    suffix.resize(l + 1, 0.0);
    suffix[l] = profile.w_out;
    for i in (0..l).rev() {
        let lay = &profile.layers[i];
        suffix[i] = suffix[i + 1] * (lay.n - faults[i]) as f64 * lay.k * lay.w_in;
    }
}

/// The per-layer terms of the Fep sum: `terms[i]` is layer `i+1`'s
/// contribution. Their sum is [`fep_with_magnitude`].
///
/// # Panics
/// As [`fep`].
pub fn per_layer_terms(profile: &NetworkProfile, faults: &[usize], magnitude: f64) -> Vec<f64> {
    debug_assert!(magnitude >= 0.0);
    let mut suffix = Vec::new();
    suffix_products_into(profile, faults, &mut suffix);
    faults
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            if f == 0 {
                0.0
            } else {
                magnitude * f as f64 * suffix[i + 1]
            }
        })
        .collect()
}

/// Natural log of [`fep_with_magnitude`], computed without forming the
/// products (stable for profiles whose terms overflow `f64`). Returns
/// `-inf` for a fault-free distribution and `+inf` in the unbounded regime.
///
/// # Panics
/// As [`fep`].
pub fn fep_ln(profile: &NetworkProfile, faults: &[usize], magnitude: f64) -> f64 {
    profile.check_faults(faults);
    let l = profile.depth();
    // ln_suffix[i] = ln suffix[i] as in `per_layer_terms`.
    let mut ln_suffix = vec![0.0; l + 1];
    ln_suffix[l] = profile.w_out.ln();
    for i in (0..l).rev() {
        let lay = &profile.layers[i];
        ln_suffix[i] =
            ln_suffix[i + 1] + ((lay.n - faults[i]) as f64).ln() + lay.k.ln() + lay.w_in.ln();
    }
    let ln_terms: Vec<f64> = (0..l)
        .filter(|&i| faults[i] > 0)
        .map(|i| magnitude.ln() + (faults[i] as f64).ln() + ln_suffix[i + 1])
        .collect();
    log_sum_exp(&ln_terms)
}

/// `ln Σ exp(x_i)`, stable; `-inf` for empty input.
fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m; // empty (−inf) or a +inf term dominates
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// A rendered Fep analysis: the bound, its per-layer decomposition, and the
/// dominant layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FepBreakdown {
    /// Total `Fep`.
    pub total: f64,
    /// Per-layer contributions (paper layers `1..=L`).
    pub per_layer: Vec<f64>,
    /// Per-value magnitude used (the `C` slot).
    pub magnitude: f64,
    /// The fault distribution analysed.
    pub faults: Vec<usize>,
}

impl FepBreakdown {
    /// Analyse `(profile, faults)` for a fault class.
    pub fn analyse(profile: &NetworkProfile, faults: &[usize], class: FaultClass) -> Self {
        let magnitude = profile.fault_magnitude(class);
        let per_layer = per_layer_terms(profile, faults, magnitude);
        FepBreakdown {
            total: per_layer.iter().sum(),
            per_layer,
            magnitude,
            faults: faults.to_vec(),
        }
    }

    /// The paper layer (1-based) contributing the most error, if any fault
    /// is present.
    pub fn dominant_layer(&self) -> Option<usize> {
        self.per_layer
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > 0.0)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i + 1)
    }
}

impl std::fmt::Display for FepBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fep = {:.6e} (per-value magnitude {})",
            self.total, self.magnitude
        )?;
        for (i, (t, fl)) in self.per_layer.iter().zip(&self.faults).enumerate() {
            writeln!(f, "  layer {:>2}: f={:<4} term={:.6e}", i + 1, fl, t)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Hand-computed L=1 case: Fep = C·f·w_out (Inequality 9).
    #[test]
    fn single_layer_closed_form() {
        let p = NetworkProfile::uniform(1, 10, 0.5, 2.0, 3.0);
        assert_eq!(fep(&p, &[4]), 3.0 * 4.0 * 0.5);
        assert_eq!(crash_fep(&p, &[4]), 1.0 * 4.0 * 0.5);
        assert_eq!(fep(&p, &[0]), 0.0);
    }

    /// Hand-computed L=2 case:
    /// term(l=1) = C·f1·K·(N2−f2)·w2·w3, term(l=2) = C·f2·w3.
    #[test]
    fn two_layer_closed_form() {
        let mut p = NetworkProfile::uniform(2, 5, 0.5, 2.0, 1.5);
        p.layers[1].w_in = 0.4; // w^(2) between the layers
        p.w_out = 0.25; // w^(3)
        let f = [2usize, 1usize];
        let t1 = 1.5 * 2.0 * 2.0 * (5.0 - 1.0) * 0.4 * 0.25;
        let t2 = 1.5 * 1.0 * 0.25;
        let terms = per_layer_terms(&p, &f, 1.5);
        assert!((terms[0] - t1).abs() < 1e-12, "{} vs {t1}", terms[0]);
        assert!((terms[1] - t2).abs() < 1e-12);
        assert!((fep(&p, &f) - (t1 + t2)).abs() < 1e-12);
    }

    /// Depth dependency: a fault at depth l picks up K^(L−l) — failures
    /// deeper from the output are amplified exponentially when K·N·w > 1.
    #[test]
    fn early_layer_faults_amplify_when_gain_above_one() {
        let p = NetworkProfile::uniform(4, 10, 0.5, 2.0, 1.0);
        // Per-crossing gain: (N−f)·K·w = 9·2·0.5 = 9 > 1.
        let t = per_layer_terms(&p, &[1, 1, 1, 1], 1.0);
        assert!(t[0] > t[1] && t[1] > t[2] && t[2] > t[3]);
        assert!((t[0] / t[1] - 9.0).abs() < 1e-9);
    }

    /// ... and attenuated when the per-crossing gain is below one.
    #[test]
    fn early_layer_faults_attenuate_when_gain_below_one() {
        let p = NetworkProfile::uniform(4, 4, 0.1, 0.5, 1.0);
        // Gain: 4·0.5·0.1 = 0.2 < 1.
        let t = per_layer_terms(&p, &[1, 1, 1, 1], 1.0);
        assert!(t[0] < t[1] && t[1] < t[2] && t[2] < t[3]);
    }

    #[test]
    fn unbounded_capacity_yields_infinite_fep_iff_faulty() {
        let mut p = NetworkProfile::uniform(2, 5, 0.5, 1.0, 1.0);
        p.capacity = f64::INFINITY;
        assert_eq!(fep(&p, &[0, 0]), 0.0);
        assert_eq!(fep(&p, &[1, 0]), f64::INFINITY);
        // Crash Fep stays finite: it uses sup ϕ, not C.
        assert!(crash_fep(&p, &[1, 0]).is_finite());
    }

    #[test]
    fn breakdown_identifies_dominant_layer() {
        let p = NetworkProfile::uniform(3, 10, 0.5, 2.0, 1.0);
        let b = FepBreakdown::analyse(&p, &[0, 2, 0], FaultClass::Byzantine);
        assert_eq!(b.dominant_layer(), Some(2));
        assert_eq!(b.per_layer[0], 0.0);
        assert!(b.total > 0.0);
        let none = FepBreakdown::analyse(&p, &[0, 0, 0], FaultClass::Byzantine);
        assert_eq!(none.dominant_layer(), None);
        assert_eq!(none.total, 0.0);
    }

    #[test]
    fn display_renders() {
        let p = NetworkProfile::uniform(2, 5, 0.5, 1.0, 1.0);
        let b = FepBreakdown::analyse(&p, &[1, 0], FaultClass::Crash);
        let s = format!("{b}");
        assert!(s.contains("Fep"));
        assert!(s.contains("layer  1"));
    }

    #[test]
    #[should_panic(expected = "fault distribution length")]
    fn wrong_fault_length_panics() {
        let p = NetworkProfile::uniform(2, 5, 0.5, 1.0, 1.0);
        let _ = fep(&p, &[1]);
    }

    #[test]
    fn increment_feps_matches_standalone_calls_bitwise() {
        let mut p = NetworkProfile::uniform(3, 5, 0.4, 1.5, 1.2);
        p.layers[1].w_in = 0.7;
        let mut faults = vec![1usize, 5, 0];
        let snapshot = faults.clone();
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        increment_feps(
            &p,
            &mut faults,
            FaultClass::Byzantine,
            &mut scratch,
            &mut out,
        );
        assert_eq!(faults, snapshot, "increment_feps must restore its input");
        assert_eq!(out.len(), 3);
        assert_eq!(out[1], None, "full layer has no increment");
        for (i, got) in out.iter().enumerate() {
            let Some(got) = got else { continue };
            let mut f = faults.clone();
            f[i] += 1;
            assert_eq!(*got, fep_for(&p, &f, FaultClass::Byzantine), "layer {i}");
        }
    }

    #[test]
    fn fep_into_reuses_scratch_across_profiles_of_different_depth() {
        let mut scratch = Vec::new();
        let deep = NetworkProfile::uniform(5, 4, 0.3, 1.0, 1.0);
        let shallow = NetworkProfile::uniform(2, 9, 0.2, 2.0, 1.0);
        let a = fep_with_magnitude_into(&deep, &[1, 0, 2, 0, 1], 1.0, &mut scratch);
        assert_eq!(a, fep_with_magnitude(&deep, &[1, 0, 2, 0, 1], 1.0));
        let b = fep_with_magnitude_into(&shallow, &[3, 1], 1.0, &mut scratch);
        assert_eq!(b, fep_with_magnitude(&shallow, &[3, 1], 1.0));
    }

    proptest! {
        /// Log-space and direct evaluation agree.
        #[test]
        fn ln_matches_direct(
            l in 1usize..5,
            n in 1usize..30,
            w in 0.01f64..2.0,
            k in 0.1f64..4.0,
            c in 0.1f64..4.0,
            seed in 0u64..1000,
        ) {
            let p = NetworkProfile::uniform(l, n, w, k, c);
            let faults: Vec<usize> = (0..l).map(|i| {
                (seed.wrapping_mul(i as u64 + 1) % (n as u64 + 1)) as usize
            }).collect();
            let direct = fep(&p, &faults);
            let ln = fep_ln(&p, &faults, c);
            if direct == 0.0 {
                prop_assert_eq!(ln, f64::NEG_INFINITY);
            } else {
                prop_assert!((ln - direct.ln()).abs() < 1e-9,
                    "ln {} vs direct.ln {}", ln, direct.ln());
            }
        }

        /// Fep is monotone in the capacity C, the Lipschitz K and w_out.
        #[test]
        fn monotone_in_scalar_parameters(
            n in 2usize..20,
            f in 1usize..20,
            w in 0.05f64..1.0,
            k in 0.2f64..3.0,
        ) {
            let f = f.min(n);
            let p = NetworkProfile::uniform(3, n, w, k, 1.0);
            let faults = vec![f, 0, f];
            let base = fep(&p, &faults);

            let mut pc = p.clone();
            pc.capacity = 2.0;
            prop_assert!(fep(&pc, &faults) >= base);

            let pk = p.with_lipschitz(k * 2.0);
            prop_assert!(fep(&pk, &faults) >= base);

            let mut pw = p.clone();
            pw.w_out *= 3.0;
            prop_assert!(fep(&pw, &faults) >= base);
        }

        /// Zero faults ⇒ zero Fep; full faults ⇒ finite (no correct relays
        /// beyond the output).
        #[test]
        fn boundary_distributions(l in 1usize..5, n in 1usize..20) {
            let p = NetworkProfile::uniform(l, n, 0.5, 1.0, 1.0);
            prop_assert_eq!(fep(&p, &vec![0; l]), 0.0);
            let full = fep(&p, &vec![n; l]);
            prop_assert!(full.is_finite() && full > 0.0);
        }

        /// Corollary 1's engine: under widening by m, every Fep term is
        /// bounded by U/m where U uses the *full* relay populations —
        /// (mn−f)(w/m) ≤ nw and the output weights contribute the 1/m. So
        /// Fep(widened(m)) ≤ U/m → 0, which is what makes the corollary
        /// constructive. (Pointwise monotonicity in m does NOT hold — a
        /// fault-saturated layer can kill relays at m=1 and revive them at
        /// m=2 — so we assert the 1/m envelope, not monotonicity.)
        #[test]
        fn widening_obeys_the_one_over_m_envelope(
            l in 1usize..4,
            n in 2usize..10,
            m in 1usize..50,
            f in 1usize..10,
        ) {
            let f = f.min(n);
            let p = NetworkProfile::uniform(l, n, 0.5, 1.5, 1.0);
            let faults = vec![f; l];
            // U = C Σ_i f_i Π_{j>i} (n_j k_j w_j) · w_out (full populations).
            let mut u = 0.0;
            for i in 0..l {
                let mut t = p.capacity * f as f64 * p.w_out;
                for j in (i + 1)..l {
                    t *= p.layers[j].n as f64 * p.layers[j].k * p.layers[j].w_in;
                }
                u += t;
            }
            let wide = p.widened(m);
            prop_assert!(fep(&wide, &faults) <= u / m as f64 + 1e-12);
        }
    }
}

//! Lemma 2 and Theorem 4: failures of synapses.
//!
//! Lemma 2 reduces a synapse error to a neuron error: an error of value
//! `λ ≤ C` on a synapse into neuron `j` of layer `l` shifts `j`'s received
//! sum by `λ`, so (K-Lipschitzness) `j`'s *output* is off by at most `C·K`.
//! Composing with Theorem 2's propagation gives a bound per synapse-failure
//! distribution `(f_l), l = 1..=L+1` (layer `L+1` = synapses into the
//! output node, which are part of the network).
//!
//! ## Two forms, one reproduction finding
//!
//! [`SynapseBoundForm::Verbatim`] evaluates the paper's Theorem 4 formula
//! exactly as printed:
//!
//! ```text
//! C Σ_{l=1..L+1} f_l · K^(L+1−l) · w_m^(l) · Π_{l'=l+1..L+1} (N_{l'}−f_{l'}) w_m^(l')
//! ```
//!
//! [`SynapseBoundForm::Lemma2`] composes Lemma 2 with Theorem 2 directly:
//! the failing synapse adds ≤ C to its target's sum (no `w_m^(l)` factor —
//! the synapse error enters the sum *directly*, not through a weight), the
//! target's output is off by ≤ `C·K_l` (≤ C for the linear output node),
//! and that propagates as usual:
//!
//! ```text
//! C [ Σ_{l=1..L} f_l · K_l · K^(L−l) · Π_{l'=l+1..L+1} (N_{l'}−f_{l'}) w_m^(l')  +  f_{L+1} ]
//! ```
//!
//! The printed formula multiplies each term by the failing layer's own
//! `w_m^(l)`; when `w_m^(l) < 1` that makes the verbatim bound *smaller*
//! than the worst case Lemma 2 admits (and our fault-injection experiments
//! exhibit violations — see experiment E8). The soundness suite therefore
//! validates against `Lemma2`; `Verbatim` is kept for fidelity and for the
//! EXPERIMENTS.md comparison.

use serde::{Deserialize, Serialize};

use crate::budget::EpsilonBudget;
use crate::profile::NetworkProfile;

/// Which formula to evaluate (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SynapseBoundForm {
    /// The paper's Theorem 4 formula, verbatim.
    Verbatim,
    /// The direct Lemma-2 composition (sound; used by the test suite).
    Lemma2,
}

/// Worst-case output error for a Byzantine-synapse distribution.
///
/// `faults[i]` for `i in 0..L` counts failing synapses entering paper layer
/// `i+1`; `faults[L]` counts failing synapses into the output node.
///
/// Capacity semantics follow Lemma 2: each failing synapse shifts its
/// target's received sum by at most `C` (`profile.capacity`).
///
/// # Panics
/// If `faults.len() != L + 1`.
pub fn synapse_fep(profile: &NetworkProfile, faults: &[usize], form: SynapseBoundForm) -> f64 {
    let l = profile.depth();
    assert_eq!(
        faults.len(),
        l + 1,
        "synapse distribution must have L+1 = {} entries, got {}",
        l + 1,
        faults.len()
    );
    let c = profile.capacity;
    if faults.iter().all(|&f| f == 0) {
        return 0.0;
    }
    if c.is_infinite() {
        return f64::INFINITY;
    }

    // Propagation suffix identical to neuron-Fep, but with the *neuron*
    // population intact (synapse faults poison targets; the paper's (N−f)
    // convention treats each poisoned target as this layer's "failing"
    // neuron, so we subtract the synapse counts just as Theorem 4 does).
    // suffix[i] = Π_{j=i..L-1} (n_j − f_j)·k_j·w_in_j · w_out; suffix[L] = w_out.
    let mut suffix = vec![0.0; l + 1];
    suffix[l] = profile.w_out;
    for i in (0..l).rev() {
        let lay = &profile.layers[i];
        let correct = lay.n.saturating_sub(faults[i]) as f64;
        suffix[i] = suffix[i + 1] * correct * lay.k * lay.w_in;
    }

    let mut total = 0.0;
    for i in 0..l {
        if faults[i] == 0 {
            continue;
        }
        let lay = &profile.layers[i];
        // Lemma 2: target neuron's output error ≤ C · K_l; then propagate
        // through layers i+1.. like a neuron fault at layer i.
        let mut term = c * faults[i] as f64 * lay.k * suffix[i + 1];
        if form == SynapseBoundForm::Verbatim {
            // The printed formula's extra w_m^(l) factor (synapse faults can
            // hit bias synapses too, hence the all-synapse statistic).
            term *= lay.w_in_all;
        }
        total += term;
    }
    // Output-node synapses: the node is linear, error adds directly.
    if faults[l] > 0 {
        let mut term = c * faults[l] as f64;
        if form == SynapseBoundForm::Verbatim {
            term *= profile.w_out;
        }
        total += term;
    }
    total
}

/// Theorem 4's tolerance condition: `synapse_fep ≤ ε − ε'`.
pub fn synapse_tolerates(
    profile: &NetworkProfile,
    faults: &[usize],
    budget: EpsilonBudget,
    form: SynapseBoundForm,
) -> bool {
    synapse_fep(profile, faults, form) <= budget.slack()
}

/// Lemma 2 in isolation: worst-case *output error of the receiving neuron*
/// for a synapse error of magnitude ≤ `c` into a layer with Lipschitz `k`.
pub fn lemma2_neuron_error(c: f64, k: f64) -> f64 {
    debug_assert!(c >= 0.0 && k >= 0.0);
    c * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fep::fep;
    use proptest::prelude::*;

    #[test]
    fn lemma2_is_a_product() {
        assert_eq!(lemma2_neuron_error(2.0, 0.5), 1.0);
        assert_eq!(lemma2_neuron_error(0.0, 3.0), 0.0);
    }

    #[test]
    fn single_layer_closed_forms() {
        // L=1, synapses into layer 1 and into the output node.
        let p = NetworkProfile::uniform(1, 10, 0.5, 2.0, 1.5);
        // One synapse into layer 1 (Lemma2): C·K·(N1−f1)·... wait: the
        // poisoned neuron propagates via the remaining suffix = w_out, and
        // Theorem 4's (N−f) convention removes it from the relay count.
        // term = C·K1·w_out with the (N1−1) relays irrelevant because the
        // fault *is at* layer 1: suffix[1] = w_out.
        let lemma2 = synapse_fep(&p, &[1, 0], SynapseBoundForm::Lemma2);
        assert!((lemma2 - 1.5 * 2.0 * 0.5).abs() < 1e-12);
        // Verbatim multiplies by w_m^(1) = 0.5.
        let verbatim = synapse_fep(&p, &[1, 0], SynapseBoundForm::Verbatim);
        assert!((verbatim - lemma2 * 0.5).abs() < 1e-12);
        // One output synapse: direct C (Lemma2) vs C·w_out (verbatim).
        assert!((synapse_fep(&p, &[0, 1], SynapseBoundForm::Lemma2) - 1.5).abs() < 1e-12);
        assert!((synapse_fep(&p, &[0, 1], SynapseBoundForm::Verbatim) - 1.5 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn verbatim_undershoots_lemma2_when_weights_below_one() {
        let p = NetworkProfile::uniform(2, 8, 0.3, 1.0, 1.0);
        let faults = [1usize, 1, 1];
        let v = synapse_fep(&p, &faults, SynapseBoundForm::Verbatim);
        let l2 = synapse_fep(&p, &faults, SynapseBoundForm::Lemma2);
        assert!(
            v < l2,
            "with w_m < 1 the printed bound is the smaller one: {v} vs {l2}"
        );
    }

    #[test]
    fn verbatim_exceeds_lemma2_when_weights_above_one() {
        let p = NetworkProfile::uniform(2, 8, 2.0, 1.0, 1.0);
        let faults = [1usize, 1, 1];
        let v = synapse_fep(&p, &faults, SynapseBoundForm::Verbatim);
        let l2 = synapse_fep(&p, &faults, SynapseBoundForm::Lemma2);
        assert!(v > l2);
    }

    #[test]
    fn zero_faults_zero_bound_even_unbounded() {
        let mut p = NetworkProfile::uniform(2, 5, 0.5, 1.0, 1.0);
        p.capacity = f64::INFINITY;
        assert_eq!(synapse_fep(&p, &[0, 0, 0], SynapseBoundForm::Lemma2), 0.0);
        assert_eq!(
            synapse_fep(&p, &[1, 0, 0], SynapseBoundForm::Lemma2),
            f64::INFINITY
        );
    }

    #[test]
    fn tolerance_condition() {
        let p = NetworkProfile::uniform(1, 10, 0.1, 1.0, 1.0);
        let b = EpsilonBudget::new(0.5, 0.1).unwrap();
        // Output-synapse faults (Lemma2): f ≤ 0.4 / C = 0.4 → f = 0... C=1:
        // each output synapse costs 1.0 > 0.4 slack.
        assert!(!synapse_tolerates(&p, &[0, 1], b, SynapseBoundForm::Lemma2));
        // Hidden-synapse faults cost C·K·w_out = 0.1 each → 4 tolerated.
        assert!(synapse_tolerates(&p, &[4, 0], b, SynapseBoundForm::Lemma2));
        assert!(!synapse_tolerates(&p, &[5, 0], b, SynapseBoundForm::Lemma2));
    }

    #[test]
    #[should_panic(expected = "L+1")]
    fn wrong_length_panics() {
        let p = NetworkProfile::uniform(2, 5, 0.5, 1.0, 1.0);
        let _ = synapse_fep(&p, &[1, 0], SynapseBoundForm::Lemma2);
    }

    proptest! {
        /// Hidden-synapse faults relate to neuron faults through Lemma 2:
        /// a synapse fault at layer l is at worst K_l times a neuron fault
        /// at layer l (same propagation suffix).
        #[test]
        fn synapse_equals_k_times_neuron_fep(
            l in 1usize..5,
            n in 2usize..20,
            w in 0.05f64..1.5,
            k in 0.2f64..3.0,
            layer in 0usize..5,
        ) {
            let layer = layer % l;
            let p = NetworkProfile::uniform(l, n, w, k, 1.0);
            let mut nf = vec![0usize; l];
            nf[layer] = 1;
            let mut sf = vec![0usize; l + 1];
            sf[layer] = 1;
            let neuron = fep(&p, &nf);
            let syn = synapse_fep(&p, &sf, SynapseBoundForm::Lemma2);
            prop_assert!((syn - k * neuron).abs() <= 1e-9 * syn.abs().max(1.0),
                "syn {} vs k*neuron {}", syn, k * neuron);
        }

        /// Both forms are monotone in the capacity.
        #[test]
        fn monotone_in_capacity(n in 2usize..10, f in 1usize..10) {
            let f = f.min(n);
            let p1 = NetworkProfile::uniform(2, n, 0.5, 1.0, 1.0);
            let mut p2 = p1.clone();
            p2.capacity = 2.5;
            let faults = vec![f, f, f];
            for form in [SynapseBoundForm::Verbatim, SynapseBoundForm::Lemma2] {
                prop_assert!(
                    synapse_fep(&p2, &faults, form) >= synapse_fep(&p1, &faults, form)
                );
            }
        }
    }
}

//! The convolutional extension of Section VI.
//!
//! In a convolutional layer each neuron sees only `R(l)` left-neurons and
//! all neurons share one kernel, so "the maximal weight constraint `w_m^(l)`
//! … will run only on the `R(l)`-different values of the weights" — there
//! are simply far fewer distinct weights over which the max can grow. For
//! trained networks this makes the conv `w_m^(l)` stochastically smaller
//! than a dense layer's max over `N_l × N_{l−1}` weights, hence less
//! restrictive bounds ("tolerating larger amounts of failures").
//!
//! Profile extraction already does the right thing mechanically (a conv
//! layer's `w_m` is its kernel max); this module quantifies the structural
//! difference and packages the comparison used by experiment E13.

use neurofail_nn::Topology;
use serde::{Deserialize, Serialize};

use crate::budget::EpsilonBudget;
use crate::profile::{Capacity, FaultClass, NetworkProfile, ProfileError};
use crate::tolerance::max_uniform_faults;

/// Number of *distinct* weight values feeding one layer: `R(l)` for a
/// convolutional layer (shared kernel), `fan_in × N_l` for a dense layer.
pub fn distinct_weight_count(stats: &neurofail_nn::topology::LayerStats) -> usize {
    match stats.receptive_field {
        Some(r) => r,
        None => stats.fan_in * stats.neurons,
    }
}

/// Per-layer structural summary of where the Section VI advantage comes
/// from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvAdvantage {
    /// Distinct weight count per layer (`R(l)` or dense fan-in × N).
    pub distinct_weights: Vec<usize>,
    /// `w_m^(l)` per layer.
    pub w_max: Vec<f64>,
    /// Max uniform per-layer fault count tolerated (crash), under the given
    /// budget.
    pub uniform_crash_tolerance: usize,
}

/// Summarise a topology's convolutional bound inputs.
///
/// # Errors
/// Propagates [`ProfileError`] from profile extraction.
pub fn conv_advantage(
    topo: &Topology,
    budget: EpsilonBudget,
    capacity: Capacity,
) -> Result<ConvAdvantage, ProfileError> {
    let profile = NetworkProfile::from_topology(topo, capacity)?;
    Ok(ConvAdvantage {
        distinct_weights: topo.layers.iter().map(distinct_weight_count).collect(),
        w_max: topo.layers.iter().map(|l| l.w_max_nonbias).collect(),
        uniform_crash_tolerance: max_uniform_faults(&profile, budget, FaultClass::Crash),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::builder::MlpBuilder;
    use neurofail_tensor::init::Init;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn distinct_weights_conv_vs_dense() {
        let mut rng = SmallRng::seed_from_u64(8);
        let conv = MlpBuilder::new(16)
            .conv1d(1, 4, Activation::Sigmoid { k: 1.0 })
            .bias(false)
            .build(&mut rng);
        let dense = MlpBuilder::new(16)
            .dense(13, Activation::Sigmoid { k: 1.0 }) // same 13 neurons
            .bias(false)
            .build(&mut rng);
        let tc = neurofail_nn::Topology::of(&conv);
        let td = neurofail_nn::Topology::of(&dense);
        assert_eq!(distinct_weight_count(&tc.layers[0]), 4); // R(l)
        assert_eq!(distinct_weight_count(&td.layers[0]), 16 * 13);
    }

    #[test]
    fn conv_layer_wm_is_kernel_max() {
        use neurofail_nn::conv::Conv1dLayer;
        use neurofail_nn::network::{Layer, Mlp};
        use neurofail_tensor::Matrix;
        let net = Mlp::new(
            vec![Layer::Conv1d(Conv1dLayer::new(
                Matrix::from_vec(1, 3, vec![0.2, -0.9, 0.1]),
                vec![],
                Activation::Sigmoid { k: 1.0 },
                8,
            ))],
            vec![0.5; 6],
            0.0,
        );
        let p = NetworkProfile::from_mlp(&net, Capacity::Bounded(1.0)).unwrap();
        assert_eq!(p.layers[0].w_in, 0.9);
    }

    #[test]
    fn advantage_summary_runs() {
        let mut rng = SmallRng::seed_from_u64(9);
        let conv = MlpBuilder::new(12)
            .conv1d(2, 3, Activation::Sigmoid { k: 1.0 })
            .init(Init::Uniform { a: 0.05 })
            .bias(false)
            .build(&mut rng);
        let topo = neurofail_nn::Topology::of(&conv);
        let adv = conv_advantage(
            &topo,
            EpsilonBudget::new(0.3, 0.1).unwrap(),
            Capacity::Bounded(1.0),
        )
        .unwrap();
        assert_eq!(adv.distinct_weights, vec![3]); // kernel width R(l)
        assert_eq!(adv.w_max.len(), 1);
        assert!(adv.w_max[0] <= 0.05);
    }
}

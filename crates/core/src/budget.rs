//! The over-provisioning budget `ε − ε'`.
//!
//! Section II-C: a network trained to accuracy `ε' ≤ ε` is an
//! *over-provisioned* ε-approximation; every tolerance bound in the paper
//! compares a propagated error against the slack `ε − ε'`.

use serde::{Deserialize, Serialize};

/// A validated pair `(ε, ε')` with `0 < ε' ≤ ε`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonBudget {
    eps: f64,
    eps_prime: f64,
}

/// Errors constructing an [`EpsilonBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetError {
    /// ε or ε' was non-finite or ≤ 0.
    NonPositive,
    /// ε' exceeded ε (the network would not even be an ε-approximation).
    PrimeExceedsEps,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::NonPositive => write!(f, "epsilon values must be finite and positive"),
            BudgetError::PrimeExceedsEps => write!(f, "epsilon' must not exceed epsilon"),
        }
    }
}

impl std::error::Error for BudgetError {}

impl EpsilonBudget {
    /// Validate and build.
    ///
    /// # Errors
    /// See [`BudgetError`].
    pub fn new(eps: f64, eps_prime: f64) -> Result<Self, BudgetError> {
        if !(eps.is_finite() && eps_prime.is_finite() && eps > 0.0 && eps_prime > 0.0) {
            return Err(BudgetError::NonPositive);
        }
        if eps_prime > eps {
            return Err(BudgetError::PrimeExceedsEps);
        }
        Ok(EpsilonBudget { eps, eps_prime })
    }

    /// The required accuracy ε (Definition 1).
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The achieved (over-provisioned) accuracy ε'.
    pub fn eps_prime(&self) -> f64 {
        self.eps_prime
    }

    /// The slack `ε − ε'` available to absorb propagated failure error.
    pub fn slack(&self) -> f64 {
        self.eps - self.eps_prime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_budget() {
        let b = EpsilonBudget::new(0.1, 0.02).unwrap();
        assert_eq!(b.eps(), 0.1);
        assert_eq!(b.eps_prime(), 0.02);
        assert!((b.slack() - 0.08).abs() < 1e-15);
    }

    #[test]
    fn equal_eps_gives_zero_slack() {
        let b = EpsilonBudget::new(0.05, 0.05).unwrap();
        assert_eq!(b.slack(), 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            EpsilonBudget::new(0.0, 0.0).unwrap_err(),
            BudgetError::NonPositive
        );
        assert_eq!(
            EpsilonBudget::new(-1.0, 0.1).unwrap_err(),
            BudgetError::NonPositive
        );
        assert_eq!(
            EpsilonBudget::new(f64::NAN, 0.1).unwrap_err(),
            BudgetError::NonPositive
        );
        assert_eq!(
            EpsilonBudget::new(0.1, 0.2).unwrap_err(),
            BudgetError::PrimeExceedsEps
        );
    }
}

//! Network profiles: the bound inputs `(L, N_l, w_m^(l), K_l, C)`.
//!
//! A [`NetworkProfile`] is everything the paper's theorems consume — a pure
//! function of the network's *topology* ("computing this quantity only
//! requires looking at the topology of the network", Section I). It is
//! extracted from a trained `neurofail-nn` network via [`Topology`], or
//! built directly for closed-form tests and what-if analyses.
//!
//! Indexing convention: `layers[i]` is the paper's layer `l = i + 1`.
//! Generalisation: the paper uses a single network-wide Lipschitz constant
//! `K`; profiles carry a per-layer `k_l` (products `Π K_{l'}` replace the
//! paper's `K^{L−l}`), which reduces to the paper's formulas when all `k_l`
//! are equal. All bound functions document both forms.

use neurofail_nn::{Mlp, Topology};
use serde::{Deserialize, Serialize};

/// Synaptic transmission capacity — the paper's Assumption 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Capacity {
    /// Transmission bounded by `C` in absolute value.
    Bounded(f64),
    /// No bound: the regime of Lemma 1, where a single Byzantine neuron
    /// defeats any network.
    Unbounded,
}

impl Capacity {
    /// The numeric capacity (`+inf` for unbounded).
    pub fn value(&self) -> f64 {
        match *self {
            Capacity::Bounded(c) => c,
            Capacity::Unbounded => f64::INFINITY,
        }
    }

    /// Whether Assumption 1 holds.
    pub fn is_bounded(&self) -> bool {
        matches!(self, Capacity::Bounded(_))
    }
}

/// Profile of one layer of neurons (paper layer `l`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// `N_l`: number of (failable) neurons. Constant bias neurons are not
    /// counted — they cannot fail and do not propagate error.
    pub n: usize,
    /// `w_m^(l)`: max |w| over synapses entering this layer from failable
    /// neurons (bias synapses excluded) — the error-propagation factor.
    pub w_in: f64,
    /// Max |w| over **all** synapses entering this layer, bias synapses
    /// included — the statistic for synapse-failure bounds (Theorem 4),
    /// where bias synapses can fail like any other.
    pub w_in_all: f64,
    /// `K_l`: Lipschitz constant of this layer's activation.
    pub k: f64,
}

/// Errors raised when a profile cannot support a requested bound.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// A crash-fault bound needs `sup |ϕ|`, but an activation is unbounded
    /// (e.g. ReLU) — outside the universality-theorem hypotheses.
    UnboundedActivation,
    /// The network has no layers.
    Empty,
    /// A parameter was non-finite or non-positive where positivity is
    /// required.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::UnboundedActivation => {
                write!(f, "activation is unbounded: sup|phi| does not exist (paper requires a squashing function)")
            }
            ProfileError::Empty => write!(f, "network has no layers"),
            ProfileError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// The complete bound input: per-layer profiles, output synapse max, the
/// transmission capacity `C` and the activation supremum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// One entry per paper layer `1..=L`.
    pub layers: Vec<LayerProfile>,
    /// `w_m^(L+1)`: max |w| over the output node's incoming synapses.
    pub w_out: f64,
    /// The Byzantine value magnitude `C` (Assumption 1); `+inf` encodes the
    /// unbounded regime of Lemma 1.
    pub capacity: f64,
    /// `sup |ϕ|` — substituted for `C` in the crash-only case ("C can be
    /// replaced by the maximum of the activation function", Section IV-B).
    pub sup_activation: f64,
}

impl NetworkProfile {
    /// Build from an extracted [`Topology`] under Assumption 1 capacity
    /// `cap`.
    ///
    /// # Errors
    /// [`ProfileError::UnboundedActivation`] if any activation has no
    /// supremum; [`ProfileError::Empty`] for empty networks.
    pub fn from_topology(topo: &Topology, cap: Capacity) -> Result<Self, ProfileError> {
        if topo.layers.is_empty() {
            return Err(ProfileError::Empty);
        }
        let sup = topo
            .sup_activation()
            .ok_or(ProfileError::UnboundedActivation)?;
        if let Capacity::Bounded(c) = cap {
            if !(c.is_finite() && c > 0.0) {
                return Err(ProfileError::InvalidParameter("capacity"));
            }
        }
        Ok(NetworkProfile {
            layers: topo
                .layers
                .iter()
                .map(|l| LayerProfile {
                    n: l.neurons,
                    w_in: l.w_max_nonbias,
                    w_in_all: l.w_max,
                    k: l.lipschitz,
                })
                .collect(),
            w_out: topo.output.w_max,
            capacity: cap.value(),
            sup_activation: sup,
        })
    }

    /// Build directly from a network.
    ///
    /// # Errors
    /// Propagates [`NetworkProfile::from_topology`] errors.
    pub fn from_mlp(net: &Mlp, cap: Capacity) -> Result<Self, ProfileError> {
        Self::from_topology(&Topology::of(net), cap)
    }

    /// Uniform synthetic profile: `l` layers of `n` neurons, all weight
    /// maxima `w`, Lipschitz `k`, capacity `c` — the shape of the paper's
    /// worked discussions. Panics on non-positive parameters.
    pub fn uniform(l: usize, n: usize, w: f64, k: f64, c: f64) -> Self {
        assert!(
            l > 0 && n > 0,
            "uniform: need at least one layer and neuron"
        );
        assert!(
            w > 0.0 && k > 0.0 && c > 0.0,
            "uniform: parameters must be positive"
        );
        NetworkProfile {
            layers: vec![
                LayerProfile {
                    n,
                    w_in: w,
                    w_in_all: w,
                    k,
                };
                l
            ],
            w_out: w,
            capacity: c,
            sup_activation: 1.0,
        }
    }

    /// Number of layers `L`.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Neurons per layer.
    pub fn widths(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.n).collect()
    }

    /// Network-wide `K = max_l K_l` (the paper's single constant).
    pub fn lipschitz(&self) -> f64 {
        self.layers.iter().map(|l| l.k).fold(0.0, f64::max)
    }

    /// Whether Assumption 1 holds for this profile.
    pub fn is_bounded(&self) -> bool {
        self.capacity.is_finite()
    }

    /// The per-fault error magnitude for a fault class: `sup |ϕ|` for
    /// crashes, the capacity `C` for paper-convention Byzantine faults, and
    /// `C + sup |ϕ|` for the strict accounting (see [`FaultClass`]).
    pub fn fault_magnitude(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::Crash => self.sup_activation,
            FaultClass::Byzantine => self.capacity,
            FaultClass::ByzantineStrict => self.capacity + self.sup_activation,
        }
    }

    /// Profile transform for Corollary 1 over-provisioning: widen every
    /// layer by `m` while scaling all weights by `1/m` (the represented
    /// function is preserved to first order: `m` times more neurons, each
    /// contributing `1/m` of the signal). Under this transform every Fep
    /// term shrinks like `1/m`, which is what makes Corollary 1
    /// constructive.
    #[must_use]
    pub fn widened(&self, m: usize) -> NetworkProfile {
        assert!(m >= 1, "widened: factor must be at least 1");
        let mf = m as f64;
        NetworkProfile {
            layers: self
                .layers
                .iter()
                .map(|l| LayerProfile {
                    n: l.n * m,
                    w_in: l.w_in / mf,
                    w_in_all: l.w_in_all / mf,
                    k: l.k,
                })
                .collect(),
            w_out: self.w_out / mf,
            capacity: self.capacity,
            sup_activation: self.sup_activation,
        }
    }

    /// Retune all layers' Lipschitz constants (the Figure 3 sweep).
    #[must_use]
    pub fn with_lipschitz(&self, k: f64) -> NetworkProfile {
        assert!(k > 0.0, "with_lipschitz: K must be positive");
        let mut p = self.clone();
        for l in &mut p.layers {
            l.k = k;
        }
        p
    }

    /// Validate a per-layer fault distribution `(f_l)` against this profile.
    ///
    /// # Panics
    /// If `faults.len() != L` or any `f_l > N_l`.
    pub(crate) fn check_faults(&self, faults: &[usize]) {
        assert_eq!(
            faults.len(),
            self.layers.len(),
            "fault distribution length {} != {} layers",
            faults.len(),
            self.layers.len()
        );
        for (i, (&f, l)) in faults.iter().zip(&self.layers).enumerate() {
            assert!(
                f <= l.n,
                "layer {} ({} neurons) cannot lose {} neurons",
                i + 1,
                l.n,
                f
            );
        }
    }
}

/// The neuron-failure semantics of Definition 2, plus the strict Byzantine
/// accounting (a reproduction finding — see below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// Crash: the neuron stops sending; others read `y = 0`. Worst-case
    /// per-fault magnitude is `sup |ϕ|` (the lost nominal output).
    Crash,
    /// Byzantine with the **paper's** per-fault magnitude `C`: Theorem 2's
    /// proof bounds the faulty *transmitted value* `|v| ≤ C` (Assumption 1)
    /// and uses `C` as the per-fault error magnitude.
    Byzantine,
    /// Byzantine with the **strict** per-fault magnitude `C + sup ϕ`: the
    /// output *error* of a value-bounded Byzantine neuron is
    /// `|v − y| ≤ C + sup ϕ` — an adversary sending `−C` against a
    /// saturated nominal `y ≈ sup ϕ` exceeds the paper's `C` whenever the
    /// nominal is non-negligible (observably so for `C < sup ϕ`). The
    /// fault-injection suite validates against this class; experiment E6
    /// reports both. This is reproduction finding #2 in DESIGN.md.
    ByzantineStrict,
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::builder::MlpBuilder;
    use neurofail_tensor::init::Init;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_net() -> Mlp {
        MlpBuilder::new(3)
            .dense(8, Activation::Sigmoid { k: 2.0 })
            .dense(4, Activation::Sigmoid { k: 1.0 })
            .init(Init::Uniform { a: 0.5 })
            .bias(false)
            .build(&mut SmallRng::seed_from_u64(7))
    }

    #[test]
    fn from_mlp_extracts_shape() {
        let p = NetworkProfile::from_mlp(&sample_net(), Capacity::Bounded(2.0)).unwrap();
        assert_eq!(p.depth(), 2);
        assert_eq!(p.widths(), vec![8, 4]);
        assert_eq!(p.lipschitz(), 2.0);
        assert_eq!(p.capacity, 2.0);
        assert_eq!(p.sup_activation, 1.0);
        assert!(p.layers.iter().all(|l| l.w_in <= 0.5 && l.w_in > 0.0));
    }

    #[test]
    fn unbounded_capacity_is_infinite() {
        let p = NetworkProfile::from_mlp(&sample_net(), Capacity::Unbounded).unwrap();
        assert!(!p.is_bounded());
        assert_eq!(p.capacity, f64::INFINITY);
    }

    #[test]
    fn relu_networks_are_rejected() {
        let net = MlpBuilder::new(2)
            .dense(3, Activation::Relu)
            .build(&mut SmallRng::seed_from_u64(1));
        let err = NetworkProfile::from_mlp(&net, Capacity::Bounded(1.0)).unwrap_err();
        assert_eq!(err, ProfileError::UnboundedActivation);
    }

    #[test]
    fn invalid_capacity_rejected() {
        let err = NetworkProfile::from_mlp(&sample_net(), Capacity::Bounded(-1.0)).unwrap_err();
        assert_eq!(err, ProfileError::InvalidParameter("capacity"));
    }

    #[test]
    fn uniform_profile_shape() {
        let p = NetworkProfile::uniform(3, 10, 0.2, 1.5, 1.0);
        assert_eq!(p.depth(), 3);
        assert_eq!(p.widths(), vec![10, 10, 10]);
        assert_eq!(p.w_out, 0.2);
        assert_eq!(p.lipschitz(), 1.5);
    }

    #[test]
    fn widened_scales_inversely() {
        let p = NetworkProfile::uniform(2, 4, 0.8, 1.0, 1.0);
        let w = p.widened(4);
        assert_eq!(w.widths(), vec![16, 16]);
        assert_eq!(w.layers[0].w_in, 0.2);
        assert_eq!(w.w_out, 0.2);
        assert_eq!(w.capacity, p.capacity);
    }

    #[test]
    fn fault_magnitude_by_class() {
        let p = NetworkProfile::uniform(1, 4, 0.5, 1.0, 3.0);
        assert_eq!(p.fault_magnitude(FaultClass::Crash), 1.0);
        assert_eq!(p.fault_magnitude(FaultClass::Byzantine), 3.0);
        assert_eq!(p.fault_magnitude(FaultClass::ByzantineStrict), 4.0);
    }

    #[test]
    #[should_panic(expected = "cannot lose")]
    fn check_faults_rejects_overfull_layer() {
        let p = NetworkProfile::uniform(2, 4, 0.5, 1.0, 1.0);
        p.check_faults(&[5, 0]);
    }

    #[test]
    fn with_lipschitz_sets_all_layers() {
        let p = NetworkProfile::uniform(3, 4, 0.5, 1.0, 1.0).with_lipschitz(0.25);
        assert!(p.layers.iter().all(|l| l.k == 0.25));
    }
}

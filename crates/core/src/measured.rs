//! Measured tolerance thresholds — the empirical counterpart of
//! [`crate::tolerance`], routed through the checkpoint cache.
//!
//! The analytic searches in [`crate::tolerance`] ask how many faults fit
//! inside the slack `ε − ε'` *according to the bound*. The measured
//! searches here ask the same question of the **observed** disturbance
//! `|F_neu(X) − F_fail(X)|` over a fixed probe set (Halton/grid points,
//! a held-out dataset) — the quantity the paper's experiments price the
//! bound against. These searches share one expensive shape: across ε′
//! candidates, capacity candidates and repeated invocations, the *same*
//! probe set is re-evaluated against plan families on the *same*
//! network, so the nominal pass is identical every time. Both entry
//! points therefore take a
//! [`CheckpointCache`]: the first
//! evaluation of a `(net, probe set)` pair pays the one nominal pass,
//! and every later iteration — within a search and across searches —
//! resumes per-plan faulty suffixes against the cached checkpoint,
//! skipping the nominal pass entirely (observable through
//! [`CacheStats`](neurofail_inject::cache::CacheStats)).
//!
//! Values are **bitwise** independent of the cache (hit or miss, evicted
//! or resident): the cache only memoises a checkpoint the cold path
//! would recompute identically. Each request is routed through the
//! global cost-model [`Planner`] — with a cache in hand the model lands
//! on the cached engine, and a forced override
//! (`NEUROFAIL_PLANNER=whole-batch`) reroutes the same searches through
//! another engine bitwise identically (contract 14).

use std::sync::Arc;
use std::time::Instant;

use neurofail_inject::exhaustive::Combinations;
use neurofail_inject::{
    CheckpointCache, CompiledPlan, Engine, InjectionPlan, MultiPlanEvaluator, Planner, RequestMix,
};
use neurofail_nn::{BatchWorkspace, Mlp};
use neurofail_tensor::Matrix;

use crate::budget::EpsilonBudget;

/// `C(n, k)` for the planner's request-mix sizing. Saturates instead of
/// overflowing — an approximate plan count only skews a cost estimate,
/// never a value.
fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc = 1usize;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

/// One ε′ candidate's measured crash threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredThreshold {
    /// The ε′ candidate this row answers for.
    pub eps_prime: f64,
    /// Largest `k` such that **every** `j ≤ k`-subset crash family at the
    /// probed layer keeps the measured worst disturbance within
    /// `ε − ε′`.
    pub max_faults: usize,
    /// The measured worst disturbance at `max_faults` (0 for
    /// `max_faults == 0`).
    pub worst_error: f64,
}

/// Measured worst disturbance of the exhaustive `k`-crash family at
/// `layer`, evaluated over `xs` through the engine the global
/// [`Planner`] picks for the family's request mix. With a warm or cold
/// cache the cost model lands on the cached engine (one nominal pass per
/// distinct `(net, xs)`, ever); a forced override routes the same family
/// through another engine, bitwise identically (contract 14).
fn worst_crash_error(
    net: &Arc<Mlp>,
    layer: usize,
    k: usize,
    xs: &Matrix,
    capacity: f64,
    cache: &mut CheckpointCache,
    scratch: &mut BatchWorkspace,
) -> f64 {
    let width = net.widths()[layer];
    let depth = net.depth();
    let plans = binomial(width, k);
    let planner = Planner::global();
    let mix = RequestMix {
        rows: xs.rows(),
        plans,
        depth,
        suffix_layers: plans.saturating_mul(depth - layer),
        cache_available: true,
        cache_resident: cache.contains(net, xs),
        stream_prefix_rows: 0,
    };
    let engine = planner.choose(&mix);
    let start = Instant::now();
    let mut worst = 0.0f64;
    let mut fold = |errors: &[f64]| {
        for &e in errors {
            worst = worst.max(e);
        }
    };
    let compile = |subset: &[usize]| {
        let plan = InjectionPlan::crash(subset.iter().map(|&n| (layer, n)));
        CompiledPlan::compile(&plan, net, capacity).expect("in-range subset")
    };
    match engine {
        Engine::Cached => {
            // One cache resolution (hash + bitwise witness check) for the
            // whole family; every subset then resumes against the
            // borrowed checkpoint.
            let ck = cache.checkpoint(net, xs);
            for subset in Combinations::new(width, k) {
                let compiled = compile(&subset);
                fold(&compiled.output_error_checkpointed(net, xs, ck.ws, ck.nominal_y, scratch));
            }
        }
        Engine::SuffixResume | Engine::Streaming => {
            // No ingest state here, so a forced streaming pick runs the
            // suffix engine — bitwise equal by contract.
            let mut eval = MultiPlanEvaluator::new(net, xs);
            for subset in Combinations::new(width, k) {
                fold(&eval.output_error(&compile(&subset)));
            }
        }
        Engine::WholeBatch | Engine::Singleton => {
            // Per-row dispatch buys nothing on a fixed probe matrix; the
            // whole-batch engine is the singleton engine's batched twin
            // (contract 5), so both picks run it.
            for subset in Combinations::new(width, k) {
                fold(&compile(&subset).output_error_batch(net, xs, scratch));
            }
        }
    }
    planner.observe(engine, &mix, start.elapsed().as_nanos() as u64);
    worst
}

/// For each ε′ candidate, the largest crash count at `layer` whose
/// measured worst-case disturbance over the probe set `xs` stays within
/// the slack `ε − ε′` — the inverse tolerance question of
/// [`crate::tolerance::greedy_max_faults`], answered by measurement
/// instead of the Theorem 1 bound (the measured threshold is never
/// smaller: the bound is sound).
///
/// The per-`k` worst disturbances are ε′-independent, so they are
/// evaluated lazily once and shared across every candidate; the nominal
/// pass over `xs` is shared across *everything* through `cache` —
/// repeated calls (e.g. re-running the sweep as the probe set version
/// changes or with refined ε′ grids) skip it entirely.
///
/// ε′ candidates that do not form a valid budget with `eps`
/// (non-positive, or ≥ ε) report a threshold of 0 faults.
///
/// # Panics
/// If `layer` is out of range for `net` (via `widths()` indexing).
pub fn measured_crash_thresholds(
    net: &Arc<Mlp>,
    layer: usize,
    xs: &Matrix,
    eps: f64,
    eps_primes: &[f64],
    capacity: f64,
    cache: &mut CheckpointCache,
) -> Vec<MeasuredThreshold> {
    let width = net.widths()[layer];
    let mut scratch = BatchWorkspace::default();
    // Lazily memoised worst-per-k, shared across all ε′ candidates.
    let mut worsts: Vec<Option<f64>> = vec![None; width + 1];
    worsts[0] = Some(0.0);
    eps_primes
        .iter()
        .map(|&eps_prime| {
            let Ok(budget) = EpsilonBudget::new(eps, eps_prime) else {
                return MeasuredThreshold {
                    eps_prime,
                    max_faults: 0,
                    worst_error: 0.0,
                };
            };
            let slack = budget.slack();
            let mut max_faults = 0;
            let mut worst_error = 0.0;
            for (k, slot) in worsts.iter_mut().enumerate().skip(1) {
                let w = *slot.get_or_insert_with(|| {
                    worst_crash_error(net, layer, k, xs, capacity, cache, &mut scratch)
                });
                if w > slack {
                    break;
                }
                max_faults = k;
                worst_error = w;
            }
            MeasuredThreshold {
                eps_prime,
                max_faults,
                worst_error,
            }
        })
        .collect()
}

/// One capacity candidate's measured admissibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPoint {
    /// The synaptic capacity `C` the plan was compiled under.
    pub capacity: f64,
    /// Measured worst disturbance of the plan over the probe set.
    pub worst_error: f64,
    /// Whether the worst disturbance stays within the slack `ε − ε'`.
    pub admissible: bool,
}

/// Measured admissibility of one fault plan across a capacity sweep: for
/// each candidate `C`, compile `plan` under `C`, evaluate its worst
/// disturbance over the probe set `xs`, and compare against the budget's
/// slack. No monotonicity is assumed (squashing layers can shrink a
/// larger intermediate deviation), so the whole candidate list is
/// evaluated — which is exactly why the cache matters: every iteration
/// re-evaluates the same `(net, xs)` pair, and all but the first resume
/// from the cached nominal checkpoint.
///
/// # Panics
/// If `plan` does not compile against `net` (out-of-range sites), or a
/// candidate capacity is ≤ 0 (the [`CompiledPlan::compile`] contract).
pub fn measured_capacity_sweep(
    net: &Arc<Mlp>,
    plan: &InjectionPlan,
    xs: &Matrix,
    budget: EpsilonBudget,
    capacities: &[f64],
    cache: &mut CheckpointCache,
) -> Vec<CapacityPoint> {
    let slack = budget.slack();
    let mut scratch = BatchWorkspace::default();
    let planner = Planner::global();
    capacities
        .iter()
        .map(|&capacity| {
            let compiled = CompiledPlan::compile(plan, net, capacity).expect("plan fits net");
            let mix = RequestMix {
                rows: xs.rows(),
                plans: 1,
                depth: net.depth(),
                suffix_layers: net.depth() - compiled.first_faulty_layer(),
                cache_available: true,
                cache_resident: cache.contains(net, xs),
                stream_prefix_rows: 0,
            };
            let engine = planner.choose(&mix);
            let start = Instant::now();
            let errors = match engine {
                Engine::Cached => cache
                    .output_error_many(net, xs, std::slice::from_ref(&compiled), &mut scratch)
                    .swap_remove(0),
                Engine::SuffixResume | Engine::Streaming => {
                    MultiPlanEvaluator::new(net, xs).output_error(&compiled)
                }
                Engine::WholeBatch | Engine::Singleton => {
                    compiled.output_error_batch(net, xs, &mut scratch)
                }
            };
            planner.observe(engine, &mix, start.elapsed().as_nanos() as u64);
            let worst_error = errors.iter().fold(0.0f64, |a, &e| a.max(e));
            CapacityPoint {
                capacity,
                worst_error,
                admissible: worst_error <= slack,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurofail_data::rng::rng;
    use neurofail_inject::ByzantineStrategy;
    use neurofail_nn::activation::Activation;
    use neurofail_nn::builder::MlpBuilder;
    use neurofail_tensor::init::Init;

    fn probe_net() -> Arc<Mlp> {
        Arc::new(
            MlpBuilder::new(2)
                .dense(4, Activation::Sigmoid { k: 1.0 })
                .dense(3, Activation::Sigmoid { k: 1.0 })
                .init(Init::Uniform { a: 0.6 })
                .build(&mut rng(23)),
        )
    }

    fn probe_points() -> Matrix {
        Matrix::from_fn(12, 2, |r, c| 0.08 * r as f64 + 0.05 * c as f64)
    }

    #[test]
    fn thresholds_decrease_as_eps_prime_grows() {
        let net = probe_net();
        let xs = probe_points();
        let mut cache = CheckpointCache::new(2);
        // Slack 4.99 exceeds any disturbance this net can produce
        // (|F| ≤ Σ|w_out| ≤ 1.8, so |F_neu − F_fail| ≤ 3.6): the widest
        // budget must tolerate crashing the whole layer.
        let rows =
            measured_crash_thresholds(&net, 1, &xs, 5.0, &[0.01, 4.0, 4.9, 4.999], 1.0, &mut cache);
        assert_eq!(rows.len(), 4);
        // Shrinking slack can only shrink the measured threshold.
        for pair in rows.windows(2) {
            assert!(pair[0].max_faults >= pair[1].max_faults);
        }
        assert_eq!(rows[0].max_faults, 3);
        // An invalid budget (ε′ ≥ ε would be caught too) reports 0.
        let bad = measured_crash_thresholds(&net, 1, &xs, 5.0, &[-0.5], 1.0, &mut cache);
        assert_eq!(bad[0].max_faults, 0);
        // One nominal pass total: everything after the first family
        // evaluation hit the cache.
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert!(stats.hits > 0);
    }

    #[test]
    fn repeated_searches_skip_the_nominal_pass() {
        let net = probe_net();
        let xs = probe_points();
        let mut cache = CheckpointCache::new(2);
        let first = measured_crash_thresholds(&net, 0, &xs, 0.8, &[0.1, 0.4], 1.0, &mut cache);
        let misses_after_first = cache.stats().misses;
        let second = measured_crash_thresholds(&net, 0, &xs, 0.8, &[0.1, 0.4], 1.0, &mut cache);
        assert_eq!(first, second);
        assert_eq!(
            cache.stats().misses,
            misses_after_first,
            "the re-run must not pay a nominal pass"
        );
    }

    #[test]
    fn capacity_sweep_prices_byzantine_clamps() {
        let net = probe_net();
        let xs = probe_points();
        let plan = InjectionPlan::byzantine([(1, 0)], ByzantineStrategy::MaxPositive);
        let budget = EpsilonBudget::new(0.6, 0.1).unwrap();
        let mut cache = CheckpointCache::new(2);
        let capacities = [0.05, 0.5, 2.0, 8.0];
        let sweep = measured_capacity_sweep(&net, &plan, &xs, budget, &capacities, &mut cache);
        assert_eq!(sweep.len(), 4);
        // Every point is bitwise what the cold (uncached) engine reports,
        // and admissibility is exactly the slack comparison.
        let mut ws = BatchWorkspace::default();
        for (point, &capacity) in sweep.iter().zip(&capacities) {
            let compiled = CompiledPlan::compile(&plan, &net, capacity).unwrap();
            let direct = compiled
                .output_error_batch(&net, &xs, &mut ws)
                .iter()
                .fold(0.0f64, |a, &e| a.max(e));
            assert_eq!(point.worst_error.to_bits(), direct.to_bits());
            assert_eq!(point.admissible, direct <= budget.slack());
        }
        // A clamp far above the nominal activation range dominates one
        // barely above it: the C = 8 deviation |C − y| is ≥ 7 against the
        // C = 2 deviation's ≤ 2 through the same output weight.
        assert!(sweep[3].worst_error > sweep[2].worst_error);
        // All four candidates shared one nominal pass.
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
    }
}

//! Corollary 2: boosting computations with quorum waits.
//!
//! If a crash distribution `(f_l)` satisfies Theorem 3 (with `C = sup ϕ`),
//! then each neuron of layer `l` needs only `N_{l−1} − f_{l−1}` signals from
//! layer `l−1` before firing: missing (slow) neurons can be *reset* and
//! treated as crashed — by assumption the network tolerates that — so
//! nobody ever waits for stragglers beyond the quorum. The distributed
//! simulation of this scheme (wait-for-quorum, reset the rest, measure the
//! makespan) lives in `neurofail-distsim::boost`; this module computes the
//! quorum table.

use serde::{Deserialize, Serialize};

use crate::budget::EpsilonBudget;
use crate::crash::crash_tolerates;
use crate::profile::{FaultClass, NetworkProfile};
use crate::tolerance::greedy_max_faults;

/// The per-layer wait quotas implied by a crash distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuorumTable {
    /// The admissible crash distribution backing the table.
    pub faults: Vec<usize>,
    /// `quorums[i] = N_{i+1} − f_{i+1}`: how many layer-(i+1) signals a
    /// neuron of layer i+2 (or the output node for the last entry) must
    /// wait for.
    pub quorums: Vec<usize>,
}

impl QuorumTable {
    /// Fraction of signals that may be skipped per layer (`f_l / N_l`).
    pub fn skip_fractions(&self, profile: &NetworkProfile) -> Vec<f64> {
        self.faults
            .iter()
            .zip(&profile.layers)
            .map(|(&f, l)| f as f64 / l.n.max(1) as f64)
            .collect()
    }
}

/// Quorum table for a *given* admissible crash distribution.
///
/// # Panics
/// If `faults` mismatches the profile; asserts (debug) that the
/// distribution is indeed tolerated, which Corollary 2 requires.
pub fn quorums_for(
    profile: &NetworkProfile,
    faults: &[usize],
    budget: EpsilonBudget,
) -> QuorumTable {
    profile_quorums(profile, faults, Some(budget))
}

/// Quorum table for the greedy-maximal admissible crash distribution: the
/// most waiting the network can provably skip.
pub fn admissible_quorums(profile: &NetworkProfile, budget: EpsilonBudget) -> QuorumTable {
    let faults = greedy_max_faults(profile, budget, FaultClass::Crash);
    profile_quorums(profile, &faults, None)
}

fn profile_quorums(
    profile: &NetworkProfile,
    faults: &[usize],
    check: Option<EpsilonBudget>,
) -> QuorumTable {
    profile.check_faults(faults);
    if let Some(budget) = check {
        assert!(
            crash_tolerates(profile, faults, budget),
            "Corollary 2 requires an admissible crash distribution"
        );
    }
    QuorumTable {
        faults: faults.to_vec(),
        quorums: profile
            .layers
            .iter()
            .zip(faults)
            .map(|(l, &f)| l.n - f)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(e: f64, ep: f64) -> EpsilonBudget {
        EpsilonBudget::new(e, ep).unwrap()
    }

    #[test]
    fn quorums_complement_faults() {
        let p = NetworkProfile::uniform(3, 10, 0.01, 1.0, 1.0);
        let b = budget(0.5, 0.1);
        let t = quorums_for(&p, &[2, 3, 0], b);
        assert_eq!(t.quorums, vec![8, 7, 10]);
        assert_eq!(t.skip_fractions(&p), vec![0.2, 0.3, 0.0]);
    }

    #[test]
    fn admissible_table_is_tolerated() {
        let p = NetworkProfile::uniform(2, 20, 0.02, 1.0, 1.0);
        let b = budget(0.6, 0.1);
        let t = admissible_quorums(&p, b);
        assert!(crash_tolerates(&p, &t.faults, b));
        assert!(t.faults.iter().sum::<usize>() > 0, "slack should buy skips");
        for (q, (f, l)) in t.quorums.iter().zip(t.faults.iter().zip(&p.layers)) {
            assert_eq!(q + f, l.n);
        }
    }

    #[test]
    #[should_panic(expected = "admissible crash distribution")]
    fn inadmissible_distribution_is_rejected() {
        let p = NetworkProfile::uniform(1, 10, 1.0, 1.0, 1.0);
        // Slack 0.1 but each crash costs w_out = 1.0.
        let _ = quorums_for(&p, &[5], budget(0.2, 0.1));
    }

    #[test]
    fn zero_slack_means_full_wait() {
        let p = NetworkProfile::uniform(2, 8, 0.1, 1.0, 1.0);
        let t = admissible_quorums(&p, budget(0.1, 0.1));
        assert_eq!(t.faults, vec![0, 0]);
        assert_eq!(t.quorums, vec![8, 8]);
    }
}

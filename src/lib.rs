//! # neurofail
//!
//! Facade crate re-exporting the `neurofail` workspace: fault-tolerance
//! bounds and fault-injection experimentation for feed-forward neural
//! networks viewed as distributed systems, reproducing El Mhamdi &
//! Guerraoui, *When Neurons Fail* (IPPS 2017).
//!
//! See the README for a tour and `ARCHITECTURE.md` for the engine
//! inventory and the determinism contracts that tie them together.

#![warn(missing_docs)]

pub use neurofail_core as core;
pub use neurofail_data as data;
pub use neurofail_distsim as distsim;
pub use neurofail_fleet as fleet;
pub use neurofail_inject as inject;
pub use neurofail_nn as nn;
pub use neurofail_par as par;
pub use neurofail_quant as quant;
pub use neurofail_serve as serve;
pub use neurofail_tensor as tensor;

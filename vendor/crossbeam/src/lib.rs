//! Minimal in-tree shim providing the `crossbeam` API surface the
//! workspace uses, built on `std`:
//!
//! * [`thread::scope`] — scoped threads returning `Err` (instead of
//!   unwinding) when a worker panics, as crossbeam does;
//! * [`channel`] — `unbounded` MPSC channels (`std::sync::mpsc` wrappers).

/// Scoped threads over `std::thread::scope` with crossbeam's
/// `Result`-returning panic contract.
pub mod thread {
    use std::any::Any;

    /// Result of a scope: `Err` carries a worker's panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; closures passed to [`Scope::spawn`] receive a
    /// reference to it (enabling nested spawns, which the workspace does
    /// not use but the signature allows).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker inside the scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Run `f` with a scope; all spawned workers are joined before this
    /// returns. A worker panic is captured and returned as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// MPSC channels with the `crossbeam::channel` construction API.
pub mod channel {
    /// Sending half (cloneable).
    pub use std::sync::mpsc::Sender;

    /// Receiving half.
    pub use std::sync::mpsc::Receiver;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        let r = super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(r.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channels_deliver_in_order() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }
}

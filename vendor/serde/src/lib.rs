//! Minimal in-tree serialization framework exposing the `serde` API surface
//! the workspace uses: `#[derive(Serialize, Deserialize)]` plus
//! `serde_json::{to_string, to_string_pretty, from_str}`.
//!
//! Unlike real serde's visitor architecture, this implementation is
//! value-based: [`Serialize`] renders into a JSON-shaped [`Value`] tree and
//! [`Deserialize`] reads back out of one. That is exactly sufficient for
//! the workspace's needs (reports, golden files, round-trip tests) and
//! keeps the offline build dependency-free.
//!
//! Representation contract (mirrors serde's external enum tagging):
//!
//! * structs → maps in field order;
//! * unit enum variants → the variant name as a string;
//! * newtype/tuple variants → `{"Variant": payload}` (payload is an array
//!   for multi-field tuple variants);
//! * struct variants → `{"Variant": {fields…}}`;
//! * `Option` → `null` / payload.
//!
//! Numeric fidelity: `u64`/`usize`/`i64` round-trip exactly through
//! [`Value::U64`]/[`Value::I64`]; `f64` round-trips exactly through the
//! shortest-representation formatter (`±inf` is written as `±1e999`, which
//! parses back to the infinities).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (also carries `usize`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Map with preserved key order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error raised by deserialization (and JSON parsing in `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`].
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse the value tree.
    ///
    /// # Errors
    /// [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch a struct field from a map value (derive-generated code helper).
///
/// # Errors
/// [`Error`] when the key is absent.
pub fn map_get<'v>(map: &'v [(String, Value)], key: &str) -> Result<&'v Value, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(format!("missing field `{key}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(u) => Ok(u as f64),
            Value::I64(i) => Ok(i as f64),
            _ => Err(Error::new("expected number")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(u) => <$t>::try_from(u)
                        .map_err(|_| Error::new("integer out of range")),
                    _ => Err(Error::new("expected unsigned integer")),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match *v {
                    Value::I64(i) => i,
                    Value::U64(u) => i64::try_from(u)
                        .map_err(|_| Error::new("integer out of range"))?,
                    _ => return Err(Error::new("expected integer")),
                };
                <$t>::try_from(wide).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::new("expected pair"))?;
        if a.len() != 2 {
            return Err(Error::new("expected 2-element array"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::from_value(&3.5f64.to_value()).unwrap(), 3.5);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(i64::from_value(&(-4i64).to_value()).unwrap(), -4);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = Some(9);
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&n.to_value()).unwrap(), n);
    }

    #[test]
    fn map_get_reports_missing_fields() {
        let m = vec![("a".to_string(), Value::U64(1))];
        assert!(map_get(&m, "a").is_ok());
        assert!(map_get(&m, "b").is_err());
    }
}

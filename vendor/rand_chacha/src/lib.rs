//! Minimal in-tree replacement for `rand_chacha`: a real ChaCha8 keystream
//! generator behind the workspace's [`rand`] traits.
//!
//! The workspace promises that its deterministic RNG streams are *specified
//! and stable across platforms and releases*. That property comes from the
//! ChaCha block function itself (pure 32-bit integer arithmetic) plus the
//! fixed SplitMix64 seed expansion below — there is no platform-dependent
//! code path.

/// Re-export of the core traits, mirroring `rand_chacha`'s public
/// `rand_core` module (used as `rand_chacha::rand_core::SeedableRng`).
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

/// The ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds — the workspace's deterministic generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    input: [u32; 16],
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word of `buf` (16 = exhausted).
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.input;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal).
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(&self.input) {
            *o = o.wrapping_add(*i);
        }
        self.buf = x;
        self.idx = 0;
        // 64-bit block counter in words 12..13.
        let (lo, carry) = self.input[12].overflowing_add(1);
        self.input[12] = lo;
        if carry {
            self.input[13] = self.input[13].wrapping_add(1);
        }
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed into a 256-bit key with SplitMix64 (the same
        // expansion rand's SeedableRng default uses in spirit).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut input = [0u32; 16];
        // "expand 32-byte k" constants.
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646E;
        input[2] = 0x7962_2D32;
        input[3] = 0x6B20_6574;
        for i in 0..4 {
            let k = next();
            input[4 + 2 * i] = k as u32;
            input[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            input,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_is_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_and_blocks_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
        // Counter advances: consecutive blocks differ.
        let block1: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let block2: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        assert_ne!(block1, block2);
    }

    #[test]
    fn chacha_quarter_round_rfc_vector() {
        // RFC 7539 §2.1.1 test vector for the quarter round.
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }
}

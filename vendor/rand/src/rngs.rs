//! Generators: [`SmallRng`] (xoshiro256++).

use crate::{RngCore, SeedableRng};

/// SplitMix64 step: seeds the main generator's state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A small, fast, non-cryptographic generator: xoshiro256++.
///
/// Stream quality passes BigCrush; the workspace uses it for weight
/// initialisation and test-case generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn output_is_not_constant() {
        let mut r = SmallRng::seed_from_u64(0);
        let first = r.next_u64();
        assert!((0..64).any(|_| r.next_u64() != first));
    }
}

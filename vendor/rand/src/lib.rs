//! Minimal, self-contained replacement for the subset of the `rand` 0.8 API
//! used by the `neurofail` workspace.
//!
//! The build environment is fully offline, so the workspace vendors tiny
//! implementations of its external dependencies instead of pulling crates
//! from a registry. This crate provides:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] with `gen`, `gen_range`,
//!   `gen_bool` over the types the workspace draws (`u8..u64`, `usize`,
//!   `f64`, `bool`),
//! * [`rngs::SmallRng`] (xoshiro256++, SplitMix64-seeded),
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates),
//! * [`thread_rng`] (time-seeded `SmallRng`; used only by doc examples).
//!
//! Determinism contract: for a fixed seed every generator here produces the
//! same stream on every platform — all arithmetic is integer or exact
//! `u64 → f64` scaling.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build the generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;

    /// Build from unpredictable (time-derived) seed material.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Types samplable uniformly from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Map 64 random bits to `[0, 1)` with 53-bit resolution.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end);
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        debug_assert!(a <= b);
        a + unit_f64(rng.next_u64()) * (b - a)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range");
                let span = (b - a) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                a + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A time-seeded generator for examples and doc tests. Not deterministic —
/// every deterministic workspace pipeline goes through `neurofail-data`'s
/// seeded constructors instead.
pub fn thread_rng() -> rngs::SmallRng {
    rngs::SmallRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(-2.0..=3.0);
            assert!((-2.0..=3.0).contains(&x));
            let n: u8 = r.gen_range(0..10u8);
            assert!(n < 10);
            let u: f64 = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..=1.0).contains(&u));
        }
    }

    #[test]
    fn unit_f64_is_half_open() {
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}

//! Sequence utilities: in-place shuffling.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Uniformly shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=(i as u64)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        a.shuffle(&mut SmallRng::seed_from_u64(9));
        b.shuffle(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

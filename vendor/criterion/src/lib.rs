//! Minimal in-tree benchmark harness exposing the `criterion` API surface
//! the workspace's benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_with_input`, `BenchmarkId` and `black_box`.
//!
//! Measurement model: warm up for ~100 ms, then time batches until the
//! measurement window (default ~400 ms per benchmark) is filled, and report
//! the mean wall-clock time per iteration. No statistics machinery — the
//! workspace uses these numbers for before/after throughput comparisons,
//! recorded in CHANGES.md, not for rigorous regression detection.
//!
//! CLI: a single positional argument filters benchmarks by substring
//! (`cargo bench --bench forward -- campaign`); criterion's own flags are
//! accepted and ignored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion {
            filter,
            sample_size: 0,
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 0,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_benchmark(name, &self.filter, self.sample_size, f);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; scales the measurement window.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.0);
        run_benchmark(&name, &self.criterion.filter, self.sample_size, f);
    }

    /// Run a parameterised benchmark; the parameter is passed to the
    /// closure (criterion compatibility — most callers re-capture it).
    pub fn bench_with_input<P: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &P,
        mut f: impl FnMut(&mut Bencher, &P),
    ) {
        let name = format!("{}/{}", self.name, id.0);
        run_benchmark(&name, &self.criterion.filter, self.sample_size, |b| {
            f(b, input)
        });
    }

    /// End the group (prints nothing; groups are purely namespacing here).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Total time spent in timed iterations.
    elapsed: Duration,
    /// Number of timed iterations.
    iters: u64,
    /// Measurement window to fill.
    window: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement window is filled.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run until ~100 ms of wall clock have passed.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(100) {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size that keeps timer overhead below ~1%.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / (warm_iters as u128);
        let batch = (100_000 / per_iter.max(1)).clamp(1, 10_000) as u64;
        let start = Instant::now();
        while start.elapsed() < self.window {
            for _ in 0..batch {
                black_box(routine());
            }
            self.iters += batch;
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    name: &str,
    filter: &Option<String>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(needle) = filter {
        if !name.contains(needle.as_str()) {
            return;
        }
    }
    // sample_size is a criterion-compatibility knob: larger requested
    // sample counts get a longer window, smaller get a shorter one.
    let window_ms = match sample_size {
        0 => 400,
        n => (n as u64 * 4).clamp(100, 2_000),
    };
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        window: Duration::from_millis(window_ms),
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<56} (no iterations)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let (scaled, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else {
        (ns / 1_000_000.0, "ms")
    };
    println!(
        "{name:<56} time: {scaled:>10.3} {unit}/iter  ({} iters)",
        b.iters
    );
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        // Shrink the window so the self-test stays fast.
        let mut group = c.benchmark_group("selftest");
        group.sample_size(25);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &p| {
            b.iter(|| black_box(p) * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_counts_iterations() {
        let mut c = Criterion {
            filter: None,
            sample_size: 25,
        };
        quick(&mut c);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nothing-matches-this".into()),
            sample_size: 25,
        };
        // Would take ~1s per bench if not filtered; the test passing
        // instantly demonstrates the filter works.
        let t = std::time::Instant::now();
        quick(&mut c);
        assert!(t.elapsed() < Duration::from_millis(200));
    }
}

//! `#[derive(Serialize, Deserialize)]` for the in-tree `serde` replacement.
//!
//! The offline build has no `syn`/`quote`, so the item is parsed directly
//! from the `proc_macro::TokenStream`. Supported shapes are exactly what
//! the workspace derives on: non-generic named-field structs and non-generic
//! enums with unit, tuple and struct variants. Anything else panics at
//! expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    /// Named-field struct with its field names.
    Struct(Vec<String>),
    /// Enum with its variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with the number of payload fields.
    Tuple(usize),
    /// Struct variant with its field names.
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let code = match &shape {
        Shape::Struct(fields) => serialize_struct(&name, fields),
        Shape::Enum(variants) => serialize_enum(&name, variants),
    };
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let code = match &shape {
        Shape::Struct(fields) => deserialize_struct(&name, fields),
        Shape::Enum(variants) => deserialize_enum(&name, variants),
    };
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    let kw = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive: generic types are not supported (offline mini-serde)")
            }
            Some(_) => continue,
            None => panic!("serde_derive: missing braced body for {name}"),
        }
    };
    let shape = match kw.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body.stream())),
        "enum" => Shape::Enum(parse_variants(body.stream())),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consume any number of `#[...]` attributes (including doc comments).
fn skip_attributes(iter: &mut TokenIter) {
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(_)) => {}
            other => panic!("serde_derive: malformed attribute, got {other:?}"),
        }
    }
}

/// Consume `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

/// Field names of a `{ name: Type, ... }` body. Types are skipped by
/// scanning to the next top-level comma, tracking `<...>` nesting (commas
/// inside angle brackets belong to the type).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    fields
}

/// Variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while let Some(tt) = iter.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    iter.next();
                    break;
                }
                _ => {
                    iter.next();
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Number of fields in a tuple-variant payload `(TypeA, TypeB, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut segments = 0usize;
    let mut segment_has_tokens = false;
    let mut iter = stream.into_iter().peekable();
    loop {
        // Attributes (doc comments on payload fields) do not count as
        // segment content on their own.
        skip_attributes(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                angle += 1;
                segment_has_tokens = true;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                angle -= 1;
                segment_has_tokens = true;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                if segment_has_tokens {
                    segments += 1;
                }
                segment_has_tokens = false;
            }
            Some(_) => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        segments += 1;
    }
    segments
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(::std::vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::map_get(m, \"{f}\")?)?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let m = v.as_map().ok_or_else(|| ::serde::Error::new(\"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                ),
                VariantKind::Tuple(1) => format!(
                    "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![\
                     (::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                ),
                VariantKind::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let values: String = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b}),"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                          ::serde::Value::Array(::std::vec![{values}]))]),",
                        binders.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let binders = fields.join(", ");
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f})),"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binders} }} => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                          ::serde::Value::Map(::std::vec![{entries}]))]),"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            let vn = &v.name;
            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => unreachable!(),
                VariantKind::Tuple(1) => format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(payload)?)),"
                ),
                VariantKind::Tuple(n) => {
                    let inits: String = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?,"))
                        .collect();
                    format!(
                        "\"{vn}\" => {{\n\
                             let a = payload.as_array()\
                                 .ok_or_else(|| ::serde::Error::new(\"expected array for {name}::{vn}\"))?;\n\
                             if a.len() != {n} {{\n\
                                 return ::std::result::Result::Err(\
                                     ::serde::Error::new(\"wrong arity for {name}::{vn}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn}({inits}))\n\
                         }}"
                    )
                }
                VariantKind::Struct(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::map_get(m, \"{f}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "\"{vn}\" => {{\n\
                             let m = payload.as_map()\
                                 .ok_or_else(|| ::serde::Error::new(\"expected map for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                         }}"
                    )
                }
            }
        })
        .collect();

    let has_unit = variants.iter().any(|v| matches!(v.kind, VariantKind::Unit));
    let has_tagged = variants
        .iter()
        .any(|v| !matches!(v.kind, VariantKind::Unit));
    let str_arm = if has_unit {
        format!(
            "::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::Error::new(\
                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
             }},"
        )
    } else {
        String::new()
    };
    let map_arm = if has_tagged {
        format!(
            "::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => ::std::result::Result::Err(::serde::Error::new(\
                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
             }},"
        )
    } else {
        String::new()
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     {str_arm}\n\
                     {map_arm}\n\
                     _ => ::std::result::Result::Err(::serde::Error::new(\
                         \"unexpected value shape for {name}\")),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

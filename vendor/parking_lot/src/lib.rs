//! Minimal in-tree shim over `std::sync::Mutex` exposing the
//! `parking_lot::Mutex` API surface the workspace uses: poison-free
//! `lock()` and by-value `into_inner()`.

/// A mutex whose `lock` never returns a poison error: a poisoned std mutex
/// is recovered transparently (the workspace's critical sections only push
/// into Vecs, so recovery is always safe).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock (blocking), recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_push_into_inner_roundtrip() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}

//! Minimal in-tree JSON serialization over the workspace's `serde::Value`.
//!
//! Provides exactly the API surface the workspace uses: [`to_string`],
//! [`to_string_pretty`] and [`from_str`]. Numbers round-trip exactly:
//! integers through dedicated `u64`/`i64` value variants, floats through
//! Rust's shortest-round-trip formatter. The non-JSON values `±inf` are
//! written as `±1e999`, which parse back to the infinities.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize to compact JSON.
///
/// # Errors
/// Never fails for the workspace's value shapes; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
///
/// # Errors
/// As [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON and deserialize.
///
/// # Errors
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => {
            out.push_str(&u.to_string());
        }
        Value::I64(i) => {
            out.push_str(&i.to_string());
        }
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            out,
            indent,
            depth,
            ('[', ']'),
            |item, out, indent, depth| {
                write_value(item, out, indent, depth);
            },
        ),
        Value::Map(entries) => write_seq(
            entries.iter(),
            out,
            indent,
            depth,
            ('{', '}'),
            |(k, val), out, indent, depth| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(I::Item, &mut String, Option<usize>, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(item, out, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(brackets.1);
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push_str("null");
    } else if x == f64::INFINITY {
        out.push_str("1e999");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        // Rust's Display for f64 is the shortest string that round-trips.
        let s = x.to_string();
        out.push_str(&s);
        // Keep the output recognisably floating-point so integers and
        // floats stay distinguishable after a round trip.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Bulk-copy the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(mag) = digits.parse::<i64>() {
                    return Ok(Value::I64(-mag));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_exactly() {
        for x in [0.5f64, -3.25, 1.0, 0.1, f64::MAX, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "{json}");
        }
        let big: u64 = u64::MAX - 3;
        let back: u64 = from_str(&to_string(&big).unwrap()).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn infinities_roundtrip() {
        let inf: f64 = from_str(&to_string(&f64::INFINITY).unwrap()).unwrap();
        assert_eq!(inf, f64::INFINITY);
        let ninf: f64 = from_str(&to_string(&f64::NEG_INFINITY).unwrap()).unwrap();
        assert_eq!(ninf, f64::NEG_INFINITY);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1.0f64, 2.0], vec![], vec![-0.5]];
        let back: Vec<Vec<f64>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let o: Option<Vec<u64>> = Some(vec![1, 2, 3]);
        let back: Option<Vec<u64>> = from_str(&to_string(&o).unwrap()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a \"quoted\" line\nwith\ttabs \\ and unicode: é".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v = vec![vec![1.0f64], vec![2.0]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<f64>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\":1}").is_err());
    }
}

//! Minimal in-tree property-testing harness with the `proptest` macro
//! surface the workspace uses.
//!
//! Differences from real proptest, deliberate for the offline build:
//!
//! * case generation is **deterministic**: case `i` of a test is produced
//!   by a fixed-seed RNG derived from the case index, so failures are
//!   reproducible without a persistence file;
//! * there is **no shrinking** — a failing case panics with its inputs
//!   (via the values interpolated in `prop_assert!` messages);
//! * strategies are plain samplers ([`Strategy`] = "draw a value"), which
//!   covers the range / vec / bool strategies the workspace uses.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A source of test cases: draw one value per case.
pub trait Strategy {
    /// The type of drawn values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<T: Strategy + ?Sized> Strategy for &T {
    type Value = T::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize);

/// A constant strategy (real proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Draw `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Acceptable length specifications for [`fn@vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut SmallRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Build a vector strategy with the given element strategy and length
    /// specification (`usize` or a range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG for case `index` of a named test.
pub fn case_rng(test_name: &str, index: u32) -> SmallRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(h ^ ((index as u64) << 32 | 0x9E37))
}

/// Everything the `proptest!` macro body needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
    pub use rand::Rng as _;
}

/// Reject the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` targeting the case loop, so it must be used at the
/// top level of a property body (which is how the workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert inside a property (panics with the interpolated message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case_index in 0..config.cases {
                let mut prop_rng = $crate::case_rng(stringify!($name), case_index);
                $(
                    let $pat = $crate::Strategy::sample(&($strat), &mut prop_rng);
                )+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_rng_is_deterministic_per_name_and_index() {
        use rand::RngCore;
        assert_eq!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("t", 3).next_u64()
        );
        assert_ne!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("t", 4).next_u64()
        );
        assert_ne!(
            crate::case_rng("a", 0).next_u64(),
            crate::case_rng("b", 0).next_u64()
        );
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in -2.0f64..2.0,
            n in 1usize..10,
            flag in crate::bool::ANY,
            xs in crate::collection::vec(0.0f64..1.0, 0..16),
        ) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            let _ = flag;
            prop_assert!(xs.len() < 16);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Doc comments on property tests are allowed.
        #[test]
        fn custom_case_count_runs(mut v in crate::collection::vec(0u64..10, 3)) {
            v.push(1);
            prop_assert_eq!(v.len(), 4);
        }
    }
}

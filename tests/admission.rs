//! Admission-pipeline contracts (PR 9): typed rejection, dedup of plans
//! equal-up-to-fault-value onto one shared compiled body, and
//! compiled-plan persistence (artifact-store record kind 2) with
//! warm-started admission across restarts.
//!
//! Everything here is counter-exact: the [`AdmissionStats`] snapshot must
//! account for every admission as exactly one of {cold compile, in-process
//! dedup hit, warm store load}, and rejected plans must leave no trace in
//! the registry. Results evaluated through admitted IRs are held
//! **bitwise** to a direct [`CompiledPlan::compile`] +
//! `output_error_batch` of the same `(net, plan)` — admission is a cache
//! in front of the compiler, never a different compiler.

use std::path::PathBuf;
use std::sync::Arc;

use neurofail::data::rng::rng;
use neurofail::inject::plan::{
    InjectionPlan, NeuronFault, NeuronSite, SynapseFault, SynapseSite, SynapseTarget,
};
use neurofail::inject::{ArtifactStore, CompiledPlan, PlanError, PlanRegistry};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::{BatchWorkspace, Mlp};
use neurofail::tensor::init::Init;
use neurofail::tensor::Matrix;
use rand::Rng;

fn net(seed: u64, depth: usize, width: usize) -> Arc<Mlp> {
    let mut b = MlpBuilder::new(4);
    for _ in 0..depth {
        b = b.dense(width, Activation::Sigmoid { k: 1.0 });
    }
    Arc::new(b.init(Init::Uniform { a: 0.5 }).build(&mut rng(seed)))
}

fn inputs(seed: u64, rows: usize) -> Matrix {
    let mut r = rng(seed);
    Matrix::from_fn(rows, 4, |_, _| r.gen_range(-1.0..=1.0))
}

fn stuck(layer: usize, neuron: usize, v: f64) -> InjectionPlan {
    InjectionPlan {
        neurons: vec![NeuronSite {
            layer,
            neuron,
            fault: NeuronFault::StuckAt(v),
        }],
        synapses: vec![],
    }
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nf-admission-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Out-of-range and duplicate sites are rejected with the typed
/// [`PlanError`], counted exactly once each, and leave the registry
/// untouched.
#[test]
fn rejection_is_typed_and_counted() {
    let net = net(11, 2, 5);
    let mut reg = PlanRegistry::new();

    let bad_neuron = stuck(9, 0, 1.0);
    assert_eq!(
        reg.register(Arc::clone(&net), &bad_neuron, 1.0),
        Err(PlanError::BadNeuron {
            layer: 9,
            neuron: 0
        })
    );

    let bad_synapse = InjectionPlan {
        neurons: vec![],
        synapses: vec![SynapseSite {
            target: SynapseTarget::Hidden {
                layer: 0,
                to: 99,
                from: 0,
            },
            fault: SynapseFault::Crash,
        }],
    };
    assert!(matches!(
        reg.register(Arc::clone(&net), &bad_synapse, 1.0),
        Err(PlanError::BadSynapse(_))
    ));

    let dup = InjectionPlan {
        neurons: vec![
            NeuronSite {
                layer: 1,
                neuron: 2,
                fault: NeuronFault::Crash,
            },
            NeuronSite {
                layer: 1,
                neuron: 2,
                fault: NeuronFault::StuckAt(0.5),
            },
        ],
        synapses: vec![],
    };
    assert_eq!(
        reg.register(Arc::clone(&net), &dup, 1.0),
        Err(PlanError::DuplicateNeuron {
            layer: 1,
            neuron: 2
        })
    );

    let stats = reg.admission_stats();
    assert_eq!(stats.rejected, 3);
    assert_eq!(stats.admitted, 0);
    assert_eq!(stats.bodies_compiled, 0);
    assert!(reg.is_empty(), "rejected plans must not register");
}

/// Plans that differ only in fault *values* share one compiled body
/// (structure bytes exclude the values), while a structurally different
/// plan compiles its own — and every admitted IR still evaluates bitwise
/// equal to a direct compile of its own `(net, plan)`.
#[test]
fn dedup_shares_bodies_across_fault_values() {
    let net = net(23, 3, 6);
    let mut reg = PlanRegistry::new();

    let a = stuck(1, 3, 0.25);
    let b = stuck(1, 3, -1.5); // same site+kind, different value
    let c = stuck(2, 3, 0.25); // different site: own body

    let ia = reg.register(Arc::clone(&net), &a, 1.0).unwrap();
    let ib = reg.register(Arc::clone(&net), &b, 1.0).unwrap();
    let ic = reg.register(Arc::clone(&net), &c, 1.0).unwrap();
    let ia2 = reg.register(Arc::clone(&net), &a, 1.0).unwrap(); // exact repeat

    let stats = reg.admission_stats();
    assert_eq!(stats.admitted, 4);
    assert_eq!(
        stats.bodies_compiled, 2,
        "a/b/a-again share one body, c has its own"
    );
    assert_eq!(stats.dedup_hits, 2);

    let [ra, rb, rc, ra2] = [ia, ib, ic, ia2].map(|id| reg.get(id).unwrap());
    assert!(ra.ir().shares_body_with(rb.ir()));
    assert!(ra.ir().shares_body_with(ra2.ir()));
    assert!(!ra.ir().shares_body_with(rc.ir()));
    assert_ne!(ra.ir().value_hash(), rb.ir().value_hash());
    assert_eq!(ra.ir().plan_key(), ra2.ir().plan_key());

    // Shared bodies never blur values: each IR's materialized plan is
    // bitwise the direct compile of its own plan.
    let xs = inputs(29, 7);
    let mut ws = BatchWorkspace::default();
    for (entry, plan) in [(ra, &a), (rb, &b), (rc, &c), (ra2, &a)] {
        let direct = CompiledPlan::compile(plan, &net, 1.0).unwrap();
        let want = direct.output_error_batch(&net, &xs, &mut ws);
        let got = entry.compiled().output_error_batch(&net, &xs, &mut ws);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}

/// Compiled bodies round-trip through the artifact store (record kind 2):
/// a restart re-admits from disk (`warm_admissions`, zero compiles), and a
/// corrupted record degrades to a cold compile instead of serving bad
/// bytes.
#[test]
fn compiled_plan_store_roundtrip_and_corruption() {
    let dir = store_dir("roundtrip");
    let net = net(41, 3, 6);
    let plan = stuck(1, 2, 0.75);
    let xs = inputs(43, 5);
    let mut ws = BatchWorkspace::default();
    let reference = CompiledPlan::compile(&plan, &net, 1.0)
        .unwrap()
        .output_error_batch(&net, &xs, &mut ws);

    // Cold process: compile once, publish the body.
    {
        let mut store = ArtifactStore::open(&dir).unwrap();
        let mut reg = PlanRegistry::new();
        reg.register_with_store(Arc::clone(&net), &plan, 1.0, &mut store)
            .unwrap();
        let s = reg.admission_stats();
        assert_eq!(
            (s.bodies_compiled, s.store_publishes, s.warm_admissions),
            (1, 1, 0)
        );
        store.flush_index().unwrap();
    }

    // Restart: the body comes back from disk, nothing recompiles, and
    // evaluation through the warm IR is bitwise the cold reference.
    {
        let mut store = ArtifactStore::open(&dir).unwrap();
        let mut reg = PlanRegistry::new();
        let id = reg
            .register_with_store(Arc::clone(&net), &plan, 1.0, &mut store)
            .unwrap();
        let s = reg.admission_stats();
        assert_eq!((s.bodies_compiled, s.warm_admissions), (0, 1), "{s:?}");
        let got = reg
            .get(id)
            .unwrap()
            .compiled()
            .output_error_batch(&net, &xs, &mut ws);
        for (g, w) in got.iter().zip(&reference) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        // Second admission in the same process hits the in-process body,
        // not the store again.
        reg.register_with_store(Arc::clone(&net), &plan, 1.0, &mut store)
            .unwrap();
        assert_eq!(reg.admission_stats().dedup_hits, 1);
    }

    // Corrupt every kind-2 record on disk: admission must degrade to a
    // cold compile (checksums reject the record) and still be correct.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.starts_with("02-") && name.ends_with(".rec") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, bytes).unwrap();
            corrupted += 1;
        }
    }
    assert_eq!(corrupted, 1, "expected exactly one compiled-plan record");
    {
        let mut store = ArtifactStore::open(&dir).unwrap();
        let mut reg = PlanRegistry::new();
        let id = reg
            .register_with_store(Arc::clone(&net), &plan, 1.0, &mut store)
            .unwrap();
        let s = reg.admission_stats();
        assert_eq!(s.warm_admissions, 0, "corrupted record must not admit");
        assert_eq!(s.bodies_compiled, 1);
        let got = reg
            .get(id)
            .unwrap()
            .compiled()
            .output_error_batch(&net, &xs, &mut ws);
        for (g, w) in got.iter().zip(&reference) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Families group by network *content*, not `Arc` identity: the same
/// weights rebuilt under a different `Arc` lands in the same family and
/// dedups against its bodies.
#[test]
fn dedup_spans_content_equal_networks() {
    let a = net(57, 2, 5);
    let b = net(57, 2, 5); // same seed → bitwise-equal weights, new Arc
    assert!(!Arc::ptr_eq(&a, &b));
    assert!(neurofail::inject::nets_content_equal(&a, &b));

    let mut reg = PlanRegistry::new();
    let plan = stuck(0, 1, 0.5);
    reg.register(Arc::clone(&a), &plan, 1.0).unwrap();
    reg.register(Arc::clone(&b), &plan, 1.0).unwrap();

    assert_eq!(reg.family_count(), 1);
    let s = reg.admission_stats();
    assert_eq!(s.bodies_compiled, 1);
    assert_eq!(s.dedup_hits, 1);
}

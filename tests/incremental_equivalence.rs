//! Input-incremental engine equivalence — the appendable-checkpoint and
//! checkpoint-cache contracts, checked at workspace level:
//!
//! * a checkpoint grown chunk by chunk (`Mlp::extend_batch`) is
//!   **bitwise** identical — outputs and every per-layer tap — to one
//!   filled by a single full-batch pass, for every chunking of the input
//!   set (0/1/odd chunk sizes included);
//! * `StreamingEvaluator` disturbances are bitwise per-plan
//!   `output_error_batch` over the accumulated input set, across random
//!   nets, every fault kind, every chunking and every `Parallelism`
//!   policy;
//! * `CheckpointCache` hits return values bitwise equal to the cold
//!   path, and LRU eviction never changes a value — only cost;
//! * sliding-window streaming (`with_row_budget`) retires the oldest
//!   rows without changing any chunk result, and extending across an
//!   eviction boundary agrees bitwise with a from-scratch recompute
//!   over the retained window.

use std::sync::Arc;

use neurofail::data::rng::rng;
use neurofail::inject::plan::{
    InjectionPlan, NeuronFault, NeuronSite, SynapseFault, SynapseSite, SynapseTarget,
};
use neurofail::inject::{ByzantineStrategy, CheckpointCache, CompiledPlan, StreamingEvaluator};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::{BatchWorkspace, Mlp, NoBatchTap};
use neurofail::par::{parallel_map, Parallelism};
use neurofail::tensor::init::Init;
use neurofail::tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;

/// Random network from a compact recipe (mirrors `suffix_equivalence.rs`).
fn build_net(seed: u64, depth: usize, width: usize, tanh: bool, bias: bool) -> Mlp {
    let act = if tanh {
        Activation::Tanh { k: 0.9 }
    } else {
        Activation::Sigmoid { k: 1.1 }
    };
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        b = b.dense(width + (i % 3), act);
    }
    b.init(Init::Uniform { a: 0.5 })
        .bias(bias)
        .build(&mut rng(seed))
}

fn random_inputs(seed: u64, batch: usize, d: usize) -> Matrix {
    let mut r = rng(seed ^ 0xA11C);
    Matrix::from_fn(batch, d, |_, _| r.gen_range(-1.0..=1.0))
}

/// Chunk row-ranges of `rows` under one of four chunking shapes,
/// including empty chunks and chunk size 1.
fn chunkings(rows: usize) -> Vec<Vec<usize>> {
    let mut shapes = vec![
        vec![rows],                     // one chunk
        (0..rows).map(|_| 1).collect(), // row at a time
    ];
    // Odd-sized chunks with an empty one in the middle.
    let mut odd = Vec::new();
    let mut left = rows;
    while left > 0 {
        let take = left.min(3);
        odd.push(take);
        left -= take;
        if odd.len() == 1 {
            odd.push(0);
        }
    }
    shapes.push(odd);
    // Front-loaded split.
    if rows >= 2 {
        shapes.push(vec![rows - 1, 1]);
    }
    shapes
}

fn chunk_of(xs: &Matrix, start: usize, rows: usize) -> Matrix {
    Matrix::from_fn(rows, xs.cols(), |r, c| xs.get(start + r, c))
}

/// A plan family touching every fault kind and every depth of `net`.
fn plan_family(net: &Mlp, seed: u64) -> Vec<InjectionPlan> {
    let widths = net.widths();
    let last = widths.len() - 1;
    vec![
        InjectionPlan::none(),
        InjectionPlan::crash([(0, 0)]),
        InjectionPlan::crash([(last, widths[last] - 1)]),
        InjectionPlan::byzantine([(last, 0)], ByzantineStrategy::OpposeNominal),
        InjectionPlan::byzantine([(0, 1 % widths[0])], ByzantineStrategy::Random { seed }),
        InjectionPlan {
            neurons: vec![NeuronSite {
                layer: last,
                neuron: 0,
                fault: NeuronFault::StuckAt(0.3),
            }],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Hidden {
                    layer: last,
                    to: 0,
                    from: 0,
                },
                fault: SynapseFault::Crash,
            }],
        },
        InjectionPlan {
            neurons: vec![],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Hidden {
                    layer: 0,
                    to: 0,
                    from: 1,
                },
                fault: SynapseFault::Byzantine(0.4),
            }],
        },
        InjectionPlan {
            neurons: vec![],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Output { from: 0 },
                fault: SynapseFault::Crash,
            }],
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Extend-vs-recompute: a chunk-grown nominal checkpoint equals a
    /// full-batch pass bitwise — outputs, per-layer taps, and its
    /// validity as a resume source.
    #[test]
    fn extended_checkpoint_is_bitwise_a_full_pass(
        seed in 0u64..1000,
        depth in 1usize..5,
        width in 3usize..10,
        rows in 0usize..12,
        tanh in proptest::bool::ANY,
        bias in proptest::bool::ANY,
    ) {
        let net = build_net(seed, depth, width, tanh, bias);
        let xs = random_inputs(seed, rows, 3);
        let mut full_ws = BatchWorkspace::for_net(&net, rows);
        let full = net.forward_batch(&xs, &mut full_ws);
        for (shape_idx, shape) in chunkings(rows).into_iter().enumerate() {
            let mut ws = BatchWorkspace::default();
            let mut scratch = BatchWorkspace::default();
            let mut ys = Vec::new();
            let mut start = 0;
            for rows_in_chunk in shape {
                let chunk = chunk_of(&xs, start, rows_in_chunk);
                ys.extend(net.extend_batch_with(&mut ws, &mut scratch, &mut NoBatchTap, &chunk));
                start += rows_in_chunk;
            }
            prop_assert_eq!(start, rows, "chunking {} must cover the batch", shape_idx);
            if ws.batch() == 0 && ws.sums.len() != net.depth() {
                // A zero-chunk shape never touched the workspace; there
                // is no checkpoint to compare (only possible at rows 0).
                prop_assert_eq!(rows, 0);
                continue;
            }
            prop_assert_eq!(ws.batch(), rows);
            for (b, (a, e)) in full.iter().zip(&ys).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), e.to_bits(),
                    "chunking {}, row {}: full {:e} vs extended {:e}", shape_idx, b, a, e
                );
            }
            for l in 0..net.depth() {
                prop_assert_eq!(&ws.sums[l], &full_ws.sums[l], "chunking {}, layer {} sums", shape_idx, l);
                prop_assert_eq!(&ws.outs[l], &full_ws.outs[l], "chunking {}, layer {} outs", shape_idx, l);
            }
        }
    }

    /// Streaming evaluation is bitwise per-plan batch evaluation over the
    /// accumulated input set, for every chunking and every fault kind.
    #[test]
    fn streaming_is_bitwise_per_plan_batches(
        seed in 0u64..1000,
        depth in 1usize..5,
        width in 3usize..9,
        rows in 0usize..10,
        tanh in proptest::bool::ANY,
    ) {
        let net = Arc::new(build_net(seed, depth, width, tanh, true));
        let plans: Vec<CompiledPlan> = plan_family(&net, seed)
            .iter()
            .map(|p| CompiledPlan::compile(p, &net, 1.0).unwrap())
            .collect();
        let xs = random_inputs(seed, rows, 3);
        let mut ws = BatchWorkspace::default();
        let direct: Vec<Vec<f64>> = plans
            .iter()
            .map(|p| p.output_error_batch(&net, &xs, &mut ws))
            .collect();
        for (shape_idx, shape) in chunkings(rows).into_iter().enumerate() {
            let mut stream = StreamingEvaluator::new(Arc::clone(&net), plans.clone());
            let mut streamed: Vec<Vec<f64>> = vec![Vec::new(); plans.len()];
            let mut start = 0;
            for rows_in_chunk in shape {
                let chunk = chunk_of(&xs, start, rows_in_chunk);
                for (p, errs) in stream.push_chunk(&chunk).into_iter().enumerate() {
                    streamed[p].extend(errs);
                }
                start += rows_in_chunk;
            }
            for (pi, (s, d)) in streamed.iter().zip(&direct).enumerate() {
                prop_assert_eq!(s.len(), d.len());
                for (b, (sv, dv)) in s.iter().zip(d).enumerate() {
                    prop_assert_eq!(
                        sv.to_bits(), dv.to_bits(),
                        "chunking {}, plan {}, row {}", shape_idx, pi, b
                    );
                }
            }
            // The late-subscriber path over the whole stream agrees too.
            for (pi, plan) in plans.iter().enumerate() {
                let back = stream.eval_plan_over_stream(plan);
                for (b, (sv, dv)) in back.iter().zip(&direct[pi]).enumerate() {
                    prop_assert_eq!(sv.to_bits(), dv.to_bits(), "backfill plan {}, row {}", pi, b);
                }
            }
        }
    }

    /// Streaming evaluation is deterministic under parallel use: one
    /// evaluator per worker under any `Parallelism` policy reproduces the
    /// sequential stream bitwise.
    #[test]
    fn streaming_is_bitwise_across_parallelism_policies(
        seed in 0u64..500,
        depth in 2usize..5,
        width in 3usize..8,
        rows in 1usize..8,
    ) {
        let net = Arc::new(build_net(seed, depth, width, false, false));
        let plans: Vec<CompiledPlan> = plan_family(&net, seed)
            .iter()
            .map(|p| CompiledPlan::compile(p, &net, 1.0).unwrap())
            .collect();
        let xs = random_inputs(seed, rows, 3);
        let split = rows / 2;
        let chunks = [chunk_of(&xs, 0, split), chunk_of(&xs, split, rows - split)];
        let reference: Vec<Vec<Vec<f64>>> = {
            let mut stream = StreamingEvaluator::new(Arc::clone(&net), plans.clone());
            chunks.iter().map(|c| stream.push_chunk(c)).collect()
        };
        for policy in [Parallelism::Sequential, Parallelism::Threads(2), Parallelism::Threads(5)] {
            let workers: Vec<Vec<Vec<Vec<f64>>>> = parallel_map(policy, 4, |_| {
                let mut stream = StreamingEvaluator::new(Arc::clone(&net), plans.clone());
                chunks.iter().map(|c| stream.push_chunk(c)).collect()
            });
            for (wi, per_worker) in workers.iter().enumerate() {
                prop_assert_eq!(per_worker.len(), reference.len());
                for (ci, (p, r)) in per_worker.iter().zip(&reference).enumerate() {
                    for (pi, (pp, rr)) in p.iter().zip(r).enumerate() {
                        for (b, (a, c)) in pp.iter().zip(rr).enumerate() {
                            prop_assert_eq!(
                                a.to_bits(), c.to_bits(),
                                "policy {:?}, worker {}, chunk {}, plan {}, row {}",
                                policy, wi, ci, pi, b
                            );
                        }
                    }
                }
            }
        }
    }

    /// Cache hits are bitwise cold-path values, and eviction churn never
    /// changes a value.
    #[test]
    fn cache_hits_and_evictions_are_value_transparent(
        seed in 0u64..1000,
        depth in 1usize..4,
        width in 3usize..8,
        rows in 0usize..9,
        capacity in 1usize..4,
    ) {
        let net = Arc::new(build_net(seed, depth, width, false, true));
        let plans: Vec<CompiledPlan> = plan_family(&net, seed)
            .iter()
            .map(|p| CompiledPlan::compile(p, &net, 1.0).unwrap())
            .collect();
        let sets: Vec<Matrix> = (0..3)
            .map(|i| random_inputs(seed.wrapping_add(i), rows, 3))
            .collect();
        let mut ws = BatchWorkspace::default();
        let direct: Vec<Vec<Vec<f64>>> = sets
            .iter()
            .map(|xs| plans.iter().map(|p| p.output_error_batch(&net, xs, &mut ws)).collect())
            .collect();
        // Cycle the sets through a small cache twice: depending on the
        // capacity this mixes hits, misses and evictions — values must
        // not care.
        let mut cache = CheckpointCache::new(capacity);
        let mut scratch = BatchWorkspace::default();
        for round in 0..2 {
            for (si, xs) in sets.iter().enumerate() {
                let got = cache.output_error_many(&net, xs, &plans, &mut scratch);
                for (pi, (g, d)) in got.iter().zip(&direct[si]).enumerate() {
                    for (b, (gv, dv)) in g.iter().zip(d).enumerate() {
                        prop_assert_eq!(
                            gv.to_bits(), dv.to_bits(),
                            "round {}, set {}, plan {}, row {}", round, si, pi, b
                        );
                    }
                }
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, 6);
        prop_assert!(stats.entries <= capacity);
        if capacity >= 3 {
            // Everything fits: the second round is all hits.
            prop_assert_eq!(stats.hits, 3);
            prop_assert_eq!(stats.evictions, 0);
        } else {
            prop_assert!(stats.evictions > 0);
        }
    }
}

/// The cache's accounting proves a hit skips the nominal pass: the
/// layer-rows banked equal depth × rows per hit, mirroring the suffix
/// engine's `prefix_rows_saved` accounting.
#[test]
fn cache_accounting_counts_skipped_nominal_passes() {
    let net = Arc::new(build_net(77, 3, 6, false, true));
    let plan = CompiledPlan::compile(&InjectionPlan::crash([(2, 1)]), &net, 1.0).unwrap();
    let xs = random_inputs(77, 8, 3);
    let mut cache = CheckpointCache::new(2);
    let mut scratch = BatchWorkspace::default();
    for _ in 0..4 {
        let _ = cache.output_error_many(&net, &xs, std::slice::from_ref(&plan), &mut scratch);
    }
    let stats = cache.stats();
    assert_eq!((stats.misses, stats.hits), (1, 3));
    assert_eq!(stats.nominal_rows_saved, 3 * 3 * 8); // hits × depth × rows
    assert!(stats.bytes > 0);
}

/// Streaming accounting: chunked arrival of `n` chunks over an L-layer
/// net never recomputes held rows — the nominal work saved equals
/// (held rows at each arrival) × L.
#[test]
fn streaming_accounting_matches_the_cost_model() {
    let net = Arc::new(build_net(91, 4, 5, true, false));
    let plans = vec![CompiledPlan::compile(&InjectionPlan::none(), &net, 1.0).unwrap()];
    let mut stream = StreamingEvaluator::new(Arc::clone(&net), plans);
    for i in 0..5u64 {
        let chunk = random_inputs(91 + i, 2, 3);
        let _ = stream.push_chunk(&chunk);
    }
    let stats = stream.stats();
    assert_eq!((stats.chunks, stats.rows), (5, 10));
    // Held rows at each arrival: 0, 2, 4, 6, 8 → 20 rows × depth 4.
    assert_eq!(stats.nominal_rows_saved, 20 * 4);
    // The empty plan resumes at depth: every chunk row skips its whole
    // faulty prefix (depth layers × 10 rows).
    assert_eq!(stats.prefix_rows_saved, 4 * 10);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sliding-window streaming (`with_row_budget`): retiring the oldest
    /// rows across eviction boundaries never changes a chunk result —
    /// every chunk's disturbances stay bitwise equal to the direct
    /// full-batch rows — and extending over the boundary agrees bitwise
    /// with a from-scratch recompute over exactly the retained window.
    /// Retirement is visible only in the statistics.
    #[test]
    fn sliding_window_extend_is_bitwise_recompute(
        seed in 0u64..1000,
        depth in 1usize..4,
        width in 3usize..8,
        rows in 1usize..14,
        budget in 1usize..6,
        tanh in proptest::bool::ANY,
    ) {
        let net = Arc::new(build_net(seed, depth, width, tanh, true));
        let plans: Vec<CompiledPlan> = plan_family(&net, seed)
            .iter()
            .map(|p| CompiledPlan::compile(p, &net, 1.0).unwrap())
            .collect();
        let xs = random_inputs(seed, rows, 3);
        let mut ws = BatchWorkspace::default();
        let direct: Vec<Vec<f64>> = plans
            .iter()
            .map(|p| p.output_error_batch(&net, &xs, &mut ws))
            .collect();
        for (shape_idx, shape) in chunkings(rows).into_iter().enumerate() {
            let mut capped = StreamingEvaluator::new(Arc::clone(&net), plans.clone())
                .with_row_budget(budget);
            let mut streamed: Vec<Vec<f64>> = vec![Vec::new(); plans.len()];
            let mut start = 0;
            for rows_in_chunk in shape {
                let chunk = chunk_of(&xs, start, rows_in_chunk);
                for (p, errs) in capped.push_chunk(&chunk).into_iter().enumerate() {
                    streamed[p].extend(errs);
                }
                start += rows_in_chunk;
                // The retained window honours the budget after every push.
                prop_assert!(capped.rows() <= budget, "chunking {}", shape_idx);
            }
            // Chunk results are unchanged by eviction: bitwise the
            // direct full-batch rows, exactly as without a budget.
            for (pi, (s, d)) in streamed.iter().zip(&direct).enumerate() {
                prop_assert_eq!(s.len(), d.len());
                for (b, (sv, dv)) in s.iter().zip(d).enumerate() {
                    prop_assert_eq!(
                        sv.to_bits(), dv.to_bits(),
                        "chunking {}, plan {}, row {}", shape_idx, pi, b
                    );
                }
            }
            // Extend-vs-recompute across the eviction boundary: the
            // retained window evaluates bitwise equal to a from-scratch
            // batch over exactly those rows.
            let kept = rows.min(budget);
            let window = chunk_of(&xs, rows - kept, kept);
            let mut wws = BatchWorkspace::default();
            for (pi, plan) in plans.iter().enumerate() {
                let recomputed = plan.output_error_batch(&net, &window, &mut wws);
                let extended = capped.eval_plan_over_stream(plan);
                prop_assert_eq!(extended.len(), recomputed.len());
                for (b, (ev, rv)) in extended.iter().zip(&recomputed).enumerate() {
                    prop_assert_eq!(
                        ev.to_bits(), rv.to_bits(),
                        "chunking {}, plan {}, window row {}", shape_idx, pi, b
                    );
                }
            }
            // Retirement shows up only in the stats.
            prop_assert_eq!(capped.stats().rows_retired, (rows - kept) as u64);
        }
    }
}

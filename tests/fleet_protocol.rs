//! Wire-fuzz certification of the fleet protocol:
//!
//! * **decode fuzz** — bit flips, truncations, oversized length
//!   prefixes, stale versions, unknown kinds and pure garbage against
//!   `read_frame`/`Message::decode`: every mutation yields a typed
//!   [`ProtocolError`] or the bit-exact original message — never a
//!   panic, a hang, or a silently different message;
//! * **live worker leg** — a *real* worker process (re-invocation of
//!   this binary) fed garbage over its socket replies `Bye` with a
//!   nonzero reason, resets the connection, and exits with the clean
//!   protocol-error code (1) — not a panic (101) — with nothing
//!   panicking on stderr. A clean close at a frame boundary exits 0.

use std::io::Read as _;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use neurofail::fleet::proto::{
    encode_frame, read_message, write_message, Message, ProtocolError, WireServeConfig, WireTrial,
    WireWorkerStats, MAX_PAYLOAD, PROTO_VERSION,
};
use neurofail::fleet::{FleetListener, Transport, ENV_ADDR, ENV_WORKER};
use neurofail::inject::{
    ByzantineStrategy, CampaignConfig, FaultSpec, InjectionPlan, TrialKind, WorstCase,
};
use proptest::prelude::*;

/// The worker process (see `fleet_equivalence.rs`).
#[test]
#[ignore = "fleet worker child, spawned by the tests below"]
fn fleet_worker_child() {
    if std::env::var(ENV_ADDR).is_ok() {
        std::process::exit(neurofail::fleet::run_worker_from_env());
    }
}

/// One message per variant — the mutation corpus.
fn corpus() -> Vec<Message> {
    let plan = InjectionPlan::byzantine([(0, 1)], ByzantineStrategy::Random { seed: 7 });
    vec![
        Message::Hello { worker: 3, gen: 7 },
        Message::Configure(WireServeConfig {
            max_batch: 64,
            max_wait_nanos: 100_000,
            queue_capacity: 1024,
            record_log: true,
            streaming_ingest: true,
            max_plan_strikes: 3,
        }),
        Message::Register {
            plan: 9,
            net: vec![0u8; 40],
            plan_bytes: neurofail::fleet::proto::plan_to_bytes(&plan),
            capacity: 1.5,
        },
        Message::Query {
            seq: 101,
            plan: 9,
            input: vec![0.25, -0.5, 1.0],
        },
        Message::Shard {
            job: 2,
            shard: 1,
            net: vec![0u8; 24],
            counts: vec![2, 1],
            kind: TrialKind::Neurons(FaultSpec::Crash),
            cfg: CampaignConfig {
                trials: 10,
                inputs_per_trial: 4,
                ..CampaignConfig::default()
            },
            first: 5,
            count: 5,
        },
        Message::Ping { nonce: 0xABCD },
        Message::StatsReq,
        Message::AuditReq,
        Message::Shutdown,
        Message::Registered { plan: 9 },
        Message::Answer {
            seq: 101,
            value: -0.125,
        },
        Message::Refused {
            seq: 102,
            code: neurofail::fleet::proto::code::QUEUE_FULL,
            retry_after_nanos: 1_000_000,
        },
        Message::ShardDone {
            job: 2,
            shard: 1,
            trials: vec![WireTrial {
                trial: 5,
                stats: (4, 0.5, 0.25, 0.1, 0.9),
                worst: Some(WorstCase {
                    error: 0.9,
                    input: vec![0.1, 0.2, 0.3],
                    plan: InjectionPlan::crash([(0, 0)]),
                    trial: 5,
                    seed: 42,
                }),
            }],
        },
        Message::Pong { nonce: 0xABCD },
        Message::StatsReply(WireWorkerStats::default()),
        Message::AuditReply {
            entries: 17,
            ok: true,
        },
        Message::Bye { code: 0 },
    ]
}

fn decode_bytes(bytes: &[u8]) -> Result<Message, ProtocolError> {
    read_message(&mut &bytes[..])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// A single flipped bit anywhere in a frame is always caught: typed
    /// error, or (never observed, but the real contract) the bit-exact
    /// original. The checksum covers the header words too, so kind
    /// flips cannot silently alias same-shaped messages (Ping ↔ Pong).
    #[test]
    fn any_single_bit_flip_is_caught(msg_i in 0usize..17, pos in 0usize..4096, bit in 0usize..8) {
        let corpus = corpus();
        let msg = &corpus[msg_i % corpus.len()];
        let (kind, payload) = msg.encode();
        let mut bytes = encode_frame(kind, &payload);
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        match decode_bytes(&bytes) {
            Err(_) => {}
            Ok(got) => prop_assert_eq!(&got, msg, "corrupted frame decoded differently"),
        }
    }

    /// Truncating a frame anywhere yields `Closed` (empty), `Truncated`,
    /// or a typed decode error — never a panic or a wrong message.
    #[test]
    fn any_truncation_is_typed(msg_i in 0usize..17, keep in 0usize..4096) {
        let corpus = corpus();
        let msg = &corpus[msg_i % corpus.len()];
        let (kind, payload) = msg.encode();
        let bytes = encode_frame(kind, &payload);
        let keep = keep % bytes.len(); // strictly shorter than the frame
        match decode_bytes(&bytes[..keep]) {
            Err(ProtocolError::Closed) => prop_assert_eq!(keep, 0),
            Err(_) => {}
            Ok(got) => prop_assert_eq!(&got, msg),
        }
    }

    /// Pure garbage never panics and never produces a message.
    #[test]
    fn garbage_never_decodes(seed in 0u64..u64::MAX, len in 0usize..512) {
        // Deterministic noise from a SplitMix64 stream.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u8
        };
        let bytes: Vec<u8> = (0..len).map(|_| next()).collect();
        match decode_bytes(&bytes) {
            Err(_) => {}
            Ok(m) => prop_assert!(false, "garbage decoded as {:?}", m),
        }
    }
}

/// The specific header violations each get their dedicated typed error,
/// and an oversized length prefix is rejected *before* any allocation
/// or read of the claimed payload.
#[test]
fn header_attacks_are_typed_and_bounded() {
    let (kind, payload) = Message::Ping { nonce: 5 }.encode();
    let good = encode_frame(kind, &payload);

    // Stale version.
    let mut stale = good.clone();
    stale[8..16].copy_from_slice(&(PROTO_VERSION + 1).to_le_bytes());
    assert!(matches!(
        decode_bytes(&stale),
        Err(ProtocolError::Version { got, want }) if got == PROTO_VERSION + 1 && want == PROTO_VERSION
    ));

    // Unknown kind.
    let mut unknown = good.clone();
    unknown[16..24].copy_from_slice(&999u64.to_le_bytes());
    assert!(matches!(
        decode_bytes(&unknown),
        Err(ProtocolError::UnknownKind(999))
    ));

    // Oversized length prefix: typed rejection, no attempt to read the
    // claimed 2^60 bytes (the call returns immediately on a short input).
    let mut oversized = good.clone();
    oversized[24..32].copy_from_slice(&(1u64 << 60).to_le_bytes());
    assert!(matches!(
        decode_bytes(&oversized),
        Err(ProtocolError::Oversized(n)) if n == 1 << 60
    ));
    let mut barely = good.clone();
    barely[24..32].copy_from_slice(&(MAX_PAYLOAD + 8).to_le_bytes());
    assert!(matches!(
        decode_bytes(&barely),
        Err(ProtocolError::Oversized(_))
    ));

    // Word-misaligned length.
    let mut misaligned = good.clone();
    misaligned[24..32].copy_from_slice(&13u64.to_le_bytes());
    assert!(matches!(
        decode_bytes(&misaligned),
        Err(ProtocolError::Misaligned(13))
    ));

    // Bad magic.
    let mut magic = good;
    magic[0..8].copy_from_slice(b"HTTP/1.1");
    assert!(matches!(
        decode_bytes(&magic),
        Err(ProtocolError::BadMagic(_))
    ));

    // Valid frame whose payload lies about its interior lengths:
    // a Query payload (seq, plan, then a length-prefixed f64 slice)
    // claiming far more elements than the payload holds.
    let mut w = neurofail::tensor::ByteWriter::new();
    w.put_u64(1);
    w.put_u64(2);
    w.put_u64(u64::MAX / 8);
    let lying = w.into_bytes();
    let huge_count = encode_frame(4, &lying);
    assert!(matches!(
        decode_bytes(&huge_count),
        Err(ProtocolError::Malformed(_))
    ));
}

/// Spawn a real worker wired to `listener`'s address, returning the
/// child. Stderr is captured for the no-panics assertion.
fn spawn_live_worker(addr: &str) -> std::process::Child {
    Command::new(std::env::current_exe().expect("current_exe"))
        .args(["fleet_worker_child", "--ignored", "--exact"])
        .env(ENV_ADDR, addr)
        .env(ENV_WORKER, "0")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn worker")
}

fn wait_with_deadline(child: &mut std::process::Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "worker hung instead of resetting the connection"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A live worker fed garbage frames answers `Bye` with a nonzero
/// reason, resets the connection, and exits 1 — the typed
/// protocol-error path, not a panic (exit 101).
#[test]
fn live_worker_survives_garbage_with_typed_reset() {
    let listener = FleetListener::bind(Transport::Unix).expect("bind");
    let mut child = spawn_live_worker(&listener.addr());
    let mut conn = listener.accept().expect("worker dials in");
    match read_message(&mut conn).expect("hello") {
        Message::Hello { worker: 0, gen: 0 } => {}
        other => panic!("expected Hello, got {other:?}"),
    }
    write_message(
        &mut conn,
        &Message::Configure(WireServeConfig {
            max_batch: 64,
            max_wait_nanos: 100_000,
            queue_capacity: 1024,
            record_log: true,
            streaming_ingest: false,
            max_plan_strikes: 3,
        }),
    )
    .unwrap();

    // Garbage: a corrupted Query frame (checksum cannot match).
    let (kind, payload) = Message::Query {
        seq: 1,
        plan: 0,
        input: vec![0.5, 0.5, 0.5],
    }
    .encode();
    let mut bytes = encode_frame(kind, &payload);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    use std::io::Write as _;
    conn.write_all(&bytes).expect("write garbage");
    conn.flush().unwrap();

    // The worker names the violation in a Bye and resets.
    match read_message(&mut conn) {
        Ok(Message::Bye { code }) => assert_ne!(code, 0, "garbage must not be a graceful goodbye"),
        Ok(other) => panic!("expected Bye, got {other:?}"),
        // The reset can also race ahead of the Bye read; a closed
        // connection is an acceptable observation of the reset itself.
        Err(ProtocolError::Closed) | Err(ProtocolError::Io(_)) => {}
        Err(e) => panic!("unexpected read error {e}"),
    }

    let status = wait_with_deadline(&mut child);
    assert_eq!(
        status.code(),
        Some(1),
        "protocol error must exit the clean error path"
    );
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert!(
        !stderr.contains("panicked"),
        "worker panicked on garbage input:\n{stderr}"
    );
}

/// A clean close at a frame boundary is a graceful goodbye: exit 0,
/// nothing on stderr.
#[test]
fn live_worker_exits_cleanly_on_boundary_close() {
    let listener = FleetListener::bind(Transport::Unix).expect("bind");
    let mut child = spawn_live_worker(&listener.addr());
    {
        let mut conn = listener.accept().expect("worker dials in");
        match read_message(&mut conn).expect("hello") {
            Message::Hello { worker: 0, gen: 0 } => {}
            other => panic!("expected Hello, got {other:?}"),
        }
        write_message(&mut conn, &Message::Ping { nonce: 9 }).unwrap();
        match read_message(&mut conn).expect("pong") {
            Message::Pong { nonce: 9 } => {}
            other => panic!("expected Pong, got {other:?}"),
        }
        conn.shutdown().expect("close at a frame boundary");
    }
    let status = wait_with_deadline(&mut child);
    assert_eq!(status.code(), Some(0), "boundary close is graceful");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert!(stderr.is_empty(), "clean exit must be silent:\n{stderr}");
}

/// Mid-frame close, by contrast, is `Truncated`: the typed error path,
/// exit 1, still no panic.
#[test]
fn live_worker_treats_midframe_close_as_truncation() {
    let listener = FleetListener::bind(Transport::Unix).expect("bind");
    let mut child = spawn_live_worker(&listener.addr());
    {
        let mut conn = listener.accept().expect("worker dials in");
        match read_message(&mut conn).expect("hello") {
            Message::Hello { worker: 0, gen: 0 } => {}
            other => panic!("expected Hello, got {other:?}"),
        }
        let (kind, payload) = Message::Ping { nonce: 1 }.encode();
        let bytes = encode_frame(kind, &payload);
        use std::io::Write as _;
        conn.write_all(&bytes[..bytes.len() / 2]).unwrap();
        conn.flush().unwrap();
        conn.shutdown().expect("close mid-frame");
    }
    let status = wait_with_deadline(&mut child);
    assert_eq!(status.code(), Some(1), "mid-frame close is a typed error");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert!(
        !stderr.contains("panicked"),
        "truncation must not panic the worker:\n{stderr}"
    );
}

//! Persistent-store equivalence — the disk tier's central contract,
//! checked at workspace level:
//!
//! * evaluating through a store-backed [`CheckpointCache`] is **bitwise**
//!   identical to the memory-only cache and to cold uncached compute,
//!   across random networks, input sets and chunkings;
//! * a *fresh* cache over a populated store serves every lookup from disk
//!   — zero nominal passes, with exact `misses`/`store_hits`/
//!   `nominal_rows_saved` accounting (the warm-start contract);
//! * a repeated `measured_crash_thresholds` search over a populated store
//!   runs without a single nominal pass and reproduces the cold search
//!   bitwise;
//! * byte-budget eviction is value-transparent: evicted keys recompute to
//!   the same bits, and no eviction ever produces a verify reject;
//! * trained networks round-trip through the store bitwise.

use std::path::PathBuf;
use std::sync::Arc;

use neurofail::core::measured_crash_thresholds;
use neurofail::data::rng::rng;
use neurofail::inject::{
    ArtifactStore, ByzantineStrategy, CheckpointCache, InjectionPlan, PlanId, PlanRegistry,
};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::{net_to_bytes, BatchWorkspace, Mlp};
use neurofail::tensor::init::Init;
use neurofail::tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;

/// Random network from a compact recipe (mirrors `serve_equivalence.rs`).
fn build_net(seed: u64, depth: usize, width: usize) -> Mlp {
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        let act = if i % 2 == 0 {
            Activation::Sigmoid { k: 1.1 }
        } else {
            Activation::Tanh { k: 0.9 }
        };
        b = b.dense(width + (i % 2), act);
    }
    b.init(Init::Uniform { a: 0.7 }).build(&mut rng(seed))
}

/// A small family of plans exercising every fault kind over one net.
fn build_registry(net: Arc<Mlp>, seed: u64) -> (PlanRegistry, Vec<PlanId>) {
    let widths = net.widths();
    let mut reg = PlanRegistry::new();
    let ids = vec![
        reg.register(Arc::clone(&net), &InjectionPlan::none(), 1.0)
            .unwrap(),
        reg.register(
            Arc::clone(&net),
            &InjectionPlan::crash([(0, 0), (0, widths[0] - 1)]),
            1.0,
        )
        .unwrap(),
        reg.register(
            Arc::clone(&net),
            &InjectionPlan::byzantine([(0, 1)], ByzantineStrategy::Random { seed }),
            1.0,
        )
        .unwrap(),
    ];
    (reg, ids)
}

/// Deterministic random probe set.
fn probes(seed: u64, rows: usize) -> Matrix {
    let mut r = rng(seed ^ 0xA9C3);
    Matrix::from_fn(rows, 3, |_, _| r.gen_range(-1.0..=1.0))
}

/// A per-test scratch directory, removed by the caller.
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nf-store-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Memory tier, disk tier and cold compute agree bitwise for any
    /// random net, input set, and chunking of that input set — and a
    /// fresh cache over the populated store serves every chunk without a
    /// nominal pass.
    #[test]
    fn disk_memory_and_cold_compute_agree_bitwise(
        seed in 0u64..500,
        depth in 1usize..4,
        width in 3usize..9,
        rows in 1usize..20,
        chunk in 1usize..8,
    ) {
        let dir = store_dir("prop");
        let net = Arc::new(build_net(seed, depth, width));
        let (reg, ids) = build_registry(Arc::clone(&net), seed);
        let xs = probes(seed, rows);
        let cold = reg.eval_many(&ids, &xs);

        // Memory-only cache: bitwise the cold engine, cold then warm.
        let mut scratch = BatchWorkspace::default();
        let mut mem = CheckpointCache::new(4);
        for _ in 0..2 {
            let got = reg.eval_many_cached(&ids, &xs, &mut mem, &mut scratch);
            for (g, c) in got.iter().zip(&cold) {
                for (gv, cv) in g.iter().zip(c) {
                    prop_assert_eq!(gv.to_bits(), cv.to_bits(), "memory tier");
                }
            }
        }

        // Store-backed cache, evaluated chunk by chunk: each chunk is its
        // own content-addressed key; all of them publish.
        let chunks: Vec<Matrix> = (0..rows)
            .step_by(chunk)
            .map(|r0| {
                let r1 = (r0 + chunk).min(rows);
                Matrix::from_fn(r1 - r0, 3, |r, c| xs.get(r0 + r, c))
            })
            .collect();
        let mut warm_cache = CheckpointCache::new(chunks.len().max(1));
        warm_cache.attach_store(ArtifactStore::open(&dir).unwrap());
        for cxs in &chunks {
            reg.eval_many_cached(&ids, cxs, &mut warm_cache, &mut scratch);
        }
        prop_assert_eq!(warm_cache.stats().misses as usize, chunks.len());
        prop_assert_eq!(warm_cache.stats().store_hits, 0);
        drop(warm_cache); // flushes the store index

        // A fresh cache over a fresh handle to the same directory — the
        // situation a restarted process is in — serves every chunk from
        // disk, and the concatenation is bitwise the whole-set cold run.
        let mut fresh = CheckpointCache::new(chunks.len().max(1));
        fresh.attach_store(ArtifactStore::open(&dir).unwrap());
        let mut row0 = 0usize;
        for cxs in &chunks {
            let got = reg.eval_many_cached(&ids, cxs, &mut fresh, &mut scratch);
            for (g, c) in got.iter().zip(&cold) {
                for (r, gv) in g.iter().enumerate() {
                    prop_assert_eq!(
                        gv.to_bits(),
                        c[row0 + r].to_bits(),
                        "disk tier, chunk row {}",
                        row0 + r
                    );
                }
            }
            row0 += cxs.rows();
        }
        let stats = fresh.stats();
        prop_assert_eq!(stats.misses, 0, "warm run must not compute");
        prop_assert_eq!(stats.store_hits as usize, chunks.len());
        prop_assert_eq!(
            stats.nominal_rows_saved as usize,
            rows * net.depth(),
            "exact rows x depth reuse accounting"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A repeated `measured_crash_thresholds` search over a populated store
/// reproduces the cold search bitwise with **zero** nominal passes — the
/// warm-start contract for campaign-side consumers.
#[test]
fn warm_measured_search_runs_without_a_nominal_pass() {
    let dir = store_dir("measured");
    let net = Arc::new(build_net(7, 2, 6));
    let xs = probes(7, 9);
    let eps_primes = [0.05, 0.2, 0.5];

    let mut cold_cache = CheckpointCache::new(2);
    cold_cache.attach_store(ArtifactStore::open(&dir).unwrap());
    let cold = measured_crash_thresholds(&net, 0, &xs, 1.0, &eps_primes, 1.0, &mut cold_cache);
    assert_eq!(cold_cache.stats().misses, 1, "cold search computes once");
    drop(cold_cache);

    // Fresh cache, fresh store handle: the search never runs a forward
    // pass, and every reported threshold is bitwise the cold search's.
    let mut warm_cache = CheckpointCache::new(2);
    warm_cache.attach_store(ArtifactStore::open(&dir).unwrap());
    let warm = measured_crash_thresholds(&net, 0, &xs, 1.0, &eps_primes, 1.0, &mut warm_cache);
    let stats = warm_cache.stats();
    assert_eq!(stats.misses, 0, "warm search must not compute");
    assert_eq!(stats.store_hits, 1, "one disk hit resolves the search");
    // Every per-k resolution of the checkpoint saved a nominal pass: one
    // from disk, the rest from memory — all multiples of rows × depth.
    let pass = (xs.rows() * net.depth()) as u64;
    assert!(stats.nominal_rows_saved >= pass && stats.nominal_rows_saved.is_multiple_of(pass));
    let store = warm_cache.store_stats().expect("store attached");
    assert_eq!((store.hits, store.misses, store.verify_rejects), (1, 0, 0));
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.eps_prime.to_bits(), w.eps_prime.to_bits());
        assert_eq!(c.max_faults, w.max_faults);
        assert_eq!(c.worst_error.to_bits(), w.worst_error.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte-budget eviction is value-transparent: whatever the store evicted,
/// every evaluation stays bitwise equal to cold compute (evicted keys
/// simply recompute), and eviction never manufactures a verify reject.
#[test]
fn eviction_is_value_transparent() {
    let dir = store_dir("evict");
    let net = Arc::new(build_net(11, 2, 5));
    let (reg, ids) = build_registry(Arc::clone(&net), 11);
    let mut scratch = BatchWorkspace::default();
    let sets: Vec<Matrix> = (0..8).map(|i| probes(100 + i, 5)).collect();
    let cold: Vec<Vec<Vec<f64>>> = sets.iter().map(|xs| reg.eval_many(&ids, xs)).collect();

    // A budget that holds roughly two checkpoints forces steady eviction
    // while the eight input sets cycle twice through the store.
    let mut cache = CheckpointCache::new(1); // memory tier too small to help
    cache.attach_store(
        ArtifactStore::open(&dir)
            .unwrap()
            .with_byte_budget(8 * 1024),
    );
    for round in 0..2 {
        for (i, xs) in sets.iter().enumerate() {
            let got = reg.eval_many_cached(&ids, xs, &mut cache, &mut scratch);
            for (g, c) in got.iter().zip(&cold[i]) {
                for (gv, cv) in g.iter().zip(c) {
                    assert_eq!(gv.to_bits(), cv.to_bits(), "round {round}, set {i}");
                }
            }
        }
    }
    let store = cache.store_stats().expect("store attached");
    assert!(store.evictions > 0, "budget small enough to evict");
    assert_eq!(store.verify_rejects, 0, "eviction never corrupts");
    assert!(store.bytes <= 8 * 1024, "budget respected");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Trained networks round-trip through the store bitwise, across handles.
#[test]
fn trained_nets_round_trip_across_store_handles() {
    let dir = store_dir("nets");
    let net = build_net(23, 3, 7);
    {
        let mut store = ArtifactStore::open(&dir).unwrap();
        assert!(store.store_net("probe-model", &net).unwrap());
        assert!(
            !store.store_net("probe-model", &net).unwrap(),
            "content addressing: re-store is a no-op"
        );
    }
    let mut fresh = ArtifactStore::open(&dir).unwrap();
    let back = fresh.load_net("probe-model").expect("stored net found");
    assert_eq!(
        net_to_bytes(&back),
        net_to_bytes(&net),
        "every weight, bias, gain and output weight survives bitwise"
    );
    assert!(fresh.load_net("other-model").is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

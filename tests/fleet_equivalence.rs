//! Fleet/single-process equivalence — ARCHITECTURE contract 15, checked
//! with *real* worker processes (re-invocations of this test binary):
//!
//! * every fleet-served value is **bitwise** identical to the same query
//!   against a single-process `CertServer` over the same plans — for
//!   N ∈ {1, 2, 4} workers, cold and hot (input-partitioned) plans, and
//!   shuffled arrival orders;
//! * a fleet-sharded campaign reproduces a single-process
//!   `run_campaign` bit for bit, for every worker count;
//! * a mid-run membership change (SIGKILL of a worker while its queries
//!   and campaign shards are in flight) changes *nothing* about the
//!   answers: unanswered rows requeue to the respawned process, no
//!   request is lost or double-answered, and every surviving worker's
//!   request log replay-verifies bitwise.

use std::sync::Arc;

use neurofail::data::rng::rng;
use neurofail::fleet::{reexec_spawner, FleetConfig, FleetError, FleetRouter, WorkerSpawner};
use neurofail::inject::{
    run_campaign, ByzantineStrategy, CampaignConfig, FaultSpec, InjectionPlan, PlanId,
    PlanRegistry, TrialKind,
};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::Mlp;
use neurofail::par::Parallelism;
use neurofail::serve::{CertServer, ServeConfig};
use neurofail::tensor::init::Init;
use proptest::prelude::*;
use rand::Rng;

/// The worker process. Ignored under a normal test run; fleets spawned
/// by the tests below re-invoke this binary with the `NEUROFAIL_FLEET_*`
/// environment set, which routes execution here.
#[test]
#[ignore = "fleet worker child, spawned by the tests below"]
fn fleet_worker_child() {
    if std::env::var(neurofail::fleet::ENV_ADDR).is_ok() {
        std::process::exit(neurofail::fleet::run_worker_from_env());
    }
}

fn spawner() -> WorkerSpawner {
    reexec_spawner(vec![
        "fleet_worker_child".into(),
        "--ignored".into(),
        "--exact".into(),
    ])
}

fn build_net(seed: u64, depth: usize, width: usize) -> Mlp {
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        let act = if i % 2 == 0 {
            Activation::Sigmoid { k: 1.1 }
        } else {
            Activation::Tanh { k: 0.9 }
        };
        b = b.dense(width + (i % 2), act);
    }
    b.init(Init::Uniform { a: 0.7 }).build(&mut rng(seed))
}

/// The plan family both deployments serve, in registration order.
fn plan_family(net: &Mlp, seed: u64) -> Vec<InjectionPlan> {
    let widths = net.widths();
    vec![
        InjectionPlan::none(),
        InjectionPlan::crash([(0, 0), (0, widths[0] - 1)]),
        InjectionPlan::byzantine([(0, 1)], ByzantineStrategy::Random { seed }),
        InjectionPlan::stuck_at([((0, 0), -0.4)]),
    ]
}

/// Deterministically shuffled `(plan index, input)` pairs.
fn request_mix(seed: u64, n: usize, plans: usize) -> Vec<(usize, Vec<f64>)> {
    let mut r = rng(seed ^ 0xF1EE7);
    let mut mix: Vec<(usize, Vec<f64>)> = (0..n)
        .map(|i| {
            let input: Vec<f64> = (0..3).map(|_| r.gen_range(-1.0..=1.0)).collect();
            (i % plans, input)
        })
        .collect();
    for i in (1..mix.len()).rev() {
        let j = r.gen_range(0..=i as u64) as usize;
        mix.swap(i, j);
    }
    mix
}

/// Single-process reference: serve the same mix through one `CertServer`.
fn single_process_reference(
    net: &Arc<Mlp>,
    plans: &[InjectionPlan],
    mix: &[(usize, Vec<f64>)],
) -> Vec<f64> {
    let mut registry = PlanRegistry::new();
    let ids: Vec<PlanId> = plans
        .iter()
        .map(|p| registry.register(Arc::clone(net), p, 1.0).unwrap())
        .collect();
    let server = CertServer::start(&registry, ServeConfig::default());
    let out = mix
        .iter()
        .map(|(p, input)| server.query(ids[*p], input).unwrap())
        .collect();
    server.shutdown();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The differential property: N real worker processes serve the same
    /// shuffled mix bitwise identically to one in-process server, for
    /// N ∈ {1, 2, 4}, cold and hot plan registration alike.
    #[test]
    fn fleet_serves_bitwise_equal_to_single_process(
        seed in 0u64..500,
        depth in 1usize..4,
        width in 3usize..8,
        hot in proptest::bool::ANY,
    ) {
        let net = Arc::new(build_net(seed, depth, width));
        let plans = plan_family(&net, seed);
        let mix = request_mix(seed, 20, plans.len());
        let expect = single_process_reference(&net, &plans, &mix);

        for n_workers in [1usize, 2, 4] {
            let fleet = FleetRouter::start(FleetConfig::default(), n_workers, spawner()).unwrap();
            let ids: Vec<_> = plans
                .iter()
                .map(|p| {
                    if hot {
                        fleet.register_hot(&net, p, 1.0).unwrap()
                    } else {
                        fleet.register(&net, p, 1.0).unwrap()
                    }
                })
                .collect();
            // Submit the whole mix asynchronously, then resolve: answers
            // may interleave across workers but must match per-request.
            let handles: Vec<_> = mix
                .iter()
                .map(|(p, input)| fleet.submit(ids[*p], input.clone()))
                .collect();
            for (k, h) in handles.into_iter().enumerate() {
                let got = h.wait().expect("fleet answers every accepted query");
                prop_assert_eq!(
                    got.to_bits(),
                    expect[k].to_bits(),
                    "query {} diverged under N={} (hot={})", k, n_workers, hot
                );
            }
            let audit = fleet.audit();
            prop_assert!(audit.clean(), "request logs must replay bitwise");
            prop_assert_eq!(audit.entries(), mix.len() as u64);
            fleet.shutdown();
        }
    }
}

/// A fleet-sharded campaign merges to the exact bits of a single-process
/// run, for every worker count.
#[test]
fn fleet_campaign_is_bitwise_equal_to_single_process() {
    let net = build_net(0xCA3, 2, 6);
    let counts = [2usize, 1];
    let cfg = CampaignConfig {
        trials: 23,
        inputs_per_trial: 6,
        ..CampaignConfig::default()
    };
    let whole = run_campaign(
        &net,
        &counts,
        TrialKind::Neurons(FaultSpec::Crash),
        &cfg,
        Parallelism::Sequential,
    );
    for n_workers in [1usize, 2, 4] {
        let fleet = FleetRouter::start(FleetConfig::default(), n_workers, spawner()).unwrap();
        let got = fleet
            .run_campaign(&net, &counts, TrialKind::Neurons(FaultSpec::Crash), &cfg)
            .expect("fleet campaign completes");
        assert_eq!(got.stats.mean.to_bits(), whole.stats.mean.to_bits());
        assert_eq!(got.stats.std_dev.to_bits(), whole.stats.std_dev.to_bits());
        assert_eq!(got.stats.min.to_bits(), whole.stats.min.to_bits());
        assert_eq!(got.stats.max.to_bits(), whole.stats.max.to_bits());
        assert_eq!(got.evaluations, whole.evaluations);
        assert_eq!(
            got.worst, whole.worst,
            "worst case diverged at N={n_workers}"
        );
        fleet.shutdown();
    }
}

/// Contract 15's membership clause: killing a worker mid-run (queries in
/// flight *and* campaign shards outstanding) loses nothing and changes
/// no answer — the dead process's rows requeue to its respawn.
#[test]
fn mid_run_membership_change_preserves_every_answer() {
    let net = Arc::new(build_net(0xD0D0, 2, 6));
    let plans = plan_family(&net, 0xD0D0);
    let mix = request_mix(0xD0D0, 40, plans.len());
    let expect = single_process_reference(&net, &plans, &mix);
    let counts = [2usize, 1];
    let camp_cfg = CampaignConfig {
        trials: 16,
        inputs_per_trial: 5,
        ..CampaignConfig::default()
    };
    let camp_whole = run_campaign(
        &net,
        &counts,
        TrialKind::Neurons(FaultSpec::Crash),
        &camp_cfg,
        Parallelism::Sequential,
    );

    let fleet = FleetRouter::start(FleetConfig::default(), 2, spawner()).unwrap();
    let ids: Vec<_> = plans
        .iter()
        .map(|p| fleet.register_hot(&net, p, 1.0).unwrap())
        .collect();

    // First half in flight…
    let first: Vec<_> = mix[..20]
        .iter()
        .map(|(p, input)| fleet.submit(ids[*p], input.clone()))
        .collect();
    // …kick off a sharded campaign…
    let camp = std::thread::scope(|s| {
        let fleet = &fleet;
        let net = Arc::clone(&net);
        let camp = s.spawn(move || {
            fleet.run_campaign(
                &net,
                &counts,
                TrialKind::Neurons(FaultSpec::Crash),
                &camp_cfg,
            )
        });
        // …and kill a worker while both are outstanding.
        assert!(fleet.kill_worker(0), "worker 0 should be alive to kill");
        let second: Vec<_> = mix[20..]
            .iter()
            .map(|(p, input)| fleet.submit(ids[*p], input.clone()))
            .collect();
        for (k, h) in first.into_iter().chain(second).enumerate() {
            let got = h.wait().expect("no accepted query is lost to the kill");
            assert_eq!(
                got.to_bits(),
                expect[k].to_bits(),
                "query {k} diverged across the membership change"
            );
        }
        camp.join().expect("campaign thread")
    })
    .expect("campaign survives the kill");
    assert_eq!(camp.stats.mean.to_bits(), camp_whole.stats.mean.to_bits());
    assert_eq!(camp.evaluations, camp_whole.evaluations);
    assert_eq!(camp.worst, camp_whole.worst);

    // Typed refusals still work across the boundary.
    match fleet.query(ids[0], &[0.1, 0.2]) {
        Err(FleetError::DimensionMismatch {
            expected: 3,
            got: 2,
        }) => {}
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    match fleet.query(neurofail::fleet::FleetPlanId(999), &[0.1, 0.2, 0.3]) {
        Err(FleetError::UnknownPlan) => {}
        other => panic!("expected UnknownPlan, got {other:?}"),
    }

    let stats = fleet.stats();
    assert!(stats.respawns >= 1, "the killed worker must respawn");
    assert!(
        stats.requeues >= 1,
        "the killed worker's in-flight rows must requeue"
    );
    let audit = fleet.audit();
    assert!(
        audit.clean(),
        "surviving logs replay bitwise after the kill"
    );
    fleet.shutdown();
}

//! Cross-engine differential fuzzing: one generator, every engine.
//!
//! The workspace now has four bitwise-equivalent ways to evaluate a
//! compiled plan's disturbance over an input set:
//!
//! 1. **singleton batches** — each row as its own `output_error_batch`
//!    call (the serving engine's reference path);
//! 2. **whole-batch** `output_error_batch` (the PR 1 engine, and the
//!    reference implementation the others are stated against);
//! 3. **multi-plan suffix** `output_error_many` (PR 4's shared nominal
//!    checkpoint + per-plan resume);
//! 4. **streaming extend** — the input set pushed in chunks through
//!    `StreamingEvaluator` (appendable checkpoint + per-chunk resumes).
//!
//! One proptest generator drives random networks, random fault plans
//! (every kind: crash / stuck-at / Byzantine neurons, crash / Byzantine
//! hidden and output synapses) and random inputs through all four and
//! asserts **pairwise bitwise agreement** — so when a fifth engine
//! arrives (or one of these four drifts), the disagreement is pinned to
//! an engine pair and a concrete `(net, plan, input)` witness instead of
//! surfacing as a distant downstream diff. The scalar per-input engine
//! (`output_error`) is held to the documented ≤ 1e-12 batch/scalar
//! envelope rather than bitwise — it accumulates dot products in a
//! different order and uses `libm` transcendentals.
//!
//! A **planner sweep** rides on the same generator: the plans are
//! registered in a [`neurofail::inject::PlanRegistry`] and every engine
//! the cost-model planner can pick is forced in turn
//! ([`Planner::force`]), each held bitwise to the whole-batch reference —
//! the executable form of ARCHITECTURE contract 14 (planner
//! invisibility).
//!
//! A **compute-backend sweep** rides on the same generator: the
//! whole-batch engine is re-run under every supported
//! [`neurofail::tensor::backend`] kind and held to its per-backend
//! determinism contract against a forced-portable reference (AVX2
//! bitwise, other SIMD backends ≤ 1e-12).

use std::sync::Arc;

use neurofail::data::rng::rng;
use neurofail::inject::plan::{
    InjectionPlan, NeuronFault, NeuronSite, SynapseFault, SynapseSite, SynapseTarget,
};
use neurofail::inject::{ByzantineStrategy, CompiledPlan, StreamingEvaluator};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::{BatchWorkspace, Mlp, Workspace};
use neurofail::tensor::backend::{self, BackendKind};
use neurofail::tensor::init::Init;
use neurofail::tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;

fn build_net(seed: u64, depth: usize, width: usize, tanh: bool, bias: bool) -> Mlp {
    let act = if tanh {
        Activation::Tanh { k: 0.9 }
    } else {
        Activation::Sigmoid { k: 1.1 }
    };
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        b = b.dense(width + (i % 2), act);
    }
    b.init(Init::Uniform { a: 0.6 })
        .bias(bias)
        .build(&mut rng(seed))
}

/// A random plan over `net`: up to three neuron sites and two synapse
/// sites, kinds and positions drawn from the seeded stream — the same
/// site space the plan-family suites enumerate by hand, sampled instead.
fn random_plan(net: &Mlp, seed: u64) -> InjectionPlan {
    let widths = net.widths();
    let depth = widths.len();
    let mut r = rng(seed ^ 0xF022);
    let mut neurons = Vec::new();
    let mut used: Vec<(usize, usize)> = Vec::new();
    for _ in 0..r.gen_range(0..=3usize) {
        let layer = r.gen_range(0..depth);
        let neuron = r.gen_range(0..widths[layer]);
        if used.contains(&(layer, neuron)) {
            continue; // compiled plans reject duplicate neuron sites
        }
        used.push((layer, neuron));
        let fault = match r.gen_range(0..4u8) {
            0 => NeuronFault::Crash,
            1 => NeuronFault::StuckAt(r.gen_range(-2.0..2.0)),
            2 => NeuronFault::Byzantine(match r.gen_range(0..4u8) {
                0 => ByzantineStrategy::MaxPositive,
                1 => ByzantineStrategy::MaxNegative,
                2 => ByzantineStrategy::OpposeNominal,
                _ => ByzantineStrategy::Random { seed: seed ^ 0x9 },
            }),
            _ => NeuronFault::Crash,
        };
        neurons.push(NeuronSite {
            layer,
            neuron,
            fault,
        });
    }
    let mut synapses = Vec::new();
    for _ in 0..r.gen_range(0..=2usize) {
        let fault = if r.gen_range(0..2u8) == 0 {
            SynapseFault::Crash
        } else {
            SynapseFault::Byzantine(r.gen_range(-3.0..3.0))
        };
        let target = if r.gen_range(0..3u8) == 0 {
            SynapseTarget::Output {
                from: r.gen_range(0..widths[depth - 1]),
            }
        } else {
            let layer = r.gen_range(0..depth);
            let fan_in = if layer == 0 {
                net.input_dim()
            } else {
                widths[layer - 1]
            };
            SynapseTarget::Hidden {
                layer,
                to: r.gen_range(0..widths[layer]),
                from: r.gen_range(0..fan_in),
            }
        };
        synapses.push(SynapseSite { target, fault });
    }
    InjectionPlan { neurons, synapses }
}

fn random_inputs(seed: u64, batch: usize, d: usize) -> Matrix {
    let mut r = rng(seed ^ 0xD1FF);
    Matrix::from_fn(batch, d, |_, _| r.gen_range(-1.0..=1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_engines_agree_bitwise(
        seed in 0u64..5000,
        depth in 1usize..5,
        width in 3usize..9,
        batch in 0usize..11,
        chunk_size in 1usize..5,
        plan_count in 1usize..4,
        tanh in proptest::bool::ANY,
        bias in proptest::bool::ANY,
    ) {
        let net = Arc::new(build_net(seed, depth, width, tanh, bias));
        let plans: Vec<CompiledPlan> = (0..plan_count)
            .map(|p| {
                let plan = random_plan(&net, seed.wrapping_add(p as u64 * 7919));
                CompiledPlan::compile(&plan, &net, 1.0).expect("generator stays in range")
            })
            .collect();
        let xs = random_inputs(seed, batch, 3);

        // Engine 2 (reference): whole-batch evaluation, per plan.
        let mut ws = BatchWorkspace::default();
        let whole: Vec<Vec<f64>> = plans
            .iter()
            .map(|p| p.output_error_batch(&net, &xs, &mut ws))
            .collect();

        // Engine 1: every row as its own singleton batch.
        let mut one = Matrix::zeros(1, 3);
        for (pi, plan) in plans.iter().enumerate() {
            for (b, wv) in whole[pi].iter().enumerate() {
                one.row_mut(0).copy_from_slice(xs.row(b));
                let single = plan.output_error_batch(&net, &one, &mut ws)[0];
                prop_assert_eq!(
                    single.to_bits(), wv.to_bits(),
                    "singleton vs whole-batch: plan {}, row {}", pi, b
                );
            }
        }

        // Engine 3: multi-plan suffix sharing one nominal checkpoint.
        let many = neurofail::inject::output_error_many(&net, &xs, &plans);
        for (pi, (m, w)) in many.iter().zip(&whole).enumerate() {
            prop_assert_eq!(m.len(), w.len());
            for (b, (mv, wv)) in m.iter().zip(w).enumerate() {
                prop_assert_eq!(
                    mv.to_bits(), wv.to_bits(),
                    "suffix vs whole-batch: plan {}, row {}", pi, b
                );
            }
        }

        // Engine 4: streaming extend, the input set arriving in chunks.
        let mut stream = StreamingEvaluator::new(Arc::clone(&net), plans.clone());
        let mut streamed: Vec<Vec<f64>> = vec![Vec::new(); plans.len()];
        let mut start = 0;
        while start < batch {
            let rows = chunk_size.min(batch - start);
            let chunk = Matrix::from_fn(rows, 3, |r, c| xs.get(start + r, c));
            for (p, errs) in stream.push_chunk(&chunk).into_iter().enumerate() {
                streamed[p].extend(errs);
            }
            start += rows;
        }
        for (pi, (s, w)) in streamed.iter().zip(&whole).enumerate() {
            prop_assert_eq!(s.len(), w.len());
            for (b, (sv, wv)) in s.iter().zip(w).enumerate() {
                prop_assert_eq!(
                    sv.to_bits(), wv.to_bits(),
                    "streaming vs whole-batch: plan {}, row {}", pi, b
                );
            }
        }

        // Planner dimension (ARCHITECTURE contract 14): register the same
        // plans in a registry and force every engine the cost-model
        // planner can pick, asserting each forced choice returns results
        // bitwise equal to the whole-batch reference. `Cached` is forced
        // through `eval_many_cached` twice so both the cold (miss) and
        // warm (checkpoint hit) paths are covered; an infeasible forced
        // engine falls back to the cost model, which still must agree.
        {
            use neurofail::inject::{CheckpointCache, Engine, PlanRegistry};
            let mut registry = PlanRegistry::new();
            let ids: Vec<_> = plans
                .iter()
                .map(|p| registry.register_compiled(Arc::clone(&net), p.clone()))
                .collect();
            for engine in Engine::ALL {
                registry.planner().force(Some(engine));
                let got = if engine == Engine::Cached {
                    let mut cache = CheckpointCache::new(2);
                    let mut scratch = BatchWorkspace::default();
                    let cold = registry.eval_many_cached(&ids, &xs, &mut cache, &mut scratch);
                    let warm = registry.eval_many_cached(&ids, &xs, &mut cache, &mut scratch);
                    for (pi, (c, w)) in cold.iter().zip(&warm).enumerate() {
                        prop_assert_eq!(c.len(), w.len());
                        for (b, (cv, wv)) in c.iter().zip(w).enumerate() {
                            prop_assert_eq!(
                                cv.to_bits(), wv.to_bits(),
                                "cached cold vs warm: plan {}, row {}", pi, b
                            );
                        }
                    }
                    warm
                } else {
                    registry.eval_many(&ids, &xs)
                };
                for (pi, (g, w)) in got.iter().zip(&whole).enumerate() {
                    prop_assert_eq!(g.len(), w.len());
                    for (b, (gv, wv)) in g.iter().zip(w).enumerate() {
                        prop_assert_eq!(
                            gv.to_bits(), wv.to_bits(),
                            "forced {} vs whole-batch: plan {}, row {}",
                            engine.name(), pi, b
                        );
                    }
                }
            }
            registry.planner().force(None);
            let free = registry.eval_many(&ids, &xs);
            for (pi, (g, w)) in free.iter().zip(&whole).enumerate() {
                for (b, (gv, wv)) in g.iter().zip(w).enumerate() {
                    prop_assert_eq!(
                        gv.to_bits(), wv.to_bits(),
                        "planner free choice vs whole-batch: plan {}, row {}", pi, b
                    );
                }
            }
        }

        // Backend sweep: the same whole-batch evaluation under every
        // supported compute backend, against a forced-portable reference.
        // AVX2 is bitwise by the documented contract; any other SIMD
        // backend rides at the ≤ 1e-12 per-backend envelope. Mixed32 is
        // opt-in reduced precision with its own (wider) envelope and is
        // exercised by the dedicated backend suites instead.
        let portable: Vec<Vec<f64>> = backend::with_backend(BackendKind::Portable, || {
            plans
                .iter()
                .map(|p| p.output_error_batch(&net, &xs, &mut ws))
                .collect()
        });
        for kind in backend::supported_kinds() {
            if kind == BackendKind::Mixed32 {
                continue;
            }
            let got: Vec<Vec<f64>> = backend::with_backend(kind, || {
                plans
                    .iter()
                    .map(|p| p.output_error_batch(&net, &xs, &mut ws))
                    .collect()
            });
            for (pi, (g, p)) in got.iter().zip(&portable).enumerate() {
                prop_assert_eq!(g.len(), p.len());
                for (b, (gv, pv)) in g.iter().zip(p).enumerate() {
                    if matches!(kind, BackendKind::Portable | BackendKind::Avx2) {
                        prop_assert_eq!(
                            gv.to_bits(), pv.to_bits(),
                            "{} vs portable: plan {}, row {}", kind.name(), pi, b
                        );
                    } else {
                        prop_assert!(
                            (gv - pv).abs() <= 1e-12 * pv.abs().max(1.0),
                            "{} vs portable: plan {}, row {}: {:e} vs {:e}",
                            kind.name(), pi, b, gv, pv
                        );
                    }
                }
            }
        }
        // The forced-portable reference itself agrees bitwise with the
        // ambient-backend `whole` evaluation only when the ambient GEMM
        // order is order-identical; what the engines guarantee pairwise
        // is agreement *under a fixed ambient backend*, checked above.

        // The scalar engine rides along at its documented ≤ 1e-12
        // batch/scalar envelope (different accumulation order + libm).
        let mut sws = Workspace::for_net(&net);
        for (pi, plan) in plans.iter().enumerate() {
            for (b, wv) in whole[pi].iter().enumerate() {
                let scalar = plan.output_error(&net, xs.row(b), &mut sws);
                prop_assert!(
                    (scalar - wv).abs() <= 1e-12,
                    "scalar vs batch: plan {}, row {}: {:e} vs {:e}",
                    pi, b, scalar, wv
                );
            }
        }
    }
}

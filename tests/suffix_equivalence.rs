//! Suffix-engine equivalence — the checkpoint/resume refactor's central
//! contract, checked at workspace level:
//!
//! * `output_error_many` / `MultiPlanEvaluator` / `output_error_resumed`
//!   are **bitwise** equal to per-plan `output_error_batch` across random
//!   networks, every fault kind (crash / Byzantine / stuck-at neurons,
//!   crash / Byzantine hidden and output synapses), batch sizes including
//!   B ∈ {0, 1, odd}, and `Parallelism` policies;
//! * a resumed pass is bitwise equal to the full faulty pass for **every**
//!   admissible suffix split `from ≤ first_faulty_layer`, not just the
//!   optimal one;
//! * `exhaustive_crash_search` results are bit-identical to the
//!   pre-refactor cost model (nominal pass + full faulty pass per subset);
//! * campaigns on the suffix engine stay bit-identical across thread
//!   counts, and their reported worst cases re-derive standalone.

use neurofail::data::rng::rng;
use neurofail::inject::exhaustive::{exhaustive_crash_search, Combinations};
use neurofail::inject::plan::{
    InjectionPlan, NeuronFault, NeuronSite, SynapseFault, SynapseSite, SynapseTarget,
};
use neurofail::inject::{
    output_error_many, run_campaign, ByzantineStrategy, CampaignConfig, CompiledPlan, FaultSpec,
    MultiPlanEvaluator, TrialKind,
};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::{BatchWorkspace, Mlp};
use neurofail::par::{parallel_map, Parallelism};
use neurofail::tensor::init::Init;
use neurofail::tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;

/// Random network from a compact recipe (mirrors `batch_equivalence.rs`).
fn build_net(seed: u64, depth: usize, width: usize, tanh: bool, bias: bool) -> Mlp {
    let act = if tanh {
        Activation::Tanh { k: 0.9 }
    } else {
        Activation::Sigmoid { k: 1.1 }
    };
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        b = b.dense(width + (i % 3), act);
    }
    b.init(Init::Uniform { a: 0.5 })
        .bias(bias)
        .build(&mut rng(seed))
}

fn random_inputs(seed: u64, batch: usize, d: usize) -> Matrix {
    let mut r = rng(seed ^ 0x5FF1);
    Matrix::from_fn(batch, d, |_, _| r.gen_range(-1.0..=1.0))
}

/// A plan family touching every fault kind and every depth of `net` —
/// including the suffix engine's extreme cases (empty plan, output-synapse
/// -only plan).
fn plan_family(net: &Mlp, seed: u64) -> Vec<InjectionPlan> {
    let widths = net.widths();
    let depth = widths.len();
    let last = depth - 1;
    let mut plans = vec![
        InjectionPlan::none(),
        InjectionPlan::crash([(0, 0)]),
        InjectionPlan::crash([(last, widths[last] - 1)]),
        InjectionPlan::byzantine([(last, 0)], ByzantineStrategy::MaxPositive),
        InjectionPlan::byzantine([(0, 1 % widths[0])], ByzantineStrategy::Random { seed }),
        InjectionPlan::byzantine([(last, 0)], ByzantineStrategy::OpposeNominal),
        // Stuck-at neuron + crashed hidden synapse at the last layer.
        InjectionPlan {
            neurons: vec![NeuronSite {
                layer: last,
                neuron: 0,
                fault: NeuronFault::StuckAt(0.3),
            }],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Hidden {
                    layer: last,
                    to: 0,
                    from: 0,
                },
                fault: SynapseFault::Crash,
            }],
        },
        // Byzantine hidden synapse into layer 0.
        InjectionPlan {
            neurons: vec![],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Hidden {
                    layer: 0,
                    to: 0,
                    from: 1,
                },
                fault: SynapseFault::Byzantine(0.4),
            }],
        },
        // Output-synapse-only plans: crash and Byzantine — the resume-at-
        // the-output-dot-product limit case.
        InjectionPlan {
            neurons: vec![],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Output { from: 0 },
                fault: SynapseFault::Crash,
            }],
        },
        InjectionPlan {
            neurons: vec![],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Output {
                    from: widths[last] - 1,
                },
                fault: SynapseFault::Byzantine(-3.0),
            }],
        },
    ];
    if depth >= 2 {
        // A mid-depth mixed plan.
        plans.push(InjectionPlan {
            neurons: vec![NeuronSite {
                layer: 1,
                neuron: widths[1] / 2,
                fault: NeuronFault::Byzantine(ByzantineStrategy::MaxNegative),
            }],
            synapses: vec![SynapseSite {
                target: SynapseTarget::Hidden {
                    layer: 1,
                    to: 0,
                    from: widths[0] - 1,
                },
                fault: SynapseFault::Crash,
            }],
        });
    }
    plans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `output_error_many` is bitwise per-plan `output_error_batch` across
    /// nets, fault kinds and batch sizes (0, 1 and odd sizes included).
    #[test]
    fn many_is_bitwise_per_plan(
        seed in 0u64..1000,
        depth in 1usize..5,
        width in 3usize..10,
        batch_idx in 0usize..4,
        tanh in proptest::bool::ANY,
        bias in proptest::bool::ANY,
    ) {
        let batch = [0usize, 1, 7, 13][batch_idx]; // B ∈ {0, 1, odd}
        let net = build_net(seed, depth, width, tanh, bias);
        let plans: Vec<CompiledPlan> = plan_family(&net, seed)
            .iter()
            .map(|p| CompiledPlan::compile(p, &net, 1.0).unwrap())
            .collect();
        let xs = random_inputs(seed, batch, 3);
        let many = output_error_many(&net, &xs, &plans);
        prop_assert_eq!(many.len(), plans.len());
        let mut ws = BatchWorkspace::default();
        for (pi, (plan, errs)) in plans.iter().zip(&many).enumerate() {
            let direct = plan.output_error_batch(&net, &xs, &mut ws);
            prop_assert_eq!(errs.len(), batch);
            for (b, (e, d)) in errs.iter().zip(&direct).enumerate() {
                prop_assert_eq!(
                    e.to_bits(), d.to_bits(),
                    "plan {}, row {}: suffix {:e} vs direct {:e}", pi, b, e, d
                );
            }
        }
    }

    /// Resuming at **every** admissible split `from ≤ first_faulty_layer`
    /// — not just the optimal split — reproduces the full faulty pass
    /// bitwise: the skipped prefix truly recomputes nominal values.
    #[test]
    fn every_suffix_split_is_bitwise(
        seed in 0u64..1000,
        depth in 1usize..5,
        width in 3usize..9,
        batch in 1usize..8,
    ) {
        let net = build_net(seed, depth, width, false, true);
        let xs = random_inputs(seed, batch, 3);
        let mut nominal = BatchWorkspace::for_net(&net, batch);
        let _ = net.forward_batch(&xs, &mut nominal);
        let mut full_ws = BatchWorkspace::default();
        let mut scratch = BatchWorkspace::default();
        for plan in plan_family(&net, seed) {
            let compiled = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
            let full = compiled.run_batch(&net, &xs, &mut full_ws);
            let first = compiled.first_faulty_layer();
            prop_assert!(first <= net.depth());
            for from in 0..=first {
                let resume_input: &Matrix = if from == 0 {
                    &xs
                } else {
                    &nominal.outs[from - 1]
                };
                let resumed = compiled.resume_batch_from(&net, resume_input, &mut scratch, from);
                for (b, (f, r)) in full.iter().zip(&resumed).enumerate() {
                    prop_assert_eq!(
                        f.to_bits(), r.to_bits(),
                        "plan {:?}, split {}, row {}", &plan, from, b
                    );
                }
            }
        }
    }

    /// The single-plan suffix path (`output_error_resumed`, what campaigns
    /// and serve flushes call) is bitwise `output_error_batch`.
    #[test]
    fn resumed_single_plan_is_bitwise(
        seed in 0u64..1000,
        depth in 1usize..5,
        width in 3usize..9,
        batch_idx in 0usize..4,
    ) {
        let batch = [0usize, 1, 5, 11][batch_idx];
        let net = build_net(seed, depth, width, true, false);
        let xs = random_inputs(seed, batch, 3);
        let mut ws = BatchWorkspace::default();
        let mut wn = BatchWorkspace::default();
        let mut wsc = BatchWorkspace::default();
        for plan in plan_family(&net, seed) {
            let compiled = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
            let direct = compiled.output_error_batch(&net, &xs, &mut ws);
            let resumed = compiled.output_error_resumed(&net, &xs, &mut wn, &mut wsc);
            for (b, (d, r)) in direct.iter().zip(&resumed).enumerate() {
                prop_assert_eq!(d.to_bits(), r.to_bits(), "plan {:?}, row {}", &plan, b);
            }
        }
    }

    /// The multi-plan engine is deterministic under parallel evaluation:
    /// evaluating the family concurrently (one evaluator per worker, any
    /// `Parallelism` policy) is bitwise the sequential result.
    #[test]
    fn many_is_bitwise_across_parallelism_policies(
        seed in 0u64..500,
        depth in 2usize..5,
        width in 3usize..8,
        batch in 1usize..6,
    ) {
        let net = build_net(seed, depth, width, false, false);
        let plans: Vec<CompiledPlan> = plan_family(&net, seed)
            .iter()
            .map(|p| CompiledPlan::compile(p, &net, 1.0).unwrap())
            .collect();
        let xs = random_inputs(seed, batch, 3);
        let reference = output_error_many(&net, &xs, &plans);
        for policy in [Parallelism::Sequential, Parallelism::Threads(2), Parallelism::Threads(5)] {
            let parallel: Vec<Vec<f64>> = parallel_map(policy, plans.len(), |i| {
                let mut eval = MultiPlanEvaluator::new(&net, &xs);
                eval.output_error(&plans[i])
            });
            for (pi, (r, p)) in reference.iter().zip(&parallel).enumerate() {
                for (b, (a, c)) in r.iter().zip(p).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), c.to_bits(),
                        "policy {:?}, plan {}, row {}", policy, pi, b
                    );
                }
            }
        }
    }
}

/// The degenerate split: a plan faulting layer 0 has an **empty** shared
/// prefix, so its only admissible resume is `from = 0` — which must
/// degrade to exactly the full pass. With no tap at all, `resume_batch_from`
/// at 0 must *be* `forward_batch`, bitwise, checkpoint untouched.
#[test]
fn resume_from_zero_degrades_to_forward_batch() {
    for (seed, depth, width) in [(11u64, 1usize, 5usize), (12, 3, 6), (13, 4, 4)] {
        let net = build_net(seed, depth, width, seed % 2 == 0, true);
        let xs = random_inputs(seed, 6, 3);
        let mut nominal = BatchWorkspace::for_net(&net, 6);
        let full = net.forward_batch(&xs, &mut nominal);

        // Tapless resume at 0 is forward_batch, bit for bit.
        let mut scratch = BatchWorkspace::default();
        let resumed = net.resume_batch_from(&xs, &mut scratch, &mut neurofail::nn::NoBatchTap, 0);
        for (b, (&f, &r)) in full.iter().zip(&resumed).enumerate() {
            assert_eq!(f.to_bits(), r.to_bits(), "row {b}");
        }

        // A layer-0-faulted plan (first_faulty_layer == 0): the suffix
        // engine's resume covers the whole pass, and both the direct
        // resume and the checkpoint-borrowing convenience agree bitwise
        // with the full faulty pass.
        let plan = CompiledPlan::compile(&InjectionPlan::crash([(0, 1)]), &net, 1.0).unwrap();
        assert_eq!(plan.first_faulty_layer(), 0, "empty shared prefix");
        let mut full_ws = BatchWorkspace::default();
        let faulty_full = plan.run_batch(&net, &xs, &mut full_ws);
        let faulty_resumed = plan.resume_batch_from(&net, &xs, &mut scratch, 0);
        let faulty_checkpointed =
            plan.resume_batch_checkpointed(&net, &xs, &nominal, &mut scratch, 0);
        for (b, ((&f, &r), &c)) in faulty_full
            .iter()
            .zip(&faulty_resumed)
            .zip(&faulty_checkpointed)
            .enumerate()
        {
            assert_eq!(f.to_bits(), r.to_bits(), "resume row {b}");
            assert_eq!(f.to_bits(), c.to_bits(), "checkpointed row {b}");
        }

        // The checkpoint was only read: it still replays the nominal pass.
        let replay = net.resume_batch_tapped(
            &xs,
            &nominal,
            &mut scratch,
            &mut neurofail::nn::NoBatchTap,
            depth,
        );
        for (b, (&f, &r)) in full.iter().zip(&replay).enumerate() {
            assert_eq!(f.to_bits(), r.to_bits(), "checkpoint intact, row {b}");
        }
    }
}

/// The exhaustive sweep is bit-identical to the pre-refactor cost model:
/// one nominal batch + a **full** faulty pass per subset, worst tracked in
/// the same iteration order.
#[test]
fn exhaustive_search_is_bit_identical_to_pre_refactor_engine() {
    for (seed, depth, width, layer, k) in [
        (3u64, 3usize, 6usize, 2usize, 2usize),
        (4, 4, 5, 0, 1),
        (5, 2, 7, 1, 3),
    ] {
        let net = build_net(seed, depth, width, seed % 2 == 0, true);
        let inputs: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.17 * i as f64 - 0.5, 0.3, -0.2 + 0.11 * i as f64])
            .collect();
        let got = exhaustive_crash_search(&net, layer, k, &inputs, 1.0);

        // Pre-refactor reference engine.
        let mut xs = Matrix::zeros(inputs.len(), 3);
        for (r, x) in inputs.iter().enumerate() {
            xs.row_mut(r).copy_from_slice(x);
        }
        let mut ws = BatchWorkspace::for_net(&net, inputs.len());
        let nominal = net.forward_batch(&xs, &mut ws);
        let mut worst_error = 0.0f64;
        let mut worst_subset = Vec::new();
        let mut evaluations = 0u64;
        for subset in Combinations::new(net.widths()[layer], k) {
            let plan = InjectionPlan::crash(subset.iter().map(|&n| (layer, n)));
            let compiled = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
            let faulty = compiled.run_batch(&net, &xs, &mut ws);
            evaluations += faulty.len() as u64;
            for (&nom, &fail) in nominal.iter().zip(&faulty) {
                let err = (nom - fail).abs();
                if err > worst_error {
                    worst_error = err;
                    worst_subset = subset.clone();
                }
            }
        }
        assert_eq!(got.worst_error.to_bits(), worst_error.to_bits());
        assert_eq!(got.worst_subset, worst_subset);
        assert_eq!(got.evaluations, evaluations);
    }
}

/// Campaigns on the suffix engine: bit-identical across thread counts, and
/// the worst case both replays as a singleton batch and re-derives from
/// its recorded `(trial, seed)`.
#[test]
fn suffix_campaign_is_deterministic_and_worst_case_rederives() {
    let net = build_net(21, 3, 7, false, true);
    let cfg = CampaignConfig {
        trials: 18,
        inputs_per_trial: 9,
        ..CampaignConfig::default()
    };
    let reference = run_campaign(
        &net,
        &[1, 0, 2],
        TrialKind::Neurons(FaultSpec::ByzantineRandom),
        &cfg,
        Parallelism::Sequential,
    );
    for threads in [2usize, 5] {
        let got = run_campaign(
            &net,
            &[1, 0, 2],
            TrialKind::Neurons(FaultSpec::ByzantineRandom),
            &cfg,
            Parallelism::Threads(threads),
        );
        assert_eq!(got.stats, reference.stats);
        assert_eq!(got.worst, reference.worst);
    }
    let worst = reference.worst.expect("faults were injected");
    // Bitwise singleton replay of the recorded (plan, input).
    let compiled = CompiledPlan::compile(&worst.plan, &net, cfg.capacity).unwrap();
    let single = Matrix::from_vec(1, 3, worst.input.clone());
    let mut ws = BatchWorkspace::for_net(&net, 1);
    assert_eq!(
        compiled.output_error_batch(&net, &single, &mut ws)[0].to_bits(),
        worst.error.to_bits()
    );
    // Standalone re-derivation from the recorded trial seed.
    let mut r = rng(worst.seed);
    let plan = neurofail::inject::sampler::sample_neuron_plan(
        &net,
        &[1, 0, 2],
        FaultSpec::ByzantineRandom,
        &mut r,
    );
    assert_eq!(plan, worst.plan);
}

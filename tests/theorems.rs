//! Integration checks of the theorem statements themselves against the
//! executable model — closed forms, consistency between theorems, and the
//! documented reproduction findings.

use neurofail::core::byzantine::{lemma1_zero_tolerance, max_faults_in_layer, tolerates};
use neurofail::core::crash::crash_tolerance_single_layer;
use neurofail::core::fep::{fep_ln, fep_with_magnitude, per_layer_terms};
use neurofail::core::overprovision::{nmin_estimate, overprovision_factor};
use neurofail::core::precision::{precision_bound, ErrorLocus};
use neurofail::core::synapse::{synapse_fep, SynapseBoundForm};
use neurofail::core::{crash_fep, fep, EpsilonBudget, FaultClass, NetworkProfile};

fn budget(e: f64, ep: f64) -> EpsilonBudget {
    EpsilonBudget::new(e, ep).unwrap()
}

#[test]
fn theorem1_is_the_single_layer_case_of_theorem3() {
    // For L = 1 and C = sup ϕ, Theorem 3's condition Fep <= eps - eps'
    // reduces to Theorem 1's N_fail <= (eps - eps') / w_m.
    for (n, w, e, ep) in [
        (50usize, 0.01, 0.3, 0.1),
        (20, 0.05, 0.5, 0.25),
        (9, 0.11, 0.9, 0.3),
    ] {
        let p = NetworkProfile::uniform(1, n, w, 1.0, 1.0);
        let b = budget(e, ep);
        let t1 = crash_tolerance_single_layer(b, w).min(n);
        // Largest f admissible under Theorem 3 (crash case).
        let t3 = (0..=n)
            .rev()
            .find(|&f| crash_fep(&p, &[f]) <= b.slack())
            .unwrap();
        assert_eq!(t1, t3, "n={n} w={w}");
    }
}

#[test]
fn theorem2_closed_form_three_layers() {
    // Hand-computed Fep for a 3-layer profile with distinct parameters.
    let mut p = NetworkProfile::uniform(3, 6, 0.5, 2.0, 1.5);
    p.layers[1].w_in = 0.4; // w^(2)
    p.layers[2].w_in = 0.3; // w^(3)
    p.w_out = 0.2; // w^(4)
    let f = [1usize, 2, 3];
    // term(l=1) = C·1·K²·(6−2)·0.4·(6−3)·0.3·0.2
    let t1 = 1.5 * 1.0 * 4.0 * 4.0 * 0.4 * 3.0 * 0.3 * 0.2;
    // term(l=2) = C·2·K·(6−3)·0.3·0.2
    let t2 = 1.5 * 2.0 * 2.0 * 3.0 * 0.3 * 0.2;
    // term(l=3) = C·3·0.2
    let t3 = 1.5 * 3.0 * 0.2;
    let terms = per_layer_terms(&p, &f, 1.5);
    assert!((terms[0] - t1).abs() < 1e-12);
    assert!((terms[1] - t2).abs() < 1e-12);
    assert!((terms[2] - t3).abs() < 1e-12);
    assert!((fep(&p, &f) - (t1 + t2 + t3)).abs() < 1e-12);
    // Log-space agrees.
    assert!((fep_ln(&p, &f, 1.5) - (t1 + t2 + t3).ln()).abs() < 1e-9);
}

#[test]
fn lemma1_limit_of_theorem3() {
    // N_fail -> 0 as C -> inf (the paper derives Lemma 1 as this limit).
    let b = budget(1.0, 0.1);
    let mut last = usize::MAX;
    for c in [1.0, 10.0, 100.0, 1e4] {
        let p = NetworkProfile::uniform(2, 50, 0.01, 1.0, c);
        let t = max_faults_in_layer(&p, 2, b, FaultClass::Byzantine);
        assert!(t <= last);
        last = t;
    }
    let mut p = NetworkProfile::uniform(2, 50, 0.01, 1.0, 1.0);
    p.capacity = f64::INFINITY;
    assert_eq!(max_faults_in_layer(&p, 2, b, FaultClass::Byzantine), 0);
    assert!(lemma1_zero_tolerance(&p, &[0, 1]));
    assert!(!tolerates(&p, &[0, 1], b));
}

#[test]
fn theorem4_forms_differ_exactly_by_wm() {
    // Per failing stage, verbatim = lemma2 × w_m^(l) — documented finding #1.
    let mut p = NetworkProfile::uniform(2, 8, 0.7, 1.3, 1.1);
    p.layers[1].w_in = 0.9;
    p.layers[1].w_in_all = 0.9;
    p.w_out = 0.6;
    for stage in 0..=2usize {
        let mut f = vec![0usize; 3];
        f[stage] = 1;
        let v = synapse_fep(&p, &f, SynapseBoundForm::Verbatim);
        let l2 = synapse_fep(&p, &f, SynapseBoundForm::Lemma2);
        let wm = match stage {
            0 => p.layers[0].w_in_all,
            1 => p.layers[1].w_in_all,
            _ => p.w_out,
        };
        assert!((v - l2 * wm).abs() < 1e-12, "stage {stage}");
    }
}

#[test]
fn theorem5_reduces_to_fep_shape_for_full_layers() {
    // With every neuron of one layer carrying error λ and all other layers
    // clean, Theorem 5's term matches a Theorem-2-style computation with
    // f_l = N_l and magnitude λ... up to the (N−f) vs N relay distinction:
    // Theorem 5 keeps ALL neurons as relays (errors are small, neurons are
    // correct), so its bound uses N_l' where Theorem 2 uses N_l' − f_l'.
    let p = NetworkProfile::uniform(2, 5, 0.5, 2.0, 1.0);
    let lambda = 0.01;
    // Theorem 5, error only at layer 1: λ·K·N1·w2·N2·w3.
    let t5 = precision_bound(&p, &[lambda, 0.0], ErrorLocus::PostActivation);
    let expect = lambda * 2.0 * 5.0 * 0.5 * 5.0 * 0.5;
    assert!((t5 - expect).abs() < 1e-12);
    // Theorem 2 with f1 = N1 = 5 faulty neurons of magnitude λ: the layer-2
    // relays are (N2 − 0) = 5 here since f2 = 0 — same relay count, so the
    // two agree for this configuration.
    let t2 = fep_with_magnitude(&p, &[5, 0], lambda);
    assert!((t2 - expect).abs() < 1e-12);
}

#[test]
fn corollary1_factor_is_minimal() {
    let p = NetworkProfile::uniform(2, 6, 0.5, 1.0, 1.0);
    let faults = [2usize, 1];
    let b = budget(0.25, 0.1);
    let m = overprovision_factor(&p, &faults, b, FaultClass::Byzantine, 100_000).unwrap();
    assert!(fep(&p.widened(m), &faults) <= b.slack());
    if m > 1 {
        assert!(fep(&p.widened(m - 1), &faults) > b.slack());
    }
}

#[test]
fn barron_sizing_shapes() {
    assert_eq!(nmin_estimate(0.1, 1.0), 10);
    assert!(nmin_estimate(0.001, 1.0) == 1000);
    // Halving eps doubles the minimal size (Θ(1/ε)).
    assert_eq!(nmin_estimate(0.05, 1.0), 2 * nmin_estimate(0.1, 1.0));
}

#[test]
fn strict_byzantine_magnitude_dominates_paper_magnitude() {
    let p = NetworkProfile::uniform(3, 7, 0.4, 1.5, 0.8);
    let f = [1usize, 2, 0];
    let paper = neurofail::core::fep::fep_for(&p, &f, FaultClass::Byzantine);
    let strict = neurofail::core::fep::fep_for(&p, &f, FaultClass::ByzantineStrict);
    // strict / paper = (C + sup) / C.
    let ratio = (p.capacity + p.sup_activation) / p.capacity;
    assert!((strict / paper - ratio).abs() < 1e-12);
}

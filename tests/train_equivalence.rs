//! Batched/per-sample equivalence of the training engine — the contract of
//! the minibatch-GEMM rewrite, checked at workspace level:
//!
//! * `Mlp::backward_batch` matches an `accumulate_example` loop over the
//!   same rows to ≤ 1e-10 per gradient element, for any batch size
//!   (including B = 0, B = 1 and the epoch's short final batch), on dense
//!   and mixed conv/dense networks;
//! * gradients flowing through `backward_batch` match central finite
//!   differences of the batch loss;
//! * batched training is **bitwise** deterministic: repeated runs of
//!   `train` with `TrainEngine::Batched` produce identical networks and
//!   traces, including when runs execute concurrently on worker threads of
//!   different `Parallelism` policies;
//! * full training trajectories (momentum, weight decay, Fep penalty) of
//!   the two engines agree within floating-point re-association noise;
//! * the batched engine's gradients and whole training trajectories hold
//!   their per-backend determinism contracts across every supported
//!   [`neurofail::tensor::backend`] kind (AVX2 bitwise vs portable,
//!   other SIMD backends ≤ 1e-12).

use neurofail::data::functions::Ridge;
use neurofail::data::rng::rng;
use neurofail::data::Dataset;
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::train::grads::{accumulate_example, BackpropWs};
use neurofail::nn::train::{train, BatchBackpropWs, Grads, TrainConfig, TrainEngine};
use neurofail::nn::{BatchWorkspace, Mlp, Workspace};
use neurofail::par::combinators::parallel_map;
use neurofail::par::Parallelism;
use neurofail::tensor::init::Init;
use neurofail::tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;

/// Random dense network from a compact recipe.
fn build_net(seed: u64, depth: usize, width: usize, tanh: bool, bias: bool) -> Mlp {
    let act = if tanh {
        Activation::Tanh { k: 0.9 }
    } else {
        Activation::Sigmoid { k: 1.1 }
    };
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        b = b.dense(width + (i % 3), act);
    }
    b.init(Init::Uniform { a: 0.5 })
        .bias(bias)
        .build(&mut rng(seed))
}

/// Mixed conv + dense network (exercises the per-row conv backward path).
fn mixed_net(seed: u64) -> Mlp {
    MlpBuilder::new(6)
        .conv1d(2, 3, Activation::Sigmoid { k: 1.0 })
        .dense(5, Activation::Tanh { k: 0.8 })
        .init(Init::Xavier)
        .build(&mut rng(seed))
}

fn random_batch(seed: u64, batch: usize, d: usize) -> (Matrix, Vec<f64>) {
    let mut r = rng(seed ^ 0x7EA1);
    let xs = Matrix::from_fn(batch, d, |_, _| r.gen_range(0.0..=1.0));
    let ys: Vec<f64> = (0..batch).map(|_| r.gen_range(0.0..=1.0)).collect();
    (xs, ys)
}

/// Per-sample reference gradients for `(xs, ys)` plus the summed loss.
fn per_sample_grads(net: &Mlp, xs: &Matrix, ys: &[f64]) -> (f64, Grads) {
    let mut ws = Workspace::for_net(net);
    let mut bws = BackpropWs::for_net(net);
    let mut grads = Grads::zeros_like(net);
    let mut loss = 0.0;
    for (b, &y) in ys.iter().enumerate() {
        loss += accumulate_example(net, xs.row(b), y, &mut ws, &mut bws, &mut grads);
    }
    (loss, grads)
}

fn assert_grads_close(a: &Grads, b: &Grads, tol: f64, ctx: &str) {
    for (l, (la, lb)) in a.layers.iter().zip(&b.layers).enumerate() {
        for (i, (x, y)) in la.w.data().iter().zip(lb.w.data()).enumerate() {
            assert!((x - y).abs() <= tol, "{ctx}: layer {l} w[{i}]: {x} vs {y}");
        }
        for (i, (x, y)) in la.b.iter().zip(&lb.b).enumerate() {
            assert!((x - y).abs() <= tol, "{ctx}: layer {l} b[{i}]: {x} vs {y}");
        }
    }
    for (i, (x, y)) in a.output.iter().zip(&b.output).enumerate() {
        assert!((x - y).abs() <= tol, "{ctx}: output[{i}]: {x} vs {y}");
    }
    assert!(
        (a.output_bias - b.output_bias).abs() <= tol,
        "{ctx}: output bias: {} vs {}",
        a.output_bias,
        b.output_bias
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// backward_batch ≈ per-sample accumulate_example to 1e-10 per element,
    /// for any batch size including 0, 1 and short batches.
    #[test]
    fn batched_gradients_match_per_sample(
        seed in 0u64..1000,
        depth in 1usize..5,
        width in 3usize..13,
        batch in 0usize..20,
        tanh in proptest::bool::ANY,
        bias in proptest::bool::ANY,
    ) {
        let net = build_net(seed, depth, width, tanh, bias);
        let (xs, ys) = random_batch(seed, batch, 3);
        let (sloss, sgrads) = per_sample_grads(&net, &xs, &ys);
        let mut bbws = BatchBackpropWs::for_net(&net, batch);
        let mut bgrads = Grads::zeros_like(&net);
        let bloss = net.backward_batch(&xs, &ys, &mut bbws, &mut bgrads);
        prop_assert!((sloss - bloss).abs() <= 1e-10, "loss {} vs {}", sloss, bloss);
        assert_grads_close(&sgrads, &bgrads, 1e-10, "prop");
    }

    /// The same property through the conv path.
    #[test]
    fn batched_gradients_match_per_sample_on_conv_nets(
        seed in 0u64..500,
        batch in 0usize..10,
    ) {
        let net = mixed_net(seed);
        let (xs, ys) = random_batch(seed, batch, 6);
        let (sloss, sgrads) = per_sample_grads(&net, &xs, &ys);
        let mut bbws = BatchBackpropWs::for_net(&net, batch);
        let mut bgrads = Grads::zeros_like(&net);
        let bloss = net.backward_batch(&xs, &ys, &mut bbws, &mut bgrads);
        prop_assert!((sloss - bloss).abs() <= 1e-10);
        assert_grads_close(&sgrads, &bgrads, 1e-10, "conv prop");
    }
}

/// Backend sweep over the training engine: `backward_batch` gradients on
/// dense and mixed conv/dense nets, plus a full 6-epoch trajectory, under
/// every supported compute backend against a forced-portable reference.
/// AVX2 must reproduce portable bitwise (the documented contract); any
/// other SIMD backend rides at ≤ 1e-12 per element. Mixed32 is opt-in
/// reduced precision and is covered by `tests/backend_dispatch.rs`.
#[test]
fn batched_gradients_and_training_agree_across_backends() {
    use neurofail::tensor::backend::{self, BackendKind};

    for net in [build_net(11, 3, 7, true, true), mixed_net(13)] {
        let d = net.input_dim();
        let (xs, ys) = random_batch(5, 9, d);
        let grads_under = |kind: BackendKind| {
            backend::with_backend(kind, || {
                let mut bbws = BatchBackpropWs::for_net(&net, 9);
                let mut grads = Grads::zeros_like(&net);
                let loss = net.backward_batch(&xs, &ys, &mut bbws, &mut grads);
                (loss, grads)
            })
        };
        let (ploss, pgrads) = grads_under(BackendKind::Portable);
        for kind in backend::supported_kinds() {
            if kind == BackendKind::Mixed32 {
                continue;
            }
            let (loss, grads) = grads_under(kind);
            let ctx = format!("backend {} (d={d})", kind.name());
            if matches!(kind, BackendKind::Portable | BackendKind::Avx2) {
                assert_eq!(loss.to_bits(), ploss.to_bits(), "{ctx}: loss");
                for (l, (a, b)) in grads.layers.iter().zip(&pgrads.layers).enumerate() {
                    for (x, y) in a.w.data().iter().zip(b.w.data()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: layer {l} weights");
                    }
                    for (x, y) in a.b.iter().zip(&b.b) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: layer {l} bias");
                    }
                }
                for (x, y) in grads.output.iter().zip(&pgrads.output) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: output weights");
                }
                assert_eq!(
                    grads.output_bias.to_bits(),
                    pgrads.output_bias.to_bits(),
                    "{ctx}: output bias"
                );
            } else {
                assert!(
                    (loss - ploss).abs() <= 1e-12 * ploss.abs().max(1.0),
                    "{ctx}: loss"
                );
                assert_grads_close(&grads, &pgrads, 1e-12, &ctx);
            }
        }
    }

    // Whole trajectories: a short batched training run per backend. The
    // bitwise backends must reproduce the portable networks and reports
    // exactly; the rest must land within trajectory-amplified 1e-9.
    let (net0, data) = training_task();
    let cfg = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let train_under = |kind: BackendKind| {
        backend::with_backend(kind, || {
            let mut net = net0.clone();
            let report = train(&mut net, &data, &cfg, &mut rng(9));
            (net, report)
        })
    };
    let (pnet, preport) = train_under(BackendKind::Portable);
    for kind in backend::supported_kinds() {
        if kind == BackendKind::Mixed32 {
            continue;
        }
        let (net, report) = train_under(kind);
        if matches!(kind, BackendKind::Portable | BackendKind::Avx2) {
            assert_eq!(net, pnet, "trajectory under {}", kind.name());
            assert_eq!(report, preport, "report under {}", kind.name());
        } else {
            for (a, b) in net.output_weights().iter().zip(pnet.output_weights()) {
                assert!(
                    (a - b).abs() <= 1e-9,
                    "trajectory under {}: {a} vs {b}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn batched_gradients_match_finite_differences() {
    let net = mixed_net(77);
    let (xs, ys) = random_batch(21, 5, 6);
    let mut bbws = BatchBackpropWs::for_net(&net, 5);
    let mut grads = Grads::zeros_like(&net);
    net.backward_batch(&xs, &ys, &mut bbws, &mut grads);

    // Batch loss via the batched forward itself.
    let mut ws = BatchWorkspace::for_net(&net, 5);
    let mut loss = |n: &Mlp| -> f64 {
        n.forward_batch(&xs, &mut ws)
            .iter()
            .zip(&ys)
            .map(|(p, t)| (p - t) * (p - t))
            .sum()
    };
    let h = 1e-6;

    // Output weights and bias-free spot checks in every layer.
    for i in 0..net.output_weights().len() {
        let mut p = net.clone();
        p.output_weights_mut()[i] += h;
        let mut m = net.clone();
        m.output_weights_mut()[i] -= h;
        let fd = (loss(&p) - loss(&m)) / (2.0 * h);
        assert!(
            (grads.output[i] - fd).abs() < 1e-4,
            "output[{i}]: {} vs {fd}",
            grads.output[i]
        );
    }
    for l in 0..net.layers().len() {
        let (rows, cols) = match &net.layers()[l] {
            neurofail::nn::Layer::Dense(d) => (d.weights().rows(), d.weights().cols()),
            neurofail::nn::Layer::Conv1d(c) => (c.kernels().rows(), c.kernels().cols()),
        };
        for (r, c) in [(0, 0), (rows - 1, cols - 1), (rows / 2, cols / 2)] {
            let bump = |delta: f64| {
                let mut n = net.clone();
                match &mut n.layers_mut()[l] {
                    neurofail::nn::Layer::Dense(d) => {
                        let v = d.weights().get(r, c);
                        d.weights_mut().set(r, c, v + delta);
                    }
                    neurofail::nn::Layer::Conv1d(cv) => {
                        let v = cv.kernels().get(r, c);
                        cv.kernels_mut().set(r, c, v + delta);
                    }
                }
                n
            };
            let fd = (loss(&bump(h)) - loss(&bump(-h))) / (2.0 * h);
            let got = grads.layers[l].w.get(r, c);
            assert!(
                (got - fd).abs() < 1e-4,
                "layer {l} w[{r}][{c}]: {got} vs {fd}"
            );
        }
    }
}

fn training_task() -> (Mlp, Dataset) {
    let mut r = rng(0x7121);
    let target = Ridge::canonical(2);
    // 100 examples with batch 16 ⇒ every epoch ends in a short batch of 4.
    let data = Dataset::sample(&target, 100, &mut r);
    let net = MlpBuilder::new(2)
        .dense(12, Activation::Sigmoid { k: 1.0 })
        .dense(8, Activation::Sigmoid { k: 1.0 })
        .init(Init::Xavier)
        .build(&mut r);
    (net, data)
}

#[test]
fn batched_training_is_bitwise_deterministic_across_runs_and_parallelism() {
    let (net0, data) = training_task();
    let cfg = TrainConfig {
        epochs: 12,
        ..TrainConfig::default()
    };
    assert_eq!(cfg.engine, TrainEngine::Batched, "batched is the default");
    let mut reference = net0.clone();
    let ref_report = train(&mut reference, &data, &cfg, &mut rng(9));

    // Repeated run: bit-identical (Mlp/TrainReport equality is exact f64).
    let mut again = net0.clone();
    let again_report = train(&mut again, &data, &cfg, &mut rng(9));
    assert_eq!(reference, again);
    assert_eq!(ref_report, again_report);

    // Runs executing on the worker threads of different Parallelism
    // policies: the batched engine's fixed per-element summation order
    // makes every copy bit-identical to the sequential reference.
    for policy in [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(5),
    ] {
        let results = parallel_map(policy, 4, |i| {
            let mut net = net0.clone();
            let report = train(&mut net, &data, &cfg, &mut rng(9));
            (i, net, report)
        });
        for (i, net, report) in results {
            assert_eq!(net, reference, "copy {i} under {policy:?}");
            assert_eq!(report, ref_report, "copy {i} under {policy:?}");
        }
    }
}

#[test]
fn trained_loss_trajectories_match_the_scalar_engine() {
    let (net0, data) = training_task();
    for (name, cfg) in [
        (
            "plain",
            TrainConfig {
                epochs: 40,
                ..TrainConfig::default()
            },
        ),
        (
            "decay+fep",
            TrainConfig {
                epochs: 40,
                weight_decay: 1e-3,
                fep_penalty: Some(neurofail::nn::train::FepPenalty {
                    strength: 1e-3,
                    sharpness: 16.0,
                }),
                ..TrainConfig::default()
            },
        ),
    ] {
        let mut batched = net0.clone();
        let rb = train(&mut batched, &data, &cfg, &mut rng(31));
        let mut scalar = net0.clone();
        let rs = train(
            &mut scalar,
            &data,
            &TrainConfig {
                engine: TrainEngine::PerSample,
                ..cfg
            },
            &mut rng(31),
        );
        assert_eq!(rb.epoch_mse.len(), rs.epoch_mse.len());
        for (e, (b, s)) in rb.epoch_mse.iter().zip(&rs.epoch_mse).enumerate() {
            assert!(
                (b - s).abs() <= 1e-6 * s.abs().max(1e-3),
                "{name}: epoch {e}: batched {b} vs scalar {s}"
            );
        }
        // Both engines end in genuinely trained, near-identical networks.
        assert!(
            rb.final_mse() < rb.epoch_mse[0] / 2.0,
            "{name}: no learning"
        );
        for (b, s) in batched.output_weights().iter().zip(scalar.output_weights()) {
            assert!(
                (b - s).abs() <= 1e-5,
                "{name}: weights diverged: {b} vs {s}"
            );
        }
    }
}

#[test]
fn per_sample_engine_remains_available_and_deterministic() {
    let (net0, data) = training_task();
    let cfg = TrainConfig {
        epochs: 5,
        engine: TrainEngine::PerSample,
        ..TrainConfig::default()
    };
    let mut a = net0.clone();
    let ra = train(&mut a, &data, &cfg, &mut rng(4));
    let mut b = net0.clone();
    let rb = train(&mut b, &data, &cfg, &mut rng(4));
    assert_eq!(a, b);
    assert_eq!(ra, rb);
}

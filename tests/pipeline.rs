//! End-to-end pipelines across crates: train → profile → certify → inject,
//! replication (Corollary 1), serde round-trips, and the distributed
//! simulator's equivalence guarantees.

use std::collections::HashSet;

use neurofail::core::{certify, Capacity, EpsilonBudget, NetworkProfile};
use neurofail::data::functions::GaussianBump;
use neurofail::data::rng::rng;
use neurofail::data::Dataset;
use neurofail::distsim::rounds::run_synchronous;
use neurofail::distsim::{run_boosted, run_threaded, LatencyModel};
use neurofail::inject::{run_campaign, CampaignConfig, FaultSpec, InjectionPlan, TrialKind};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::train::{train, TrainConfig};
use neurofail::nn::Mlp;
use neurofail::par::Parallelism;
use neurofail::tensor::init::Init;

fn trained_net() -> (Mlp, f64) {
    let target = GaussianBump::centered(2);
    let mut r = rng(1000);
    let data = Dataset::sample(&target, 256, &mut r);
    let mut net = MlpBuilder::new(2)
        .dense(10, Activation::Sigmoid { k: 1.0 })
        .dense(6, Activation::Sigmoid { k: 1.0 })
        .init(Init::Xavier)
        .build(&mut r);
    train(&mut net, &data, &TrainConfig::default(), &mut r);
    let eps_prime = neurofail::nn::metrics::sup_error_halton(&net, &target, 200);
    assert!(eps_prime < 0.2, "training failed: eps' = {eps_prime}");
    (net, eps_prime)
}

#[test]
fn train_certify_inject_holds_end_to_end() {
    let (net, eps_prime) = trained_net();
    // 16× replication: enough head-room that the per-crash Fep of the
    // trained net (w_out ≈ 1.3 at this seed) fits inside the 0.1 slack.
    let wide = net.replicate(16);
    let profile = NetworkProfile::from_mlp(&wide, Capacity::Bounded(1.0)).unwrap();
    let budget = EpsilonBudget::new(eps_prime + 0.1, eps_prime).unwrap();
    let cert = certify(&profile, budget);
    assert!(cert.crash_total() > 0, "replication should buy tolerance");

    // The packed crash distribution survives a randomized campaign.
    let res = run_campaign(
        &wide,
        &cert.crash_packed,
        TrialKind::Neurons(FaultSpec::Crash),
        &CampaignConfig {
            trials: 40,
            inputs_per_trial: 8,
            ..CampaignConfig::default()
        },
        Parallelism::all_cores(),
    );
    assert!(res.max_error() <= budget.slack());
}

#[test]
fn replication_preserves_function_and_scales_tolerance() {
    let (net, eps_prime) = trained_net();
    let budget = EpsilonBudget::new(eps_prime + 0.1, eps_prime).unwrap();
    let mut last_total = 0usize;
    for m in [4usize, 8, 16] {
        let wide = net.replicate(m);
        for x in [[0.2, 0.3], [0.9, 0.1], [0.5, 0.5]] {
            assert!((wide.forward(&x) - net.forward(&x)).abs() < 1e-10);
        }
        let profile = NetworkProfile::from_mlp(&wide, Capacity::Bounded(1.0)).unwrap();
        let cert = certify(&profile, budget);
        assert!(
            cert.crash_total() >= last_total,
            "tolerance should not shrink with m"
        );
        last_total = cert.crash_total();
    }
    assert!(last_total > 0);
}

#[test]
fn serde_roundtrips_network_profile_and_certificate() {
    let (net, eps_prime) = trained_net();
    let json = serde_json::to_string(&net).unwrap();
    let back: Mlp = serde_json::from_str(&json).unwrap();
    assert_eq!(net, back);

    let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(2.0)).unwrap();
    let pj = serde_json::to_string(&profile).unwrap();
    let pback: NetworkProfile = serde_json::from_str(&pj).unwrap();
    assert_eq!(profile, pback);

    let budget = EpsilonBudget::new(eps_prime + 0.0625, eps_prime).unwrap();
    let cert = certify(&profile, budget);
    let cj = serde_json::to_string(&cert).unwrap();
    let cback: neurofail::core::Certificate = serde_json::from_str(&cj).unwrap();
    assert_eq!(cert, cback);
}

#[test]
fn all_execution_modes_agree() {
    let (net, _) = trained_net();
    let x = [0.35, 0.65];
    let sequential = net.forward(&x);
    // Synchronous rounds: bit-exact.
    let rounds = run_synchronous(&net, &x, &InjectionPlan::none(), 1.0);
    assert_eq!(rounds.output, sequential);
    // One thread per neuron: bit-exact.
    let threaded = run_threaded(&net, &x, &HashSet::new()).unwrap();
    assert_eq!(threaded, sequential);
    // Full-quorum boosting: no skips, exact value.
    let run = run_boosted(
        &net,
        &x,
        &net.widths(),
        LatencyModel::Exponential { mean: 1.0 },
        1.0,
        &mut rng(2000),
    );
    assert_eq!(run.output, sequential);
    assert_eq!(run.error, 0.0);
}

#[test]
fn crashes_agree_between_executor_rounds_and_threads() {
    let (net, _) = trained_net();
    let crashed: HashSet<(usize, usize)> = [(0usize, 3usize), (1, 1)].into();
    let plan = InjectionPlan::crash(crashed.iter().copied());
    let x = [0.7, 0.2];

    let rounds = run_synchronous(&net, &x, &plan, 1.0);
    let threaded = run_threaded(&net, &x, &crashed).unwrap();
    assert_eq!(rounds.output, threaded);
    // And both disturb the output (the crash is not a no-op).
    assert_ne!(rounds.output, net.forward(&x));
}

#[test]
fn quantization_pipeline_respects_certified_lambda() {
    use neurofail::core::precision::{max_uniform_lambda, ErrorLocus};
    use neurofail::quant::{quantization_error, FixedPoint};

    let (net, _) = trained_net();
    let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(1.0)).unwrap();
    let target_degradation = 0.05;
    let lambda = max_uniform_lambda(&profile, target_degradation, ErrorLocus::PostActivation);
    let bits = (1.0 / (2.0 * lambda)).log2().ceil().max(1.0) as u32;
    let format = FixedPoint::unit(bits);
    assert!(format.max_error() <= lambda);

    let mut ws = neurofail::nn::Workspace::for_net(&net);
    for i in 0..40 {
        let t = i as f64 / 39.0;
        let err = quantization_error(&net, &[t, 1.0 - t], format, &mut ws);
        assert!(err <= target_degradation, "err {err} at t = {t}");
    }
}

//! Batch/scalar equivalence of the evaluation engine — the refactor's
//! central contract, checked at workspace level:
//!
//! * `Mlp::forward_batch` matches `Mlp::forward_ws` to ≤ 1e-12 per element
//!   on random networks, batch sizes (including B = 0 and B = 1) and
//!   activations;
//! * `CompiledPlan::run_batch` / `output_error_batch` match their scalar
//!   counterparts to ≤ 1e-12 under random plans;
//! * batched rows are **bitwise** independent of the batch they ride in
//!   (replaying any row as a singleton batch reproduces it exactly);
//! * campaigns on the batched engine stay bit-identical across
//!   `Parallelism` policies.

use neurofail::data::rng::rng;
use neurofail::inject::{run_campaign, CampaignConfig, CompiledPlan, FaultSpec, TrialKind};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::{BatchWorkspace, Mlp, Workspace};
use neurofail::par::Parallelism;
use neurofail::tensor::init::Init;
use neurofail::tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;

/// Random network from a compact recipe: depth 1–4, widths 3–12, mixed
/// activations, optional bias.
fn build_net(seed: u64, depth: usize, width: usize, tanh: bool, bias: bool) -> Mlp {
    let act = if tanh {
        Activation::Tanh { k: 0.9 }
    } else {
        Activation::Sigmoid { k: 1.1 }
    };
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        b = b.dense(width + (i % 3), act);
    }
    b.init(Init::Uniform { a: 0.5 })
        .bias(bias)
        .build(&mut rng(seed))
}

fn random_inputs(seed: u64, batch: usize, d: usize) -> Matrix {
    let mut r = rng(seed ^ 0xBA7C4);
    Matrix::from_fn(batch, d, |_, _| r.gen_range(0.0..=1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// forward_batch ≈ forward_ws to 1e-12, for any batch size incl. 0/1.
    #[test]
    fn forward_batch_matches_scalar_forward(
        seed in 0u64..1000,
        depth in 1usize..5,
        width in 3usize..13,
        batch in 0usize..20,
        tanh in proptest::bool::ANY,
        bias in proptest::bool::ANY,
    ) {
        let net = build_net(seed, depth, width, tanh, bias);
        let xs = random_inputs(seed, batch, 3);
        let mut bws = BatchWorkspace::for_net(&net, batch);
        let ys = net.forward_batch(&xs, &mut bws);
        prop_assert_eq!(ys.len(), batch);
        let mut ws = Workspace::for_net(&net);
        for (b, &y) in ys.iter().enumerate() {
            let scalar = net.forward_ws(xs.row(b), &mut ws);
            prop_assert!(
                (y - scalar).abs() <= 1e-12,
                "row {}: batched {} vs scalar {}", b, y, scalar
            );
        }
    }

    /// run_batch and output_error_batch ≈ scalar run/output_error under
    /// random fault plans of every kind.
    #[test]
    fn compiled_plan_batch_matches_scalar(
        seed in 0u64..1000,
        depth in 1usize..4,
        width in 3usize..10,
        batch in 1usize..12,
        fault_seed in 0u64..100,
        synapses in proptest::bool::ANY,
    ) {
        let net = build_net(seed, depth, width, false, false);
        let widths = net.widths();
        let mut r = rng(fault_seed ^ 0xF417);
        let plan = if synapses {
            let counts: Vec<usize> = (0..=depth)
                .map(|i| (fault_seed as usize + i) % 3)
                .collect();
            neurofail::inject::sampler::sample_synapse_plan(&net, &counts, true, 1.0, &mut r)
        } else {
            let counts: Vec<usize> = widths
                .iter()
                .map(|&n| (fault_seed as usize) % (n + 1))
                .collect();
            neurofail::inject::sampler::sample_neuron_plan(
                &net,
                &counts,
                FaultSpec::ByzantineOpposeNominal,
                &mut r,
            )
        };
        let compiled = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
        let xs = random_inputs(seed, batch, 3);
        let mut bws = BatchWorkspace::for_net(&net, batch);
        let runs = compiled.run_batch(&net, &xs, &mut bws);
        let errors = compiled.output_error_batch(&net, &xs, &mut bws);
        let mut ws = Workspace::for_net(&net);
        for b in 0..batch {
            let scalar_run = compiled.run(&net, xs.row(b), &mut ws);
            let scalar_err = compiled.output_error(&net, xs.row(b), &mut ws);
            prop_assert!((runs[b] - scalar_run).abs() <= 1e-12, "run row {}", b);
            prop_assert!((errors[b] - scalar_err).abs() <= 1e-12, "err row {}", b);
        }
    }

    /// The bitwise contract: row b of a batched evaluation equals the same
    /// input evaluated as a singleton batch, exactly.
    #[test]
    fn batched_rows_replay_exactly_as_singletons(
        seed in 0u64..1000,
        depth in 1usize..4,
        width in 3usize..10,
        batch in 1usize..10,
    ) {
        let net = build_net(seed, depth, width, true, true);
        let plan = neurofail::inject::InjectionPlan::crash([(0, 1)]);
        let compiled = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
        let xs = random_inputs(seed, batch, 3);
        let mut bws = BatchWorkspace::for_net(&net, batch);
        let full = compiled.output_error_batch(&net, &xs, &mut bws);
        for (b, &expected) in full.iter().enumerate() {
            let single = Matrix::from_vec(1, 3, xs.row(b).to_vec());
            let replay = compiled.output_error_batch(&net, &single, &mut bws);
            prop_assert_eq!(replay[0], expected, "row {} not bitwise replayable", b);
        }
    }
}

#[test]
fn batched_campaign_is_bit_identical_across_parallelism() {
    let net = build_net(11, 3, 8, false, true);
    let cfg = CampaignConfig {
        trials: 20,
        inputs_per_trial: 16,
        ..CampaignConfig::default()
    };
    let reference = run_campaign(
        &net,
        &[1, 2, 1],
        TrialKind::Neurons(FaultSpec::ByzantineRandom),
        &cfg,
        Parallelism::Sequential,
    );
    for threads in [2usize, 5] {
        let got = run_campaign(
            &net,
            &[1, 2, 1],
            TrialKind::Neurons(FaultSpec::ByzantineRandom),
            &cfg,
            Parallelism::Threads(threads),
        );
        assert_eq!(got.stats, reference.stats);
        assert_eq!(got.worst, reference.worst);
    }
}

#[test]
fn zero_and_one_input_campaigns_work_on_the_batched_engine() {
    let net = build_net(12, 2, 6, false, false);
    for inputs_per_trial in [0usize, 1] {
        let res = run_campaign(
            &net,
            &[1, 1],
            TrialKind::Neurons(FaultSpec::Crash),
            &CampaignConfig {
                trials: 4,
                inputs_per_trial,
                ..CampaignConfig::default()
            },
            Parallelism::Sequential,
        );
        assert_eq!(res.evaluations, 4 * inputs_per_trial as u64);
        assert_eq!(res.worst.is_some(), inputs_per_trial > 0);
    }
}

//! Chaos certification of the fleet (`--features failpoints`):
//! seeded-replay schedules that SIGKILL worker processes at seeded
//! points while the workers themselves are failpoint-armed (recv
//! panics, answer-pump panics and stalls, campaign-thread panics —
//! self-armed from the fleet's `chaos_seed`). The contract:
//!
//! * **zero lost, duplicated, or wrong answers** — every submitted
//!   handle resolves, every resolved value is bitwise equal to the
//!   single-process reference, and the router's answer counter matches
//!   the submission count exactly (an answer delivered twice would
//!   overshoot it);
//! * a fleet-sharded campaign under the same chaos still merges to the
//!   bit-exact single-process `run_campaign` result;
//! * surviving workers' request logs replay-verify bitwise (**clean
//!   quarantine**: a slot that strikes out is excluded, its traffic
//!   rerouted — never dropped);
//! * a killed worker's warm streaming state degrades only to
//!   recomputation: values stay bitwise identical, and the death is
//!   visible *solely* in the statistics (respawn/requeue counters).
//!
//! Schedule count is env-tunable (`NEUROFAIL_FLEET_CHAOS_SCHEDULES`,
//! default 50) so CI can pin a smaller seeded subset.

#![cfg(feature = "failpoints")]

use std::sync::Arc;

use neurofail::data::rng::rng;
use neurofail::fleet::{reexec_spawner, FleetConfig, FleetRouter, WorkerSpawner};
use neurofail::inject::{
    run_campaign, ByzantineStrategy, CampaignConfig, FaultSpec, InjectionPlan, PlanId,
    PlanRegistry, TrialKind,
};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::Mlp;
use neurofail::par::Parallelism;
use neurofail::serve::{CertServer, ServeConfig};
use neurofail::tensor::init::Init;
use rand::Rng;

/// The worker process (see `fleet_equivalence.rs`). Workers spawned by
/// this suite self-arm their chaos schedule from `NEUROFAIL_FLEET_CHAOS`.
#[test]
#[ignore = "fleet worker child, spawned by the tests below"]
fn fleet_worker_child() {
    if std::env::var(neurofail::fleet::ENV_ADDR).is_ok() {
        std::process::exit(neurofail::fleet::run_worker_from_env());
    }
}

fn spawner() -> WorkerSpawner {
    reexec_spawner(vec![
        "fleet_worker_child".into(),
        "--ignored".into(),
        "--exact".into(),
    ])
}

fn schedules() -> u64 {
    std::env::var("NEUROFAIL_FLEET_CHAOS_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50)
}

fn build_net(seed: u64, depth: usize, width: usize) -> Mlp {
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        let act = if i % 2 == 0 {
            Activation::Sigmoid { k: 1.1 }
        } else {
            Activation::Tanh { k: 0.9 }
        };
        b = b.dense(width + (i % 2), act);
    }
    b.init(Init::Uniform { a: 0.7 }).build(&mut rng(seed))
}

fn plan_family(net: &Mlp, seed: u64) -> Vec<InjectionPlan> {
    let widths = net.widths();
    vec![
        InjectionPlan::none(),
        InjectionPlan::crash([(0, 0), (0, widths[0] - 1)]),
        InjectionPlan::byzantine([(0, 1)], ByzantineStrategy::Random { seed }),
        InjectionPlan::stuck_at([((0, 0), -0.4)]),
    ]
}

fn request_mix(seed: u64, n: usize, plans: usize) -> Vec<(usize, Vec<f64>)> {
    let mut r = rng(seed ^ 0xF1EE7);
    (0..n)
        .map(|i| {
            let input: Vec<f64> = (0..3).map(|_| r.gen_range(-1.0..=1.0)).collect();
            (i % plans, input)
        })
        .collect()
}

fn single_process_reference(
    net: &Arc<Mlp>,
    plans: &[InjectionPlan],
    mix: &[(usize, Vec<f64>)],
) -> Vec<f64> {
    let mut registry = PlanRegistry::new();
    let ids: Vec<PlanId> = plans
        .iter()
        .map(|p| registry.register(Arc::clone(net), p, 1.0).unwrap())
        .collect();
    let server = CertServer::start(&registry, ServeConfig::default());
    let out = mix
        .iter()
        .map(|(p, input)| server.query(ids[*p], input).unwrap())
        .collect();
    server.shutdown();
    out
}

fn chaotic_config(seed: u64) -> FleetConfig {
    FleetConfig {
        serve: ServeConfig {
            record_log: true,
            streaming_ingest: true,
            ..ServeConfig::default()
        },
        // Tight heartbeat so stalled answer pumps are detected within
        // the test's patience.
        heartbeat: std::time::Duration::from_millis(100),
        chaos_seed: Some(seed),
        ..FleetConfig::default()
    }
}

/// The main chaos sweep: ≥50 seeded schedules (env-tunable), each
/// running a 3-worker fleet with self-armed workers, seeded SIGKILLs
/// fired while queries and campaign shards are in flight.
#[test]
fn seeded_chaos_loses_nothing_duplicates_nothing_corrupts_nothing() {
    let net = Arc::new(build_net(0xC4A05, 2, 6));
    let plans = plan_family(&net, 0xC4A05);
    let mix = request_mix(0xC4A05, 24, plans.len());
    let expect = single_process_reference(&net, &plans, &mix);
    let counts = [2usize, 1];
    let camp_cfg = CampaignConfig {
        trials: 10,
        inputs_per_trial: 4,
        ..CampaignConfig::default()
    };
    let camp_whole = run_campaign(
        &net,
        &counts,
        TrialKind::Neurons(FaultSpec::Crash),
        &camp_cfg,
        Parallelism::Sequential,
    );

    let n_schedules = schedules();
    let (mut total_respawns, mut total_requeues, mut total_kills) = (0u64, 0u64, 0u64);
    for s in 0..n_schedules {
        let seed = 0xC4A0_5EED_u64 ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let fleet = FleetRouter::start(chaotic_config(seed), 3, spawner())
            .unwrap_or_else(|e| panic!("schedule {s} (seed {seed:#x}): start failed: {e}"));
        let ids: Vec<_> = plans
            .iter()
            .map(|p| fleet.register_hot(&net, p, 1.0).unwrap())
            .collect();
        let mut r = rng(seed);

        // First wave in flight…
        let first: Vec<_> = mix[..12]
            .iter()
            .map(|(p, input)| fleet.submit(ids[*p], input.clone()))
            .collect();
        // …seeded kill point 1…
        if r.gen_range(0..2u64) == 0 {
            let victim = r.gen_range(0..3u64) as usize;
            total_kills += u64::from(fleet.kill_worker(victim));
        }
        // …campaign shards outstanding while kill point 2 fires…
        let camp = std::thread::scope(|scope| {
            let fleet = &fleet;
            let net = Arc::clone(&net);
            let camp = scope.spawn(move || {
                fleet.run_campaign(
                    &net,
                    &counts,
                    TrialKind::Neurons(FaultSpec::Crash),
                    &camp_cfg,
                )
            });
            if r.gen_range(0..2u64) == 0 {
                let victim = r.gen_range(0..3u64) as usize;
                total_kills += u64::from(fleet.kill_worker(victim));
            }
            let second: Vec<_> = mix[12..]
                .iter()
                .map(|(p, input)| fleet.submit(ids[*p], input.clone()))
                .collect();
            // Zero lost, zero wrong: every handle resolves, bitwise.
            for (k, h) in first.into_iter().chain(second).enumerate() {
                let got = h.wait().unwrap_or_else(|e| {
                    panic!("schedule {s} (seed {seed:#x}): query {k} lost to chaos: {e}")
                });
                assert_eq!(
                    got.to_bits(),
                    expect[k].to_bits(),
                    "schedule {s} (seed {seed:#x}): query {k} answered wrongly"
                );
            }
            camp.join().expect("campaign thread")
        })
        .unwrap_or_else(|e| panic!("schedule {s} (seed {seed:#x}): campaign failed: {e}"));
        // The sharded campaign still merges to the exact bits.
        assert_eq!(camp.stats.mean.to_bits(), camp_whole.stats.mean.to_bits());
        assert_eq!(
            camp.stats.std_dev.to_bits(),
            camp_whole.stats.std_dev.to_bits()
        );
        assert_eq!(camp.evaluations, camp_whole.evaluations);
        assert_eq!(camp.worst, camp_whole.worst);

        // Clean quarantine / replay: surviving logs verify bitwise.
        let audit = fleet.audit();
        assert!(
            audit.clean(),
            "schedule {s} (seed {seed:#x}): a surviving log failed replay"
        );
        let stats = fleet.shutdown();
        // Zero duplicated: the router counted exactly one answer per
        // submission — a double-answered requeue would overshoot.
        assert_eq!(
            stats.answers,
            mix.len() as u64,
            "schedule {s} (seed {seed:#x}): answer count drifted"
        );
        total_respawns += stats.respawns;
        total_requeues += stats.requeues;
    }
    // The sweep must actually have exercised the recovery machinery.
    assert!(total_kills > 0, "seeded kills never fired");
    assert!(
        total_respawns >= total_kills,
        "every kill must respawn (or quarantine) the slot"
    );
    // Requeues accompany kills often enough that a chaotic sweep with
    // zero requeues means the kill points never hit in-flight work.
    assert!(
        n_schedules < 10 || total_requeues > 0,
        "chaos never caught a worker with work in flight"
    );
}

/// A killed worker's warm streaming state (prefix checkpoints built by
/// `streaming_ingest`) degrades only to recomputation: re-served values
/// after the kill are bitwise identical; the only observable difference
/// is statistical (respawn/requeue counters, rebuilt servers).
#[test]
fn killed_worker_streaming_state_degrades_only_in_stats() {
    let net = Arc::new(build_net(0x57A7E, 2, 6));
    let plans = plan_family(&net, 0x57A7E);
    let mix = request_mix(0x57A7E, 16, plans.len());
    let expect = single_process_reference(&net, &plans, &mix);

    // Single worker, streaming ingest on, *no* self-armed chaos: the
    // only fault is the SIGKILL, so the delta is attributable to it.
    let cfg = FleetConfig {
        serve: ServeConfig {
            record_log: true,
            streaming_ingest: true,
            ..ServeConfig::default()
        },
        ..FleetConfig::default()
    };
    let fleet = FleetRouter::start(cfg, 1, spawner()).unwrap();
    let ids: Vec<_> = plans
        .iter()
        .map(|p| fleet.register_hot(&net, p, 1.0).unwrap())
        .collect();

    // Warm pass: builds whatever streaming state the worker keeps.
    for (k, (p, input)) in mix.iter().enumerate() {
        let got = fleet.query(ids[*p], input).expect("warm pass answers");
        assert_eq!(got.to_bits(), expect[k].to_bits());
    }
    let warm = fleet.stats();
    assert_eq!(warm.respawns, 0);

    // Kill the only worker — its checkpoints die with it.
    assert!(fleet.kill_worker(0));

    // Cold pass: identical traffic, bitwise identical answers. The
    // kill shows up *only* here, in the counters.
    for (k, (p, input)) in mix.iter().enumerate() {
        let got = fleet.query(ids[*p], input).expect("cold pass answers");
        assert_eq!(
            got.to_bits(),
            expect[k].to_bits(),
            "value drifted after losing warm streaming state"
        );
    }
    let cold = fleet.stats();
    assert!(cold.respawns >= 1, "the kill must be visible in stats");
    assert_eq!(
        cold.answers,
        2 * mix.len() as u64,
        "every query answered exactly once across the kill"
    );
    let audit = fleet.audit();
    assert!(audit.clean(), "respawned worker's log replays bitwise");
    fleet.shutdown();
}

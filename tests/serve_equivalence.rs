//! Serving/direct equivalence — the serving engine's central contract,
//! checked at workspace level:
//!
//! * every served response is **bitwise** identical to evaluating the same
//!   input directly as a singleton `output_error_batch` call, across
//!   random networks, fault plans, arrival orders, micro-batch limits,
//!   flush deadlines and worker `Parallelism` policies;
//! * the recorded request log replays deterministically
//!   (`RequestLog::verify` — bitwise, in submission order);
//! * shutdown under load drains every accepted request: all outstanding
//!   handles resolve, with correct values.

use std::sync::Arc;

use neurofail::data::rng::rng;
use neurofail::inject::ArtifactStore;
use neurofail::inject::{ByzantineStrategy, InjectionPlan, PlanId, PlanRegistry};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::{BatchWorkspace, Mlp};
use neurofail::par::Parallelism;
use neurofail::serve::{share_store, CertServer, ServeConfig};
use neurofail::tensor::init::Init;
use proptest::prelude::*;
use rand::Rng;
use std::time::Duration;

/// Random network from a compact recipe (mirrors `batch_equivalence.rs`).
fn build_net(seed: u64, depth: usize, width: usize) -> Mlp {
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        let act = if i % 2 == 0 {
            Activation::Sigmoid { k: 1.1 }
        } else {
            Activation::Tanh { k: 0.9 }
        };
        b = b.dense(width + (i % 2), act);
    }
    b.init(Init::Uniform { a: 0.7 }).build(&mut rng(seed))
}

/// A small family of plans exercising every fault kind.
fn build_registry(net: Arc<Mlp>, seed: u64) -> PlanRegistry {
    let widths = net.widths();
    let mut reg = PlanRegistry::new();
    reg.register(Arc::clone(&net), &InjectionPlan::none(), 1.0)
        .unwrap();
    reg.register(
        Arc::clone(&net),
        &InjectionPlan::crash([(0, 0), (0, widths[0] - 1)]),
        1.0,
    )
    .unwrap();
    reg.register(
        Arc::clone(&net),
        &InjectionPlan::byzantine([(0, 1)], ByzantineStrategy::Random { seed }),
        1.0,
    )
    .unwrap();
    reg
}

/// Deterministically shuffled `(plan, input)` pairs — the random arrival
/// order the contract must be insensitive to.
fn request_mix(seed: u64, n: usize, plans: usize) -> Vec<(PlanId, Vec<f64>)> {
    let mut r = rng(seed ^ 0x5E2E);
    let mut mix: Vec<(PlanId, Vec<f64>)> = (0..n)
        .map(|i| {
            let input: Vec<f64> = (0..3).map(|_| r.gen_range(-1.0..=1.0)).collect();
            (PlanId(i % plans), input)
        })
        .collect();
    // Fisher–Yates with the deterministic workspace RNG.
    for i in (1..mix.len()).rev() {
        let j = r.gen_range(0..=i as u64) as usize;
        mix.swap(i, j);
    }
    mix
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Served values are bitwise singleton evaluations for any coalescing
    /// configuration, worker policy and concurrent arrival order — and the
    /// recorded log replays bitwise.
    #[test]
    fn served_equals_direct_singleton_bitwise(
        seed in 0u64..500,
        depth in 1usize..4,
        width in 3usize..9,
        max_batch in 1usize..9,
        wait_idx in 0usize..3,
        policy_idx in 0usize..3,
        clients in 1usize..5,
        coalesce_plans in proptest::bool::ANY,
        streaming_ingest in proptest::bool::ANY,
    ) {
        let net = Arc::new(build_net(seed, depth, width));
        let registry = build_registry(Arc::clone(&net), seed);
        let cfg = ServeConfig {
            max_batch,
            max_wait: [Duration::ZERO, Duration::from_micros(50), Duration::from_millis(1)][wait_idx],
            queue_capacity: 64,
            workers: [Parallelism::Sequential, Parallelism::Threads(2), Parallelism::Threads(5)][policy_idx],
            record_log: true,
            // All three plans share the net: coalescing folds them onto
            // one shared-net shard whose flushes mix plans — the suffix
            // engine must stay bitwise-invisible there too.
            coalesce_plans,
            // Streaming ingest must also be bitwise-invisible: arbitrary
            // traffic rarely prefix-matches, but when it does the reused
            // checkpoint must not change a single served bit.
            streaming_ingest,
            ..ServeConfig::default()
        };
        let server = CertServer::start(&registry, cfg);
        if coalesce_plans {
            prop_assert_eq!(server.shard_count(), 1);
        }
        let mix = request_mix(seed, 24, registry.len());

        // Submit concurrently from several clients, each with its own
        // interleaved slice of the shuffled mix.
        let served: Vec<(PlanId, Vec<f64>, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let server = &server;
                    let mine: Vec<(PlanId, Vec<f64>)> = mix
                        .iter()
                        .skip(c)
                        .step_by(clients)
                        .cloned()
                        .collect();
                    s.spawn(move || {
                        mine.into_iter()
                            .map(|(plan, input)| {
                                let value =
                                    server.query(plan, &input).expect("valid submission");
                                (plan, input, value)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });

        // Bitwise agreement with direct singleton evaluation.
        let mut ws = BatchWorkspace::default();
        for (plan, input, value) in &served {
            let direct = registry.get(*plan).unwrap().eval_singleton(input, &mut ws);
            prop_assert_eq!(
                value.to_bits(),
                direct.to_bits(),
                "plan {:?}: served {:e} vs direct {:e}",
                plan, value, direct
            );
        }

        // The recorded log replays bitwise, independent of how requests
        // were coalesced across flushes and workers.
        let log = server.take_log();
        prop_assert_eq!(log.len(), served.len());
        prop_assert!(log.verify(&registry).is_ok());
        server.shutdown();
    }

    /// Shutdown under load never drops an accepted request, and the
    /// drained responses are still bitwise correct.
    #[test]
    fn shutdown_under_load_drains_every_request(
        seed in 0u64..500,
        max_batch in 1usize..7,
        policy_idx in 0usize..3,
    ) {
        let net = Arc::new(build_net(seed, 2, 5));
        let registry = build_registry(Arc::clone(&net), seed);
        let server = CertServer::start(&registry, ServeConfig {
            max_batch,
            max_wait: Duration::from_micros(200),
            queue_capacity: 256,
            workers: [Parallelism::Sequential, Parallelism::Threads(2), Parallelism::Threads(4)][policy_idx],
            record_log: false,
            coalesce_plans: false,
            streaming_ingest: false,
            ..ServeConfig::default()
        });
        let mix = request_mix(seed, 60, registry.len());
        let pending: Vec<_> = mix
            .iter()
            .map(|(plan, input)| {
                (*plan, input.clone(), server.submit(*plan, input.clone()).unwrap())
            })
            .collect();
        // Shut down while (most of) the queue is still unserved.
        let stats = server.shutdown();
        let drained: u64 = stats.iter().map(|s| s.rows_served).sum();
        prop_assert_eq!(drained, mix.len() as u64, "accepted ≠ served");
        let mut ws = BatchWorkspace::default();
        for (plan, input, handle) in pending {
            let value = handle.wait().expect("request survived shutdown");
            let direct = registry.get(plan).unwrap().eval_singleton(&input, &mut ws);
            prop_assert_eq!(value.to_bits(), direct.to_bits());
        }
    }
}

/// The persistent store tier closes the streaming-ingest lifecycle gap:
/// per-worker prefix state dies with its worker, but flushes published to
/// the shared [`ArtifactStore`] outlive it. A restarted server opening the
/// same directory serves the whole repeated query set without a single
/// nominal forward pass — and without one bit of difference.
#[test]
fn restarted_server_warm_starts_from_shared_store() {
    let dir = std::env::temp_dir().join(format!("nf-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let net = Arc::new(build_net(41, 3, 6));
    let registry = build_registry(Arc::clone(&net), 41);
    let cfg = ServeConfig {
        // One row per flush: every flush's store key is exactly one query
        // input, so the warm run's keys deterministically match the cold
        // run's regardless of arrival timing.
        max_batch: 1,
        max_wait: Duration::ZERO,
        queue_capacity: 64,
        workers: Parallelism::Sequential,
        record_log: false,
        // All three plans share the net, so one shard (and one checkpoint
        // per input) serves them all.
        coalesce_plans: true,
        streaming_ingest: true,
        ..ServeConfig::default()
    };
    let mix = request_mix(41, 18, registry.len());

    // Cold server: every flush computes its nominal pass and publishes it.
    let server_a = CertServer::start_with_store(
        &registry,
        cfg,
        share_store(ArtifactStore::open(&dir).unwrap()),
    );
    let served_a: Vec<f64> = mix
        .iter()
        .map(|(plan, input)| server_a.query(*plan, input).unwrap())
        .collect();
    let stats_a = server_a.shutdown().remove(0);
    assert_eq!(stats_a.store_hits, 0, "cold run cannot hit its own store");
    assert_eq!(
        stats_a.store_publishes,
        mix.len() as u64,
        "every distinct cold flush publishes its checkpoint"
    );

    // Restarted server — a fresh store handle over the same directory, as
    // a new process would open. Every flush's nominal pass is served from
    // the store: zero forward passes, full rows×depth reuse accounting.
    let server_b = CertServer::start_with_store(
        &registry,
        cfg,
        share_store(ArtifactStore::open(&dir).unwrap()),
    );
    let served_b: Vec<f64> = mix
        .iter()
        .map(|(plan, input)| server_b.query(*plan, input).unwrap())
        .collect();
    let stats_b = server_b.shutdown().remove(0);
    assert_eq!(
        stats_b.store_hits,
        mix.len() as u64,
        "warm run serves every flush from the store"
    );
    assert_eq!(stats_b.store_publishes, 0, "nothing new to publish warm");
    assert_eq!(
        stats_b.store_rows_reused,
        (mix.len() * net.depth()) as u64,
        "reuse accounting is exact: one row × depth per warm flush"
    );

    // Warm values are bitwise the cold values, and both are bitwise the
    // direct singleton evaluation — the store tier is invisible in data.
    let mut ws = BatchWorkspace::default();
    for (i, (plan, input)) in mix.iter().enumerate() {
        let direct = registry.get(*plan).unwrap().eval_singleton(input, &mut ws);
        assert_eq!(served_a[i].to_bits(), direct.to_bits(), "cold vs direct");
        assert_eq!(served_b[i].to_bits(), direct.to_bits(), "warm vs direct");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

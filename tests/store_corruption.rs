//! Corruption certification of the persistent artifact store —
//! **contract 13: a damaged store is bitwise-indistinguishable from a
//! cold store.**
//!
//! Whatever happens to the bytes on disk — flipped bits, truncation, torn
//! writes that left a temp file but no rename, a zeroed / deleted /
//! bit-flipped index, records replaced wholesale with garbage — every
//! subsequent read is either a *verified-correct hit* (bitwise equal to
//! recompute) or a *clean miss* that recomputes to the same bits. Never a
//! panic, never an `Err` escaping the lookup path, never a wrong value.
//! The fuzzer below drives ≥50 seeded damage campaigns against populated
//! stores; the `chaos` module additionally kills writers mid-publish at
//! each deterministic failpoint site (`--features failpoints`) and
//! requires the survivor to be cold-equivalent too.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use neurofail::data::rng::rng;
use neurofail::inject::{
    ArtifactStore, ByzantineStrategy, CheckpointCache, InjectionPlan, PlanId, PlanRegistry,
};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::{BatchWorkspace, Mlp};
use neurofail::tensor::init::Init;
use neurofail::tensor::Matrix;
use rand::Rng;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nf-store-fuzz-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn build_net(seed: u64, depth: usize, width: usize) -> Mlp {
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        let act = if i % 2 == 0 {
            Activation::Sigmoid { k: 1.1 }
        } else {
            Activation::Tanh { k: 0.9 }
        };
        b = b.dense(width + (i % 2), act);
    }
    b.init(Init::Uniform { a: 0.7 }).build(&mut rng(seed))
}

fn build_registry(net: Arc<Mlp>, seed: u64) -> (PlanRegistry, Vec<PlanId>) {
    let widths = net.widths();
    let mut reg = PlanRegistry::new();
    let ids = vec![
        reg.register(Arc::clone(&net), &InjectionPlan::none(), 1.0)
            .unwrap(),
        reg.register(
            Arc::clone(&net),
            &InjectionPlan::crash([(0, 0), (0, widths[0] - 1)]),
            1.0,
        )
        .unwrap(),
        reg.register(
            Arc::clone(&net),
            &InjectionPlan::byzantine([(0, 1)], ByzantineStrategy::Random { seed }),
            1.0,
        )
        .unwrap(),
    ];
    (reg, ids)
}

fn probes(seed: u64, rows: usize) -> Matrix {
    let mut r = rng(seed ^ 0x51AB);
    Matrix::from_fn(rows, 3, |_, _| r.gen_range(-1.0..=1.0))
}

/// Every `*.rec` file currently in the store directory.
fn record_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "rec"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

/// One seeded act of vandalism against the store directory. Returns a
/// human tag for assertion messages.
fn damage(dir: &Path, r: &mut impl Rng) -> &'static str {
    let records = record_files(dir);
    let kind = r.gen_range(0..7u64);
    match kind {
        // Flip one bit somewhere in a record (header or payload).
        0 if !records.is_empty() => {
            let p = &records[r.gen_range(0..records.len() as u64) as usize];
            let mut bytes = fs::read(p).unwrap();
            let i = r.gen_range(0..bytes.len() as u64) as usize;
            bytes[i] ^= 1 << r.gen_range(0..8u64);
            fs::write(p, bytes).unwrap();
            "bit flip"
        }
        // Truncate a record to a random prefix (0 included).
        1 if !records.is_empty() => {
            let p = &records[r.gen_range(0..records.len() as u64) as usize];
            let len = fs::metadata(p).unwrap().len();
            let keep = r.gen_range(0..=len);
            let mut bytes = fs::read(p).unwrap();
            bytes.truncate(keep as usize);
            fs::write(p, bytes).unwrap();
            "truncation"
        }
        // A torn publish: the temp is on disk, the rename never happened.
        2 => {
            let mut junk = vec![0u8; r.gen_range(1..200u64) as usize];
            junk.iter_mut()
                .for_each(|b| *b = r.gen_range(0..=255u64) as u8);
            fs::write(
                dir.join(format!(".tmp-{}-torn", r.gen_range(1..9999u64))),
                junk,
            )
            .unwrap();
            "torn publish"
        }
        // Zero the index.
        3 => {
            fs::write(dir.join("index.v1"), b"").unwrap();
            "zeroed index"
        }
        // Delete the index outright.
        4 => {
            let _ = fs::remove_file(dir.join("index.v1"));
            "deleted index"
        }
        // Flip a bit in the index.
        5 => {
            if let Ok(mut bytes) = fs::read(dir.join("index.v1")) {
                if !bytes.is_empty() {
                    let i = r.gen_range(0..bytes.len() as u64) as usize;
                    bytes[i] ^= 1 << r.gen_range(0..8u64);
                    fs::write(dir.join("index.v1"), bytes).unwrap();
                }
            }
            "index bit flip"
        }
        // Replace a record wholesale with garbage of plausible size.
        _ if !records.is_empty() => {
            let p = &records[r.gen_range(0..records.len() as u64) as usize];
            let mut junk = vec![0u8; r.gen_range(1..600u64) as usize];
            junk.iter_mut()
                .for_each(|b| *b = r.gen_range(0..=255u64) as u8);
            fs::write(p, junk).unwrap();
            "garbage record"
        }
        _ => "no-op (no records yet)",
    }
}

/// The fuzzer: ≥50 seeded campaigns of populate → vandalize → reopen →
/// evaluate. Acceptance: zero wrong bits, zero panics, zero errors
/// escaping — and the store keeps working (re-publish then hit) after
/// every campaign.
#[test]
fn fifty_seeds_of_damage_never_yield_a_wrong_bit() {
    for seed in 0..55u64 {
        let dir = store_dir(&format!("s{seed}"));
        let mut r = rng(seed ^ 0xDA3A);
        let depth = 1 + (seed % 3) as usize;
        let width = 3 + (seed % 5) as usize;
        let net = Arc::new(build_net(seed, depth, width));
        let (reg, ids) = build_registry(Arc::clone(&net), seed);
        let sets: Vec<Matrix> = (0..3)
            .map(|i| probes(seed * 8 + i, 2 + (i as usize)))
            .collect();
        let cold: Vec<Vec<Vec<f64>>> = sets.iter().map(|xs| reg.eval_many(&ids, xs)).collect();

        // Populate through the cache's disk tier.
        let mut scratch = BatchWorkspace::default();
        {
            let mut cache = CheckpointCache::new(sets.len());
            cache.attach_store(ArtifactStore::open(&dir).unwrap());
            for xs in &sets {
                reg.eval_many_cached(&ids, xs, &mut cache, &mut scratch);
            }
        }

        // 1–3 independent acts of damage.
        for _ in 0..r.gen_range(1..=3u64) {
            damage(&dir, &mut r);
        }

        // Reopen (must not error), then evaluate everything through a
        // fresh cache: the values must be bitwise the cold compute no
        // matter what the damage did — hits verified, misses recomputed.
        let mut cache = CheckpointCache::new(sets.len());
        cache.attach_store(ArtifactStore::open(&dir).expect("open survives any damage"));
        for (i, xs) in sets.iter().enumerate() {
            let got = reg.eval_many_cached(&ids, xs, &mut cache, &mut scratch);
            for (g, c) in got.iter().zip(&cold[i]) {
                for (gv, cv) in g.iter().zip(c) {
                    assert_eq!(gv.to_bits(), cv.to_bits(), "seed {seed}, set {i}");
                }
            }
        }
        let stats = cache.store_stats().expect("store attached");
        assert_eq!(
            stats.hits + stats.misses + stats.verify_rejects,
            sets.len() as u64,
            "seed {seed}: every lookup resolves as hit, miss or reject"
        );
        // No temp debris survives a reopen (torn publishes are swept).
        let debris = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count();
        assert_eq!(debris, 0, "seed {seed}: torn temps swept on open");

        // The damaged store keeps working: a re-publish round makes every
        // set a verified hit again for the *next* fresh cache.
        drop(cache);
        let mut again = CheckpointCache::new(sets.len());
        again.attach_store(ArtifactStore::open(&dir).unwrap());
        for xs in &sets {
            reg.eval_many_cached(&ids, xs, &mut again, &mut scratch);
        }
        let healed = again.store_stats().expect("store attached");
        assert_eq!(
            healed.verify_rejects, 0,
            "seed {seed}: damage is quarantined on first touch, not sticky"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Deterministic writer kills at every store publish site
/// (`--features failpoints`): whatever instant the writer died, the
/// surviving directory serves only verified-correct hits or clean misses
/// — bitwise a cold store.
#[cfg(feature = "failpoints")]
mod chaos {
    use super::*;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::Once;

    use neurofail::par::failpoint::{install, ChaosAction, ChaosSchedule};

    /// Silence the expected chaos-payload panic backtraces (mirrors
    /// `tests/chaos_serve.rs`).
    fn quiet_chaos_panics() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                let chaos = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("chaos failpoint"));
                if !chaos {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn writer_killed_mid_publish_leaves_a_cold_equivalent_store() {
        quiet_chaos_panics();
        for (site, durable) in [
            // Temp written, rename never happened: the record must NOT
            // exist afterwards.
            ("store::publish_temp", false),
            // Rename happened, index update didn't: the record is durable
            // and open() must adopt it from the directory scan.
            ("store::publish_rename", true),
            // Index temp written, index rename didn't: records durable,
            // index stale — open() reconciles.
            ("store::index_rewrite", true),
        ] {
            let dir = store_dir(&format!("kill-{}", site.rsplit(':').next().unwrap()));
            let net = Arc::new(build_net(3, 2, 5));
            let (reg, ids) = build_registry(Arc::clone(&net), 3);
            let xs = probes(3, 6);
            let cold = reg.eval_many(&ids, &xs);
            let mut ws = BatchWorkspace::default();
            let y = net.forward_batch(&xs, &mut ws);

            // Kill the writer at the armed site, mid-publish. The store
            // is opened *before* arming: `open` itself rewrites the
            // index, and the kill belongs to the publish, not the open.
            {
                let mut store = ArtifactStore::open(&dir).unwrap();
                let guard = install(ChaosSchedule::new(0xDEAD).on_hit(site, ChaosAction::Panic, 0));
                let killed = panic::catch_unwind(AssertUnwindSafe(|| {
                    store.publish_checkpoint(&net, &xs, &ws, &y)
                }));
                assert!(killed.is_err(), "{site}: writer killed");
                assert_eq!(guard.fired(site), 1, "{site}: armed site fired");
                drop(guard);
                // The dead writer's handle is leaked, not dropped: a dead
                // process never runs destructors (no index flush).
                std::mem::forget(store);
            }

            // The survivor: opens cleanly, serves the documented outcome,
            // and is bitwise cold-equivalent either way.
            let mut survivor = ArtifactStore::open(&dir).unwrap();
            let mut out = BatchWorkspace::default();
            match survivor.load_checkpoint(&net, &xs, &mut out) {
                Some(got) => {
                    assert!(durable, "{site}: record must not survive");
                    for (g, e) in got.iter().zip(&y) {
                        assert_eq!(g.to_bits(), e.to_bits(), "{site}: hit is bitwise");
                    }
                }
                None => assert!(!durable, "{site}: durable record must be adopted"),
            }
            assert_eq!(survivor.stats().verify_rejects, 0, "{site}");
            drop(survivor);

            // Cold-store equivalence through the full cached-eval path.
            let mut scratch = BatchWorkspace::default();
            let mut cache = CheckpointCache::new(2);
            cache.attach_store(ArtifactStore::open(&dir).unwrap());
            let got = reg.eval_many_cached(&ids, &xs, &mut cache, &mut scratch);
            for (g, c) in got.iter().zip(&cold) {
                for (gv, cv) in g.iter().zip(c) {
                    assert_eq!(gv.to_bits(), cv.to_bits(), "{site}: cold-equivalent");
                }
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

//! Reproducibility guarantees at workspace level: every stochastic pipeline
//! is a pure function of its seeds, independent of thread count — the
//! property EXPERIMENTS.md relies on when it promises bit-identical
//! regeneration of every table.

use neurofail::data::functions::Ridge;
use neurofail::data::rng::rng;
use neurofail::data::Dataset;
use neurofail::inject::{run_campaign, CampaignConfig, FaultSpec, TrialKind};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::train::{train, TrainConfig};
use neurofail::par::Parallelism;
use neurofail::tensor::init::Init;

#[test]
fn whole_pipeline_is_a_pure_function_of_seeds() {
    let build = || {
        let target = Ridge::canonical(2);
        let mut r = rng(777);
        let data = Dataset::sample(&target, 128, &mut r);
        let mut net = MlpBuilder::new(2)
            .dense(8, Activation::Sigmoid { k: 1.0 })
            .init(Init::Xavier)
            .build(&mut r);
        train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
            &mut r,
        );
        net
    };
    let a = build();
    let b = build();
    assert_eq!(a, b, "training must be bit-reproducible");
}

#[test]
fn campaigns_are_invariant_across_parallelism_policies() {
    let mut r = rng(778);
    let net = MlpBuilder::new(3)
        .dense(12, Activation::Sigmoid { k: 1.0 })
        .dense(6, Activation::Sigmoid { k: 1.0 })
        .init(Init::Uniform { a: 0.4 })
        .build(&mut r);
    let cfg = CampaignConfig {
        trials: 30,
        inputs_per_trial: 10,
        ..CampaignConfig::default()
    };
    let reference = run_campaign(
        &net,
        &[2, 1],
        TrialKind::Neurons(FaultSpec::ByzantineRandom),
        &cfg,
        Parallelism::Sequential,
    );
    for threads in [1usize, 2, 3, 8] {
        let got = run_campaign(
            &net,
            &[2, 1],
            TrialKind::Neurons(FaultSpec::ByzantineRandom),
            &cfg,
            Parallelism::Threads(threads),
        );
        assert_eq!(got.stats, reference.stats, "threads = {threads}");
        assert_eq!(got.worst, reference.worst, "threads = {threads}");
    }
}

#[test]
fn campaign_worst_case_is_replayable() {
    // The worst (plan, input) pair reported by a campaign must reproduce
    // its error exactly when re-executed in isolation — campaigns report
    // evidence, not just statistics. Campaigns run on the batched engine,
    // whose rows are bitwise independent of their batch, so replaying the
    // worst input as a singleton batch is exact; the scalar engine agrees
    // to the engines' documented 1e-12 equivalence budget.
    use neurofail::inject::CompiledPlan;
    use neurofail::nn::{BatchWorkspace, Workspace};
    use neurofail::tensor::Matrix;

    let mut r = rng(779);
    let net = MlpBuilder::new(2)
        .dense(10, Activation::Sigmoid { k: 1.0 })
        .init(Init::Uniform { a: 0.5 })
        .build(&mut r);
    let res = run_campaign(
        &net,
        &[3],
        TrialKind::Neurons(FaultSpec::Crash),
        &CampaignConfig {
            trials: 20,
            inputs_per_trial: 8,
            ..CampaignConfig::default()
        },
        Parallelism::all_cores(),
    );
    let worst = res.worst.expect("faults were injected");
    let compiled = CompiledPlan::compile(&worst.plan, &net, 1.0).unwrap();
    let singleton = Matrix::from_vec(1, 2, worst.input.clone());
    let mut bws = BatchWorkspace::for_net(&net, 1);
    let replayed = compiled.output_error_batch(&net, &singleton, &mut bws);
    assert_eq!(replayed[0], worst.error, "batched replay must be bitwise");
    let mut ws = Workspace::for_net(&net);
    let scalar = compiled.output_error(&net, &worst.input, &mut ws);
    assert!(
        (scalar - worst.error).abs() <= 1e-12,
        "scalar replay outside equivalence budget: {scalar} vs {}",
        worst.error
    );
}

//! The workspace's central integration property: for any network, any
//! fault plan and any input, the measured output disturbance never exceeds
//! the corresponding analytic bound — Theorems 1–5 end to end, across
//! crates (nn → core → inject).

use neurofail::core::fep::fep_for;
use neurofail::core::synapse::{synapse_fep, SynapseBoundForm};
use neurofail::core::{crash_fep, Capacity, FaultClass, NetworkProfile};
use neurofail::data::rng::rng;
use neurofail::inject::{run_campaign, CampaignConfig, FaultSpec, TrialKind};
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::Mlp;
use neurofail::par::Parallelism;
use neurofail::tensor::init::Init;
use proptest::prelude::*;

/// Build a random sigmoid/tanh network from a compact recipe.
fn build_net(seed: u64, depth: usize, width: usize, scale: f64, tanh: bool) -> Mlp {
    let act = if tanh {
        Activation::Tanh { k: 1.0 }
    } else {
        Activation::Sigmoid { k: 1.0 }
    };
    let mut b = MlpBuilder::new(3);
    for i in 0..depth {
        b = b.dense(width + (i % 2), act);
    }
    b.init(Init::Uniform { a: scale })
        .bias(false)
        .build(&mut rng(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash faults: measured <= crash-Fep for random nets and plans.
    #[test]
    fn crash_measurements_respect_the_bound(
        seed in 0u64..500,
        depth in 1usize..4,
        width in 3usize..9,
        scale in 0.05f64..1.2,
        fault_seed in 0u64..100,
    ) {
        let net = build_net(seed, depth, width, scale, false);
        let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(1.0)).unwrap();
        let widths = net.widths();
        let counts: Vec<usize> = widths
            .iter()
            .enumerate()
            .map(|(i, &n)| (fault_seed as usize).wrapping_mul(i + 3) % (n + 1))
            .collect();
        let bound = crash_fep(&profile, &counts);
        let res = run_campaign(
            &net,
            &counts,
            TrialKind::Neurons(FaultSpec::Crash),
            &CampaignConfig { trials: 8, inputs_per_trial: 6, ..CampaignConfig::default() },
            Parallelism::Sequential,
        );
        prop_assert!(res.max_error() <= bound + 1e-12,
            "measured {} > bound {bound} for counts {counts:?}", res.max_error());
    }

    /// Byzantine faults (every strategy): measured <= strict-magnitude Fep.
    #[test]
    fn byzantine_measurements_respect_the_strict_bound(
        seed in 0u64..500,
        depth in 1usize..3,
        width in 3usize..8,
        capacity in 0.2f64..3.0,
        tanh in proptest::bool::ANY,
    ) {
        let net = build_net(seed, depth, width, 0.5, tanh);
        let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(capacity)).unwrap();
        let counts = vec![1usize; depth];
        let bound = fep_for(&profile, &counts, FaultClass::ByzantineStrict);
        for spec in [
            FaultSpec::ByzantineMaxPositive,
            FaultSpec::ByzantineMaxNegative,
            FaultSpec::ByzantineRandom,
            FaultSpec::ByzantineOpposeNominal,
            FaultSpec::StuckAt(0.77),
        ] {
            let res = run_campaign(
                &net,
                &counts,
                TrialKind::Neurons(spec),
                &CampaignConfig {
                    trials: 6,
                    inputs_per_trial: 4,
                    capacity,
                    ..CampaignConfig::default()
                },
                Parallelism::Sequential,
            );
            prop_assert!(res.max_error() <= bound + 1e-12,
                "{spec:?}: measured {} > strict bound {bound}", res.max_error());
        }
    }

    /// Byzantine synapses: measured <= Lemma-2-form Theorem 4 bound.
    #[test]
    fn synapse_measurements_respect_the_lemma2_bound(
        seed in 0u64..500,
        depth in 1usize..3,
        width in 3usize..8,
        capacity in 0.2f64..2.0,
    ) {
        let net = build_net(seed, depth, width, 0.5, false);
        let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(capacity)).unwrap();
        let mut counts = vec![1usize; depth + 1];
        counts[depth] = 1;
        let bound = synapse_fep(&profile, &counts, SynapseBoundForm::Lemma2);
        let res = run_campaign(
            &net,
            &counts,
            TrialKind::Synapses { byzantine: true },
            &CampaignConfig {
                trials: 8,
                inputs_per_trial: 4,
                capacity,
                ..CampaignConfig::default()
            },
            Parallelism::Sequential,
        );
        prop_assert!(res.max_error() <= bound + 1e-12,
            "measured {} > Lemma-2 bound {bound}", res.max_error());
    }
}

/// Deterministic end-to-end check with hand-set weights (exact arithmetic):
/// Fep equals the worst case on the construction designed to attain it.
#[test]
fn fep_is_attained_on_the_saturating_witness() {
    use neurofail::inject::adversary::{
        adversarial_input, saturating_single_layer, worst_crash_plan,
    };
    use neurofail::inject::input_search::SearchConfig;
    use neurofail::inject::CompiledPlan;

    let net = saturating_single_layer(3, 20, 0.04, 60.0);
    let profile = NetworkProfile::from_mlp(&net, Capacity::Bounded(1.0)).unwrap();
    for fails in [1usize, 5, 10, 20] {
        let bound = crash_fep(&profile, &[fails]);
        let plan = worst_crash_plan(&net, 0, fails);
        let compiled = CompiledPlan::compile(&plan, &net, 1.0).unwrap();
        let (worst, _) = adversarial_input(&net, &compiled, &SearchConfig::default(), &mut rng(99));
        assert!(worst <= bound + 1e-12);
        assert!(
            worst >= 0.999 * bound,
            "tightness not attained: {worst} vs {bound} at f = {fails}"
        );
    }
}

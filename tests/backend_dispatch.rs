//! Backend selection and dispatch contracts, exercised end to end:
//!
//! * the `NEUROFAIL_BACKEND` vocabulary (`portable` / `avx2` / `avx512` /
//!   `mixed32` / `auto`) and its strict parse;
//! * `default_kind` honouring the environment override — the CI matrix
//!   runs this whole suite once with `NEUROFAIL_BACKEND=portable` and
//!   once with `auto`, so both legs of the env path are executed;
//! * the resolution order of the three selection layers: thread-scoped
//!   `with_backend` beats process-wide `force_backend` beats the env/
//!   detected default;
//! * the saturation-flush invariant (`ops::SATURATION_FLUSH`): a batch
//!   driven deep into sigmoid saturation produces **zero subnormals** in
//!   the forward taps, the backward delta buffers, and the gradients,
//!   under every supported backend — the regression that would fire if a
//!   SIMD kernel dropped the flush.

use neurofail::data::rng::rng;
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::train::{BatchBackpropWs, Grads};
use neurofail::nn::{Layer, Mlp};
use neurofail::tensor::backend::{self, BackendKind};
use neurofail::tensor::init::Init;
use neurofail::tensor::Matrix;

#[test]
fn parse_vocabulary_is_the_env_contract() {
    assert_eq!(BackendKind::parse("portable"), Ok(BackendKind::Portable));
    assert_eq!(BackendKind::parse("avx2"), Ok(BackendKind::Avx2));
    assert_eq!(BackendKind::parse("avx512"), Ok(BackendKind::Avx512));
    assert_eq!(BackendKind::parse("mixed32"), Ok(BackendKind::Mixed32));
    assert_eq!(BackendKind::parse(" AVX2 "), Ok(BackendKind::Avx2));
    assert_eq!(BackendKind::parse("auto"), Ok(BackendKind::detect_best()));
    assert_eq!(BackendKind::parse(""), Ok(BackendKind::detect_best()));
    assert!(
        BackendKind::parse("sse9").is_err(),
        "unknown names are errors"
    );
}

#[test]
fn default_kind_honours_the_env_override() {
    let expect = match std::env::var("NEUROFAIL_BACKEND") {
        Ok(v) => BackendKind::parse(&v).expect("CI sets a valid name"),
        Err(_) => BackendKind::detect_best(),
    };
    assert_eq!(backend::default_kind(), expect);
}

#[test]
fn detection_is_coherent() {
    let supported = backend::supported_kinds();
    assert!(supported.contains(&BackendKind::Portable));
    assert!(supported.contains(&BackendKind::Mixed32));
    let best = BackendKind::detect_best();
    assert!(best.is_supported());
    assert_ne!(
        best,
        BackendKind::Mixed32,
        "reduced precision is opt-in only"
    );
    for f in backend::detected_features() {
        assert!(
            matches!(f, "avx2" | "fma" | "avx512f"),
            "unexpected feature {f}"
        );
    }
}

#[test]
fn scoped_override_beats_forced_beats_default() {
    let default = backend::default_kind();
    backend::force_backend(Some(BackendKind::Portable));
    assert_eq!(backend::active_kind(), BackendKind::Portable);
    // A thread-scoped override wins over the process-wide force...
    let best = BackendKind::detect_best();
    backend::with_backend(best, || {
        assert_eq!(backend::active_kind(), best);
        // ...and nests.
        backend::with_backend(BackendKind::Mixed32, || {
            assert_eq!(backend::active_kind(), BackendKind::Mixed32);
        });
        assert_eq!(backend::active_kind(), best);
    });
    // The force is still in effect once the scope unwinds.
    assert_eq!(backend::active_kind(), BackendKind::Portable);
    backend::force_backend(None);
    assert_eq!(backend::active_kind(), default);
}

/// A 1-input dense sigmoid layer with unit weights: the batch sums are
/// the inputs themselves, so rows can be aimed exactly at the band
/// where `e^{4kx}` underflows into (would-be) subnormal territory.
fn saturating_net() -> Mlp {
    let mut net = MlpBuilder::new(1)
        .dense(3, Activation::Sigmoid { k: 1.0 })
        .dense(3, Activation::Sigmoid { k: 1.0 })
        .init(Init::Xavier)
        .bias(false)
        .build(&mut rng(2));
    if let Layer::Dense(d) = &mut net.layers_mut()[0] {
        d.weights_mut().data_mut().fill(1.0);
    }
    net
}

#[test]
fn saturated_sigmoid_backward_buffers_are_subnormal_free() {
    let net = saturating_net();
    // Rows sweep x from deep saturation (|4kx| ≫ 745, exp underflows to
    // zero) through the subnormal-producing band (708 < |4kx| < 745)
    // back to tame values; both signs.
    let mut rows = Vec::new();
    let mut x = -200.0;
    while x <= 200.0 {
        rows.push(x);
        x += 1.625;
    }
    let xs = Matrix::from_fn(rows.len(), 1, |r, _| rows[r]);
    let ys = vec![0.5; rows.len()];

    for kind in backend::supported_kinds() {
        let (bws, grads) = backend::with_backend(kind, || {
            let mut bws = BatchBackpropWs::for_net(&net, rows.len());
            let mut grads = Grads::zeros_like(&net);
            net.backward_batch(&xs, &ys, &mut bws, &mut grads);
            (bws, grads)
        });
        let ctx = kind.name();
        let scan = |name: &str, vals: &[f64]| {
            for &v in vals {
                assert!(!v.is_subnormal(), "{ctx}: subnormal {v:e} in {name}");
            }
        };
        let mut saturated_zeros = 0usize;
        for (l, (sums, outs)) in bws.fwd.sums.iter().zip(&bws.fwd.outs).enumerate() {
            scan(&format!("layer {l} outs"), outs.data());
            for (&s, &y) in sums.data().iter().zip(outs.data()) {
                if s < -150.0 && y == 0.0 {
                    saturated_zeros += 1;
                }
            }
        }
        assert!(
            saturated_zeros > 0,
            "{ctx}: the batch never reached the flush band — vacuous test"
        );
        for (l, delta) in bws.delta.iter().enumerate() {
            scan(&format!("layer {l} delta"), delta.data());
        }
        for (l, lg) in grads.layers.iter().enumerate() {
            scan(&format!("layer {l} grad w"), lg.w.data());
            scan(&format!("layer {l} grad b"), &lg.b);
        }
        scan("output grads", &grads.output);
        scan("output bias grad", &[grads.output_bias]);
    }
}

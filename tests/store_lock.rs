//! Cross-process store discipline — the advisory-lock contract, checked
//! with *real* second processes (re-invocations of this test binary):
//!
//! * the advisory `LOCK` file serializes writers across processes: a
//!   publish in another process blocks while this one holds the lock and
//!   lands intact once it is released;
//! * readers never block on a stale lock: a writer that dies holding the
//!   lock (the OS releases advisory locks on process death) leaves a
//!   store that opens and serves immediately;
//! * a publisher evicting under a tight byte budget in one process while
//!   another process reads the same directory produces no verify-reject
//!   storm — a concurrently evicted record is a clean miss, never a
//!   corruption report, and never a wrong bit.
//!
//! Child roles are dispatched through the `NF_STORE_CHILD` env var onto
//! the `#[ignore]`d `child_worker` test below, spawned via
//! `std::process::Command` on `current_exe()`.

use std::fs::File;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use neurofail::data::rng::rng;
use neurofail::inject::ArtifactStore;
use neurofail::nn::activation::Activation;
use neurofail::nn::builder::MlpBuilder;
use neurofail::nn::{BatchWorkspace, Mlp};
use neurofail::tensor::init::Init;
use neurofail::tensor::Matrix;
use rand::Rng;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nf-store-lock-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The shared fixture both processes rebuild deterministically.
fn fixture_net() -> Arc<Mlp> {
    Arc::new(
        MlpBuilder::new(3)
            .dense(6, Activation::Sigmoid { k: 1.1 })
            .dense(5, Activation::Tanh { k: 0.9 })
            .init(Init::Uniform { a: 0.7 })
            .build(&mut rng(0x10C4)),
    )
}

/// Probe set `i` of the shared fixture.
fn fixture_probes(i: u64) -> Matrix {
    let mut r = rng(0xBEE5 ^ i);
    Matrix::from_fn(4, 3, |_, _| r.gen_range(-1.0..=1.0))
}

fn checkpoint_of(net: &Mlp, xs: &Matrix) -> (BatchWorkspace, Vec<f64>) {
    let mut ws = BatchWorkspace::default();
    let y = net.forward_batch(xs, &mut ws);
    (ws, y)
}

/// Spawn this test binary again as `role`, pointed at `dir`.
fn spawn_child(role: &str, dir: &Path) -> Child {
    Command::new(std::env::current_exe().expect("test binary path"))
        .args(["child_worker", "--ignored", "--exact"])
        .env("NF_STORE_CHILD", role)
        .env("NF_STORE_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child process")
}

/// The other process. Ignored under a normal test run; the parent tests
/// re-invoke the binary with `NF_STORE_CHILD` set to pick a role.
#[test]
#[ignore = "child-process helper, spawned by the tests below"]
fn child_worker() {
    let Ok(role) = std::env::var("NF_STORE_CHILD") else {
        return;
    };
    let dir = PathBuf::from(std::env::var("NF_STORE_DIR").expect("NF_STORE_DIR set"));
    let net = fixture_net();
    match role.as_str() {
        // Publish probe set 0 — blocking on the advisory lock if the
        // parent holds it.
        "publish-one" => {
            let xs = fixture_probes(0);
            let (ws, y) = checkpoint_of(&net, &xs);
            let mut store = ArtifactStore::open(&dir).unwrap();
            store.publish_checkpoint(&net, &xs, &ws, &y).unwrap();
        }
        // Die while holding the advisory lock: the OS must release it.
        "die-holding-lock" => {
            let f = File::options()
                .create(true)
                .truncate(false)
                .write(true)
                .open(dir.join("LOCK"))
                .unwrap();
            f.lock().unwrap();
            std::process::abort();
        }
        // Churn: publish many probe sets against a tight byte budget,
        // evicting continuously while the parent reads.
        "churn-publisher" => {
            let mut store = ArtifactStore::open(&dir)
                .unwrap()
                .with_byte_budget(3 * 1024);
            for round in 0..40u64 {
                let xs = fixture_probes(round % 8);
                let (ws, y) = checkpoint_of(&net, &xs);
                let _ = store.publish_checkpoint(&net, &xs, &ws, &y);
            }
        }
        other => panic!("unknown child role {other}"),
    }
}

/// Writers in different processes serialize on the advisory lock: while
/// this process holds it, a child's publish cannot land; on release it
/// completes and the record reads back bitwise.
#[test]
fn advisory_lock_serializes_writers_across_processes() {
    let dir = store_dir("serialize");
    // Create the directory (and lock file) the way a store would.
    drop(ArtifactStore::open(&dir).unwrap());
    let net = fixture_net();
    let xs = fixture_probes(0);
    let (_, y) = checkpoint_of(&net, &xs);

    let held = File::options()
        .create(true)
        .truncate(false)
        .write(true)
        .open(dir.join("LOCK"))
        .unwrap();
    held.lock().unwrap();

    let mut child = spawn_child("publish-one", &dir);
    // Generous beat: the child reaches its open()/publish lock wait.
    std::thread::sleep(Duration::from_millis(400));
    let published_early = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .any(|e| e.path().extension().is_some_and(|x| x == "rec"));
    assert!(
        !published_early,
        "child published while the parent held the advisory lock"
    );
    assert!(
        child.try_wait().unwrap().is_none(),
        "child exited without publishing"
    );

    drop(held); // release: the child's publish may now proceed
    let status = child.wait().unwrap();
    assert!(status.success(), "child publish failed after release");
    let mut store = ArtifactStore::open(&dir).unwrap();
    let mut ws = BatchWorkspace::default();
    let got = store
        .load_checkpoint(&net, &xs, &mut ws)
        .expect("child's record landed");
    for (g, e) in got.iter().zip(&y) {
        assert_eq!(g.to_bits(), e.to_bits(), "cross-process record is bitwise");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A writer that dies holding the lock leaves no wedge: the OS releases
/// advisory locks with the process, so a fresh open neither errors nor
/// blocks beyond a bounded beat.
#[test]
fn readers_never_block_on_a_stale_lock_after_writer_death() {
    let dir = store_dir("stale");
    drop(ArtifactStore::open(&dir).unwrap());
    let mut child = spawn_child("die-holding-lock", &dir);
    let status = child.wait().unwrap();
    assert!(!status.success(), "child is expected to abort");

    let start = Instant::now();
    let mut store = ArtifactStore::open(&dir).expect("open after writer death");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "open blocked on a dead writer's lock"
    );
    // And the store is fully operational.
    let net = fixture_net();
    let xs = fixture_probes(1);
    let (ws, y) = checkpoint_of(&net, &xs);
    assert!(store.publish_checkpoint(&net, &xs, &ws, &y).unwrap());
    let mut out = BatchWorkspace::default();
    assert!(store.load_checkpoint(&net, &xs, &mut out).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tight-budget publisher evicting in another process while this one
/// reads: every read is a verified bitwise hit or a clean miss — zero
/// verify rejects (no "storm" where evictions masquerade as corruption),
/// zero wrong bits.
#[test]
fn concurrent_eviction_is_a_clean_miss_never_a_reject_storm() {
    let dir = store_dir("churn");
    drop(ArtifactStore::open(&dir).unwrap());
    let net = fixture_net();
    let expected: Vec<(Matrix, Vec<f64>)> = (0..8)
        .map(|i| {
            let xs = fixture_probes(i);
            let y = checkpoint_of(&net, &xs).1;
            (xs, y)
        })
        .collect();

    let mut child = spawn_child("churn-publisher", &dir);
    let mut reader = ArtifactStore::open(&dir).unwrap();
    let mut ws = BatchWorkspace::default();
    let mut hits = 0u64;
    loop {
        for (xs, y) in &expected {
            if let Some(got) = reader.load_checkpoint(&net, xs, &mut ws) {
                hits += 1;
                for (g, e) in got.iter().zip(y) {
                    assert_eq!(g.to_bits(), e.to_bits(), "concurrent hit is bitwise");
                }
            }
        }
        if child.try_wait().unwrap().is_some() {
            break;
        }
    }
    assert!(child.wait().unwrap().success(), "publisher child failed");
    // One final sweep against the settled directory.
    for (xs, y) in &expected {
        if let Some(got) = reader.load_checkpoint(&net, xs, &mut ws) {
            hits += 1;
            for (g, e) in got.iter().zip(y) {
                assert_eq!(g.to_bits(), e.to_bits());
            }
        }
    }
    let stats = reader.stats();
    assert_eq!(
        stats.verify_rejects, 0,
        "a concurrently evicted record must read as a miss, not corruption"
    );
    assert!(
        hits > 0,
        "reader should observe at least one published record"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

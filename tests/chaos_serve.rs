//! Chaos certification of the serving engine itself (`--features failpoints`).
//!
//! The paper certifies networks against *neuron* failures; this suite
//! certifies the **serving substrate** against its own: worker panics
//! mid-flush, stalls, forced backpressure, mid-stream kills. The contract
//! under test is crash-recovery invisibility — every accepted request is
//! either answered **bitwise equal** to a direct singleton
//! `output_error_batch` evaluation, exactly once, or fails with a typed
//! error (`Deadline`, `Quarantined`, `WorkerDied`); injected chaos may
//! change *which* of the two, and the recovery statistics, but never an
//! answered value. Injection itself is deterministic: the same
//! `ChaosSchedule` seed reproduces the same per-site firing sequence.
//!
//! Every test that runs server traffic holds an installed [`ChaosGuard`]
//! for its full duration (an empty schedule where no chaos is wanted) —
//! the guard owns the process-global chaos session, so concurrent tests
//! serialize instead of observing each other's schedules.

#![cfg(feature = "failpoints")]

use std::panic;
use std::sync::{Arc, Once};
use std::time::Duration;

use neurofail::inject::{CheckpointCache, InjectionPlan, PlanId, PlanRegistry};
use neurofail::nn::activation::Activation;
use neurofail::nn::layer::DenseLayer;
use neurofail::nn::{BatchWorkspace, Layer, Mlp};
use neurofail::par::failpoint::{install, ChaosAction, ChaosSchedule, FiredEvent};
use neurofail::par::seed::splitmix64;
use neurofail::par::Parallelism;
use neurofail::serve::{CertServer, RequestError, RetryPolicy, ServeConfig, SubmitError};
use neurofail::tensor::Matrix;

/// Silence the default panic-hook backtrace spam from injected panics:
/// supervised worker threads and chaos-payload panics are *expected* here.
/// Everything else still reports through the previous hook.
fn quiet_chaos_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("neurofail-serve-"));
            let chaos = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("chaos failpoint"));
            if !(worker || chaos) {
                prev(info);
            }
        }));
    });
}

/// A fixed 2-layer net with two registered plans (crash at layer 0 and at
/// layer 1) sharing it — small enough that chaos runs are fast, deep
/// enough that suffix resumption and streaming checkpoints are exercised.
fn chaos_registry() -> PlanRegistry {
    let net = Arc::new(Mlp::new(
        vec![
            Layer::Dense(DenseLayer::new(
                Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.5, -0.5]),
                vec![],
                Activation::Identity,
            )),
            Layer::Dense(DenseLayer::new(
                Matrix::from_vec(2, 3, vec![1.0, -0.5, 0.25, 0.0, 1.0, -1.0]),
                vec![],
                Activation::Sigmoid { k: 1.0 },
            )),
        ],
        vec![1.0, 2.0],
        0.0,
    ));
    let mut reg = PlanRegistry::new();
    reg.register(Arc::clone(&net), &InjectionPlan::crash([(0, 1)]), 1.0)
        .unwrap();
    reg.register(net, &InjectionPlan::crash([(1, 0)]), 1.0)
        .unwrap();
    reg
}

fn assert_bitwise(reg: &PlanRegistry, plan: PlanId, input: &[f64], served: f64, ctx: &str) {
    let mut ws = BatchWorkspace::default();
    let direct = reg.get(plan).unwrap().eval_singleton(input, &mut ws);
    assert_eq!(
        served.to_bits(),
        direct.to_bits(),
        "{ctx}: served {served:e} != direct {direct:e}"
    );
}

// ---------------------------------------------------------------------------
// Determinism of the injection layer itself.
// ---------------------------------------------------------------------------

/// The same schedule seed reproduces the same per-site injection sequence
/// across full server runs (the acceptance criterion's replay property).
/// Traffic is strictly sequential (wait each request before the next), so
/// each site's hit/fire sequence is deterministic; the *global* event
/// order may interleave across threads, hence per-site comparison.
#[test]
fn same_seed_reproduces_the_same_injection_sequence() {
    quiet_chaos_panics();
    let reg = chaos_registry();

    let run = || -> Vec<FiredEvent> {
        let schedule = ChaosSchedule::new(0xC4A0)
            .with_prob("serve::flush", ChaosAction::Panic, 0.3, 2)
            .with_prob(
                "serve::recv",
                ChaosAction::Stall(Duration::from_micros(100)),
                0.2,
                5,
            )
            .with_prob("serve::submit", ChaosAction::Reject, 0.3, 3);
        let guard = install(schedule);
        let server = CertServer::start(
            &reg,
            ServeConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                workers: Parallelism::Sequential,
                ..ServeConfig::default()
            },
        );
        for i in 0..12u64 {
            let x = [i as f64 * 0.1 - 0.5, 0.3];
            match server.try_submit(PlanId((i % 2) as usize), x.to_vec()) {
                Ok(h) => {
                    let v = h.wait().expect("requeued rows are still served");
                    assert_bitwise(&reg, PlanId((i % 2) as usize), &x, v, "replay run");
                }
                Err(SubmitError::QueueFull { .. }) => {} // forced rejection
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        server.shutdown();
        guard.events()
    };

    let first = run();
    let second = run();
    assert!(
        first.iter().any(|e| e.action == ChaosAction::Panic),
        "schedule never panicked — replay check is vacuous"
    );
    for site in ["serve::flush", "serve::recv", "serve::submit"] {
        let a: Vec<&FiredEvent> = first.iter().filter(|e| e.site == site).collect();
        let b: Vec<&FiredEvent> = second.iter().filter(|e| e.site == site).collect();
        assert_eq!(a, b, "site {site}: injection sequence diverged across runs");
    }
}

// ---------------------------------------------------------------------------
// Worker panic recovery (satellite: regression test for panic mid-flush).
// ---------------------------------------------------------------------------

/// A worker killed mid-flush (after the nominal pass, before any row is
/// answered) is respawned; its staged rows are requeued and served
/// bitwise — never dropped, never double-answered — and the server keeps
/// accepting work afterwards.
#[test]
fn worker_panic_mid_flush_requeues_and_serves_bitwise() {
    quiet_chaos_panics();
    let reg = chaos_registry();
    let guard = install(ChaosSchedule::new(11).on_hit("serve::mid_flush", ChaosAction::Panic, 0));
    let server = CertServer::start(
        &reg,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            workers: Parallelism::Sequential,
            ..ServeConfig::default()
        },
    );

    let inputs: Vec<[f64; 2]> = (0..6).map(|i| [0.1 * i as f64, -0.3]).collect();
    let handles: Vec<_> = inputs
        .iter()
        .map(|x| server.submit(PlanId(0), x.to_vec()).unwrap())
        .collect();
    for (h, x) in handles.into_iter().zip(&inputs) {
        let v = h
            .wait()
            .expect("killed flush must be requeued, not dropped");
        assert_bitwise(&reg, PlanId(0), x, v, "mid-flush kill");
    }

    // The server is still healthy after the recovery.
    let v = server.query(PlanId(0), &[0.5, 0.5]).unwrap();
    assert_bitwise(&reg, PlanId(0), &[0.5, 0.5], v, "post-recovery query");

    let stats = server.stats(PlanId(0)).unwrap();
    assert_eq!(stats.worker_restarts, 1, "exactly one injected kill");
    assert!(
        stats.rows_requeued >= 1,
        "the killed flush held staged rows"
    );
    assert_eq!(stats.rows_served, 7, "every request answered exactly once");
    assert_eq!(guard.fired("serve::mid_flush"), 1);
    server.shutdown();
}

/// Same property with the kill at flush *staging* (before the nominal
/// pass) — the other half of the flush path — across sequential queries.
#[test]
fn worker_panic_at_flush_start_is_invisible_to_sequential_clients() {
    quiet_chaos_panics();
    let reg = chaos_registry();
    let guard = install(ChaosSchedule::new(7).on_hit("serve::flush", ChaosAction::Panic, 1));
    let server = CertServer::start(
        &reg,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: Parallelism::Sequential,
            ..ServeConfig::default()
        },
    );
    for i in 0..5u64 {
        let x = [0.2 * i as f64 - 0.4, 0.1];
        let v = server.query(PlanId(1), &x).unwrap();
        assert_bitwise(&reg, PlanId(1), &x, v, "flush-start kill");
    }
    let stats = server.stats(PlanId(1)).unwrap();
    assert_eq!(stats.worker_restarts, 1);
    assert_eq!(stats.rows_served, 5);
    assert_eq!(guard.fired("serve::flush"), 1);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Plan quarantine.
// ---------------------------------------------------------------------------

/// A plan whose faulty-suffix resume keeps panicking is quarantined after
/// `max_plan_strikes` strikes: its in-flight request fails typed, new
/// submissions fail fast, and the *other* plan on the same coalesced
/// shard keeps serving (one poison plan cannot crash-loop the shard).
#[test]
fn poison_plan_is_quarantined_and_the_shard_survives() {
    quiet_chaos_panics();
    let reg = chaos_registry();
    let guard =
        install(ChaosSchedule::new(3).with_prob("serve::resume", ChaosAction::Panic, 1.0, 3));
    let server = CertServer::start(
        &reg,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: Parallelism::Sequential,
            coalesce_plans: true,
            max_plan_strikes: 3,
            ..ServeConfig::default()
        },
    );
    assert_eq!(server.shard_count(), 1, "both plans share the net");

    // One request against the poison plan: panic -> strike 1 (requeue) ->
    // panic -> strike 2 (requeue) -> panic -> strike 3 -> quarantine, and
    // the recovered row fails typed instead of crash-looping forever.
    let h = server.submit(PlanId(0), vec![0.3, -0.2]).unwrap();
    assert_eq!(h.wait(), Err(RequestError::Quarantined(PlanId(0))));
    assert_eq!(server.is_quarantined(PlanId(0)), Some(true));
    assert_eq!(server.is_quarantined(PlanId(1)), Some(false));
    assert_eq!(guard.fired("serve::resume"), 3);

    // New submissions against the quarantined plan fail fast and typed.
    assert!(matches!(
        server.submit(PlanId(0), vec![0.1, 0.1]),
        Err(SubmitError::Quarantined(PlanId(0)))
    ));

    // The sibling plan on the same shard still serves bitwise.
    let x = [0.6, -0.1];
    let v = server.query(PlanId(1), &x).unwrap();
    assert_bitwise(&reg, PlanId(1), &x, v, "sibling plan after quarantine");

    let stats = server.stats(PlanId(0)).unwrap();
    assert_eq!(stats.worker_restarts, 3);
    assert_eq!(stats.rows_requeued, 2, "strikes 1 and 2 requeued the row");
    assert_eq!(stats.plans_quarantined, 1);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Streaming ingest across a respawn (satellite: streaming-after-respawn).
// ---------------------------------------------------------------------------

/// Kill the streaming worker *between* chunk flushes: the respawned worker
/// starts with a fresh workspace (the streaming checkpoint is deliberately
/// discarded), so served values are bitwise identical to a no-chaos run —
/// only the checkpoint-reuse statistics differ.
#[test]
fn streaming_worker_killed_between_chunks_rebuilds_bitwise() {
    quiet_chaos_panics();
    let reg = chaos_registry();
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(500),
        workers: Parallelism::Sequential,
        streaming_ingest: true,
        ..ServeConfig::default()
    };
    let probe: Vec<[f64; 2]> = (0..4).map(|i| [0.25 * i as f64 - 0.4, 0.15]).collect();

    let run = |schedule: ChaosSchedule| {
        let _guard = install(schedule);
        let server = CertServer::start(&reg, cfg);
        let mut bits = Vec::new();
        // Two identical probe rounds: streaming traffic that an intact
        // worker answers from its checkpoint the second time.
        for _ in 0..2 {
            let handles: Vec<_> = probe
                .iter()
                .map(|x| server.submit(PlanId(0), x.to_vec()).unwrap())
                .collect();
            for h in handles {
                bits.push(h.wait().expect("served").to_bits());
            }
        }
        let stats = server.stats(PlanId(0)).unwrap();
        server.shutdown();
        (bits, stats)
    };

    let (base_bits, base) = run(ChaosSchedule::new(0)); // empty: no chaos
    let (chaos_bits, chaos) =
        run(ChaosSchedule::new(1).on_hit("serve::recv", ChaosAction::Panic, 1));

    assert_eq!(base_bits, chaos_bits, "respawn changed a served bit");
    assert_eq!(chaos.worker_restarts, 1);
    assert_eq!(base.worker_restarts, 0);
    assert_eq!(
        chaos.rows_requeued, 0,
        "the kill fired between flushes: nothing was staged"
    );
    // Only checkpoint accounting may differ, and only downward: the
    // respawned worker rebuilt from scratch. (Guard on the expected flush
    // pattern so scheduler jitter can't turn this into a flaky assert.)
    if base.flushes == 2 && chaos.flushes == 2 {
        assert_eq!(
            base.checkpoint_hits, 1,
            "intact worker reuses the checkpoint"
        );
        assert_eq!(chaos.checkpoint_hits, 0, "respawned worker starts cold");
    }
}

// ---------------------------------------------------------------------------
// Retry / backoff under forced backpressure.
// ---------------------------------------------------------------------------

/// Forced `QueueFull` rejections are absorbed by `submit_with_retry`: the
/// submission lands on the attempt after the injected rejections run out,
/// the retry histogram and backoff totals record the struggle, and the
/// served value is still bitwise.
#[test]
fn forced_queue_full_is_absorbed_by_retry_with_backoff() {
    quiet_chaos_panics();
    let reg = chaos_registry();
    let guard =
        install(ChaosSchedule::new(5).with_prob("serve::submit", ChaosAction::Reject, 1.0, 2));
    let server = CertServer::start(&reg, ServeConfig::default());

    let x = [0.4, -0.25];
    let policy = RetryPolicy {
        max_attempts: 5,
        base: Duration::from_micros(50),
        cap: Duration::from_millis(2),
        jitter_seed: 42,
    };
    let h = server
        .submit_with_retry(PlanId(0), &x, policy)
        .expect("attempt 3 lands after two forced rejections");
    let v = h.wait().unwrap();
    assert_bitwise(&reg, PlanId(0), &x, v, "post-retry value");
    assert_eq!(guard.fired("serve::submit"), 2);

    let stats = server.stats(PlanId(0)).unwrap();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.retries, 2);
    assert_eq!(
        stats.retry_hist,
        [1, 1, 0, 0, 0, 0],
        "one 1st retry, one 2nd"
    );
    assert!(
        stats.total_backoff > Duration::ZERO,
        "backoff was actually slept"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Overload shedding and deadlines under injected stalls.
// ---------------------------------------------------------------------------

/// A stalled worker makes the queue deep; with a zero shed budget the
/// next submission is shed typed (`Overloaded`) instead of queueing
/// behind work it cannot make, while already-accepted requests still
/// complete bitwise.
#[test]
fn stalled_worker_trips_overload_shedding() {
    quiet_chaos_panics();
    let reg = chaos_registry();
    let guard = install(ChaosSchedule::new(9).with_prob(
        "serve::flush",
        ChaosAction::Stall(Duration::from_millis(250)),
        1.0,
        2,
    ));
    let server = CertServer::start(
        &reg,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: Parallelism::Sequential,
            shed_budget: Some(Duration::ZERO),
            ..ServeConfig::default()
        },
    );

    let a = [0.3, 0.3];
    let b = [-0.2, 0.5];
    let h1 = server.submit(PlanId(0), a.to_vec()).unwrap();
    // Give the worker time to stage h1 and enter the injected stall.
    std::thread::sleep(Duration::from_millis(60));
    let h2 = server.submit(PlanId(0), b.to_vec()).unwrap(); // depth 0: accepted
    match server.submit(PlanId(0), vec![0.1, 0.1]) {
        Err(SubmitError::Overloaded {
            depth,
            estimated_wait,
        }) => {
            assert_eq!(depth, 1, "h2 is queued behind the stall");
            assert!(estimated_wait > Duration::ZERO);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    let v1 = h1.wait().unwrap();
    let v2 = h2.wait().unwrap();
    assert_bitwise(&reg, PlanId(0), &a, v1, "stalled request 1");
    assert_bitwise(&reg, PlanId(0), &b, v2, "stalled request 2");
    assert_eq!(server.stats(PlanId(0)).unwrap().requests_shed, 1);
    assert!(guard.fired("serve::flush") >= 1, "the stall actually fired");
    server.shutdown();
}

/// A request queued behind an injected stall whose deadline expires before
/// a worker stages it fails typed (`Deadline`) — it is never served late.
#[test]
fn deadline_expires_typed_behind_a_stalled_worker() {
    quiet_chaos_panics();
    let reg = chaos_registry();
    let _guard = install(ChaosSchedule::new(13).with_prob(
        "serve::flush",
        ChaosAction::Stall(Duration::from_millis(150)),
        1.0,
        2,
    ));
    let server = CertServer::start(
        &reg,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: Parallelism::Sequential,
            ..ServeConfig::default()
        },
    );

    let a = [0.2, 0.7];
    let h1 = server.submit(PlanId(0), a.to_vec()).unwrap();
    std::thread::sleep(Duration::from_millis(40)); // worker is now stalling on h1
    let h2 = server
        .submit_within(PlanId(0), vec![0.9, 0.9], Duration::from_millis(10))
        .unwrap();

    let v1 = h1.wait().unwrap();
    assert_bitwise(&reg, PlanId(0), &a, v1, "pre-stall request");
    assert_eq!(h2.wait(), Err(RequestError::Deadline));
    assert_eq!(server.stats(PlanId(0)).unwrap().deadlines_expired, 1);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Failpoints outside the serving layer.
// ---------------------------------------------------------------------------

/// The `cache::insert` failpoint fires before the checkpoint cache
/// mutates anything beyond its miss counter, so an injected panic unwinds
/// cleanly: the next identical call simply recomputes and succeeds.
#[test]
fn cache_insert_panic_unwinds_cleanly_and_retries() {
    quiet_chaos_panics();
    let net = {
        let reg = chaos_registry();
        Arc::clone(reg.get(PlanId(0)).unwrap().net())
    };
    let xs = Matrix::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]);

    let guard = install(ChaosSchedule::new(17).on_hit("cache::insert", ChaosAction::Panic, 0));
    let mut cache = CheckpointCache::new(4);
    let attempt = panic::catch_unwind(panic::AssertUnwindSafe(|| {
        let _ = cache.checkpoint(&net, &xs);
    }));
    assert!(attempt.is_err(), "the injected insert panic fired");
    assert_eq!(guard.fired("cache::insert"), 1);

    // The failpoint is exhausted (one-shot); the retry must recompute and
    // then serve the second identical call from the cache.
    let _ = cache.checkpoint(&net, &xs);
    let _ = cache.checkpoint(&net, &xs);
    let stats = cache.stats();
    assert_eq!(stats.hits, 1, "retry populated the cache");
}

// ---------------------------------------------------------------------------
// The chaos sweep: >= 50 seeded schedules, randomized configs.
// ---------------------------------------------------------------------------

/// Across 50 seeded chaos schedules — worker panics at every flush phase,
/// stalls, forced rejections — over randomized server configurations,
/// every accepted request is answered bitwise-correctly exactly once or
/// fails typed: zero lost, zero duplicated, zero wrong. The request log
/// contains exactly the answered requests and replays bitwise.
#[test]
fn fifty_seeded_schedules_never_lose_duplicate_or_corrupt_a_request() {
    quiet_chaos_panics();
    let reg = chaos_registry();
    let mut ws = BatchWorkspace::default();

    for seed in 0..50u64 {
        let r = |i: u64| splitmix64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i);
        let cfg = ServeConfig {
            max_batch: 1 + (r(0) % 4) as usize,
            max_wait: Duration::from_micros(50),
            queue_capacity: 4 + (r(1) % 8) as usize,
            workers: if r(2) % 2 == 0 {
                Parallelism::Sequential
            } else {
                Parallelism::Threads(2)
            },
            record_log: true,
            coalesce_plans: r(3) % 2 == 0,
            streaming_ingest: r(4) % 3 == 0,
            max_plan_strikes: 2 + (r(5) % 2) as u32,
            ..ServeConfig::default()
        };
        // Capped arms (every fire budget is finite) so every handle is
        // guaranteed to resolve without a watchdog.
        let schedule = ChaosSchedule::new(seed)
            .with_prob("serve::flush", ChaosAction::Panic, 0.08, 2)
            .with_prob("serve::mid_flush", ChaosAction::Panic, 0.05, 2)
            .with_prob("serve::resume", ChaosAction::Panic, 0.05, 2)
            .with_prob("serve::answer", ChaosAction::Panic, 0.04, 2)
            .with_prob(
                "serve::recv",
                ChaosAction::Stall(Duration::from_micros(500)),
                0.10,
                4,
            )
            .with_prob(
                "serve::flush",
                ChaosAction::Stall(Duration::from_micros(300)),
                0.10,
                4,
            )
            .with_prob("serve::submit", ChaosAction::Reject, 0.15, 4);
        let guard = install(schedule);
        let server = CertServer::start(&reg, cfg);
        let policy = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_micros(50),
            cap: Duration::from_millis(1),
            jitter_seed: seed,
        };

        let mut accepted = Vec::new();
        for i in 0..40u64 {
            let plan = PlanId((i % 2) as usize);
            let x = [
                (r(100 + i) % 1000) as f64 / 500.0 - 1.0,
                (r(200 + i) % 1000) as f64 / 500.0 - 1.0,
            ];
            match server.submit_with_retry(plan, &x, policy) {
                Ok(h) => accepted.push((plan, x, h)),
                // Typed, expected degradation under chaos.
                Err(SubmitError::QueueFull { .. })
                | Err(SubmitError::Overloaded { .. })
                | Err(SubmitError::Quarantined(_)) => {}
                Err(e) => panic!("seed {seed}: unexpected submit error {e}"),
            }
        }

        let total_accepted = accepted.len();
        let mut answered = Vec::new();
        for (plan, x, h) in accepted {
            let seq = h.seq();
            match h.wait() {
                Ok(v) => {
                    let direct = reg.get(plan).unwrap().eval_singleton(&x, &mut ws);
                    assert_eq!(
                        v.to_bits(),
                        direct.to_bits(),
                        "seed {seed} seq {seq}: served value is wrong"
                    );
                    answered.push(seq);
                }
                // Every failure must be typed; any of the declared kinds
                // is an acceptable outcome under chaos, silence is not.
                Err(RequestError::Deadline)
                | Err(RequestError::Quarantined(_))
                | Err(RequestError::WorkerDied) => {}
                Err(e) => panic!("seed {seed} seq {seq}: unexpected error {e:?}"),
            }
        }

        // Exactly-once accounting: the log holds precisely the answered
        // requests, each once, and replays bitwise through recoveries.
        let log = server.take_log();
        let logged: std::collections::HashSet<u64> = log.entries.iter().map(|e| e.seq).collect();
        assert_eq!(
            logged.len(),
            log.entries.len(),
            "seed {seed}: duplicate sequence numbers in the log"
        );
        assert_eq!(
            log.len(),
            answered.len(),
            "seed {seed}: log size != answered count (lost or phantom rows)"
        );
        for seq in &answered {
            assert!(
                logged.contains(seq),
                "seed {seed}: answered seq {seq} missing from the log"
            );
        }
        log.verify(&reg)
            .unwrap_or_else(|e| panic!("seed {seed}: log replay mismatch: {e}"));

        let stats = server.shutdown();
        // Flush accounting runs before the answer phase, so a panic
        // injected between the two recomputes (and re-counts) recovered
        // rows: `rows_served` may over-count under chaos, never under-
        // count. Exactly-once is witnessed by the log equality above.
        let served: u64 = stats.iter().map(|s| s.rows_served).sum();
        assert!(
            served as usize >= answered.len(),
            "seed {seed}: rows_served {served} < answered {}",
            answered.len()
        );
        let _ = total_accepted;
        drop(guard);
    }
}
